#include "chisimnet/abm/disease.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "chisimnet/util/error.hpp"
#include "chisimnet/util/rng.hpp"

namespace chisimnet::abm {

namespace {

using table::ActivityId;
using table::Hour;
using table::PersonId;
using table::PlaceId;

std::uint8_t raw(SeirState state) { return static_cast<std::uint8_t>(state); }

}  // namespace

std::string seirStateName(SeirState state) {
  switch (state) {
    case SeirState::kSusceptible:
      return "susceptible";
    case SeirState::kExposed:
      return "exposed";
    case SeirState::kInfectious:
      return "infectious";
    case SeirState::kRecovered:
      return "recovered";
  }
  return "unknown";
}

double diseaseUniform(std::uint64_t seed, std::uint64_t a, std::uint64_t b) {
  std::uint64_t state =
      seed ^ (a * 0x9e3779b97f4a7c15ULL) ^ (b * 0xbf58476d1ce4e5b9ULL);
  return static_cast<double>(util::splitmix64(state) >> 11) * 0x1.0p-53;
}

std::uint64_t seedInfections(DiseaseShared& shared, std::size_t personCount) {
  std::uint64_t seeded = 0;
  util::Rng seedRng(shared.config->seed);
  while (seeded < shared.config->seedCount && seeded < personCount) {
    const auto person = static_cast<PersonId>(seedRng.uniformBelow(personCount));
    if (shared.state[person] == raw(SeirState::kSusceptible)) {
      shared.state[person] = raw(SeirState::kInfectious);
      ++seeded;
    }
  }
  return seeded;
}

DiseaseRank::DiseaseRank(DiseaseShared& shared, int rank,
                         const std::filesystem::path& directory,
                         Hour totalHours, bool eventCore,
                         std::uint64_t resumeWriterAtBytes)
    : shared_(shared), rank_(rank), totalHours_(totalHours),
      eventCore_(eventCore) {
  char name[32];
  std::snprintf(name, sizeof(name), "rank_%04d.clx5", rank);
  if (resumeWriterAtBytes != 0) {
    writer_ = std::make_unique<elog::ExtendedLogWriter>(
        directory / name, 2,
        elog::ExtendedLogWriter::ResumeAt{resumeWriterAtBytes});
  } else {
    writer_ = std::make_unique<elog::ExtendedLogWriter>(directory / name, 2);
  }
  occupantSlot_.resize(shared_.state.size());
  if (eventCore_) {
    progressionCalendar_.resize(totalHours_);
  }
}

void DiseaseRank::occupy(PersonId person, PlaceId place) {
  auto& list = occupants_[place];
  occupantSlot_[person] = static_cast<std::uint32_t>(list.size());
  list.push_back(person);
}

void DiseaseRank::vacate(PersonId person, PlaceId place) {
  auto& list = occupants_[place];
  const std::uint32_t slot = occupantSlot_[person];
  CHISIM_CHECK(slot < list.size() && list[slot] == person,
               "vacate: occupant slot out of sync");
  list[slot] = list.back();
  list.pop_back();
  if (slot < list.size()) {
    occupantSlot_[list[slot]] = slot;
  }
}

void DiseaseRank::addInfectiousAt(PlaceId place) { ++infectiousAt_[place]; }

void DiseaseRank::removeInfectiousAt(PlaceId place) {
  auto it = infectiousAt_.find(place);
  CHISIM_CHECK(it != infectiousAt_.end() && it->second > 0,
               "infectious count underflow at place");
  if (--it->second == 0) {
    infectiousAt_.erase(it);
  }
}

Hour DiseaseRank::progressionDue(PersonId person) const {
  const DiseaseConfig& config = *shared_.config;
  const Hour since = shared_.since[person];
  const std::uint8_t state = stateOf(person);
  if (state == raw(SeirState::kExposed)) {
    // Exposure happens during an hour's transmission phase, so the first
    // scan that can progress it is the next hour even when latentHours == 0.
    return since + std::max<Hour>(config.latentHours, 1);
  }
  CHISIM_CHECK(state == raw(SeirState::kInfectious),
               "progression due asked for a non-progressing state");
  // since == 0 identifies a seed: its state was set before the hour-0 scan,
  // so the exact threshold applies (it can even recover at hour 0).
  return since == 0 ? config.infectiousHours
                    : since + std::max<Hour>(config.infectiousHours, 1);
}

void DiseaseRank::scheduleProgression(PersonId person, Hour due) {
  if (due >= totalHours_) {
    return;  // the last epidemic step runs at totalHours - 1
  }
  progressionCalendar_[due].push_back(person);
  ++pendingProgressions_;
}

void DiseaseRank::arrive(PersonId person, ActivityId activity, PlaceId place,
                         Hour now) {
  residents_[person] = StintInfo{activity, place};
  occupy(person, place);
  const std::uint8_t state = stateOf(person);
  if (state == raw(SeirState::kInfectious)) {
    ++infectiousResidents_;
    addInfectiousAt(place);
  }
  if (eventCore_ && (state == raw(SeirState::kExposed) ||
                     state == raw(SeirState::kInfectious))) {
    scheduleProgression(person, std::max(progressionDue(person), now));
  }
}

void DiseaseRank::move(PersonId person, ActivityId activity, PlaceId place) {
  StintInfo& info = residents_.at(person);
  const PlaceId from = info.place;
  vacate(person, from);
  info.activity = activity;
  info.place = place;
  occupy(person, place);  // refreshes info.slot
  if (stateOf(person) == raw(SeirState::kInfectious)) {
    removeInfectiousAt(from);
    addInfectiousAt(place);
  }
}

void DiseaseRank::depart(PersonId person) {
  auto it = residents_.find(person);
  CHISIM_CHECK(it != residents_.end(), "depart: person is not a resident");
  vacate(person, it->second.place);
  if (stateOf(person) == raw(SeirState::kInfectious)) {
    CHISIM_CHECK(infectiousResidents_ > 0, "infectious resident underflow");
    --infectiousResidents_;
    removeInfectiousAt(it->second.place);
  }
  residents_.erase(it);
}

void DiseaseRank::logTransition(Hour now, PersonId person, SeirState newState,
                                std::uint32_t infector) {
  const StintInfo& info = residents_.at(person);
  elog::ExtendedEvent entry;
  entry.base = table::Event{now, now + 1, person, info.activity, info.place};
  entry.extras = {static_cast<std::uint32_t>(newState), infector};
  buffer_.push_back(std::move(entry));
  if (buffer_.size() >= 4096) {
    writer_->writeChunk(buffer_);
    buffer_.clear();
  }
}

void DiseaseRank::logSeeds() {
  std::vector<PersonId> seeds;
  for (const auto& [person, info] : residents_) {
    if (stateOf(person) == raw(SeirState::kInfectious)) {
      seeds.push_back(person);
    }
  }
  std::sort(seeds.begin(), seeds.end());
  for (PersonId person : seeds) {
    logTransition(0, person, SeirState::kInfectious, kNoInfector);
  }
}

void DiseaseRank::collectExposures(Hour now,
                                   const std::vector<PersonId>& persons,
                                   std::vector<Transition>& out) const {
  if (persons.size() < 2) {
    return;
  }
  std::uint32_t infectious = 0;
  for (PersonId person : persons) {
    if (stateOf(person) == raw(SeirState::kInfectious)) {
      ++infectious;
    }
  }
  if (infectious == 0) {
    return;
  }
  const DiseaseConfig& config = *shared_.config;
  const double escape =
      std::pow(1.0 - config.beta, static_cast<double>(infectious));
  const double infectionProbability = 1.0 - escape;
  for (PersonId person : persons) {
    if (stateOf(person) != raw(SeirState::kSusceptible)) {
      continue;
    }
    if (diseaseUniform(config.seed, person, now) >= infectionProbability) {
      continue;
    }
    // Deterministic, rank- and core-invariant infector choice: the
    // infectious occupant minimizing a pair hash, ties to the lower id.
    std::uint32_t infector = kNoInfector;
    double best = 2.0;
    for (PersonId candidate : persons) {
      if (stateOf(candidate) != raw(SeirState::kInfectious)) {
        continue;
      }
      const double score = diseaseUniform(
          config.seed ^ 0xD15EA5Eull,
          static_cast<std::uint64_t>(person) * 2654435761ull + now, candidate);
      if (score < best || (score == best && candidate < infector)) {
        best = score;
        infector = candidate;
      }
    }
    out.push_back(Transition{person, SeirState::kExposed, infector});
  }
}

void DiseaseRank::applyProgressions(Hour now,
                                    std::vector<Transition>& transitions) {
  std::sort(transitions.begin(), transitions.end(),
            [](const Transition& a, const Transition& b) {
              return a.person < b.person;
            });
  const DiseaseConfig& config = *shared_.config;
  for (const Transition& transition : transitions) {
    const PersonId person = transition.person;
    shared_.state[person] = raw(transition.newState);
    shared_.since[person] = now;
    const PlaceId place = residents_.at(person).place;
    if (transition.newState == SeirState::kInfectious) {
      ++infectiousResidents_;
      addInfectiousAt(place);
      if (eventCore_) {
        scheduleProgression(person,
                            now + std::max<Hour>(config.infectiousHours, 1));
      }
    } else {
      CHISIM_CHECK(infectiousResidents_ > 0, "infectious resident underflow");
      --infectiousResidents_;
      removeInfectiousAt(place);
    }
    logTransition(now, person, transition.newState, kNoInfector);
  }
}

void DiseaseRank::applyExposures(Hour now, std::vector<Transition>& exposures,
                                 std::uint64_t& infections) {
  std::sort(exposures.begin(), exposures.end(),
            [](const Transition& a, const Transition& b) {
              return a.person < b.person;
            });
  const DiseaseConfig& config = *shared_.config;
  for (const Transition& exposure : exposures) {
    const PersonId person = exposure.person;
    shared_.state[person] = raw(SeirState::kExposed);
    shared_.since[person] = now;
    if (eventCore_) {
      scheduleProgression(person, now + std::max<Hour>(config.latentHours, 1));
    }
    logTransition(now, person, SeirState::kExposed, exposure.infector);
    if (exposure.infector != kNoInfector) {
      ++infections;
    }
  }
}

void DiseaseRank::stepHourly(Hour now, std::uint64_t& infections) {
  const DiseaseConfig& config = *shared_.config;

  // Progression: full scan over this rank's residents. A person entering a
  // state this hour is not re-examined (the else-if), matching the
  // one-transition-per-person-per-hour semantics of the scan.
  std::vector<Transition> transitions;
  for (const auto& [person, info] : residents_) {
    const std::uint8_t state = stateOf(person);
    if (state == raw(SeirState::kExposed) &&
        now - shared_.since[person] >= config.latentHours) {
      transitions.push_back(
          Transition{person, SeirState::kInfectious, kNoInfector});
    } else if (state == raw(SeirState::kInfectious) &&
               now - shared_.since[person] >= config.infectiousHours) {
      transitions.push_back(
          Transition{person, SeirState::kRecovered, kNoInfector});
    }
  }
  applyProgressions(now, transitions);
  shared_.hourlyInfectious[static_cast<std::size_t>(rank_)][now] =
      infectiousResidents_;

  // Transmission per owned place. Exposures only flip S -> E, so collecting
  // across places before applying cannot change any draw or infector set.
  std::vector<Transition> exposures;
  for (const auto& [place, persons] : occupants_) {
    collectExposures(now, persons, exposures);
  }
  applyExposures(now, exposures, infections);
}

void DiseaseRank::stepEvent(Hour now, std::uint64_t& infections) {
  CHISIM_CHECK(eventCore_, "stepEvent requires the progression calendar");
  const DiseaseConfig& config = *shared_.config;

  // Progression from the calendar. Entries are scheduled at the exact first
  // hour the hourly scan would fire them, so validating the same scan
  // condition here yields the same transition set: stale entries (the
  // person migrated away, or a leave-and-return left duplicates) simply
  // fail the residency/state check and are skipped.
  std::vector<Transition> transitions;
  if (now < totalHours_) {
    auto& bucket = progressionCalendar_[now];
    CHISIM_CHECK(pendingProgressions_ >= bucket.size(),
                 "progression calendar count out of sync");
    pendingProgressions_ -= bucket.size();
    std::sort(bucket.begin(), bucket.end());
    bucket.erase(std::unique(bucket.begin(), bucket.end()), bucket.end());
    for (PersonId person : bucket) {
      if (!residents_.contains(person)) {
        continue;
      }
      const std::uint8_t state = stateOf(person);
      if (state == raw(SeirState::kExposed) &&
          now - shared_.since[person] >= config.latentHours) {
        transitions.push_back(
            Transition{person, SeirState::kInfectious, kNoInfector});
      } else if (state == raw(SeirState::kInfectious) &&
                 now - shared_.since[person] >= config.infectiousHours) {
        transitions.push_back(
            Transition{person, SeirState::kRecovered, kNoInfector});
      }
    }
    bucket.clear();
    bucket.shrink_to_fit();
  }
  applyProgressions(now, transitions);
  shared_.hourlyInfectious[static_cast<std::size_t>(rank_)][now] =
      infectiousResidents_;

  // Transmission only where an infectious occupant actually is. The hourly
  // scan visits every occupied place and skips those with zero infectious;
  // the infectiousAt_ index names exactly the non-skipped ones.
  std::vector<Transition> exposures;
  for (const auto& [place, count] : infectiousAt_) {
    collectExposures(now, occupants_.at(place), exposures);
  }
  applyExposures(now, exposures, infections);
}

Hour DiseaseRank::conservativeNextEvent(Hour now, Hour limit) const {
  if (!eventCore_) {
    return limit;
  }
  if (infectiousResidents_ > 0 ||
      (now < totalHours_ && !progressionCalendar_[now].empty())) {
    return std::min<Hour>(now + 1, limit);
  }
  if (pendingProgressions_ == 0) {
    return limit;
  }
  for (Hour h = now + 1; h < totalHours_ && h < limit; ++h) {
    if (!progressionCalendar_[h].empty()) {
      return h;
    }
  }
  return limit;
}

Hour DiseaseRank::migrantNextEvent(PersonId person, Hour now,
                                   Hour limit) const {
  const std::uint8_t state = stateOf(person);
  if (state == raw(SeirState::kInfectious)) {
    return std::min<Hour>(now + 1, limit);
  }
  if (state == raw(SeirState::kExposed)) {
    return std::min(std::max<Hour>(progressionDue(person), now + 1), limit);
  }
  return limit;
}

void DiseaseRank::close() {
  if (!buffer_.empty()) {
    writer_->writeChunk(buffer_);
    buffer_.clear();
  }
  writer_->close();
}

std::vector<DiseaseRank::CalendarBucket> DiseaseRank::calendarSnapshot(
    Hour fromHour) const {
  std::vector<CalendarBucket> buckets;
  for (Hour h = fromHour; h < totalHours_; ++h) {
    if (!progressionCalendar_[h].empty()) {
      buckets.push_back(CalendarBucket{h, progressionCalendar_[h]});
    }
  }
  return buckets;
}

void DiseaseRank::restoreResident(PersonId person, ActivityId activity,
                                  PlaceId place) {
  residents_[person] = StintInfo{activity, place};
  occupy(person, place);
  if (stateOf(person) == raw(SeirState::kInfectious)) {
    ++infectiousResidents_;
    addInfectiousAt(place);
  }
}

void DiseaseRank::restoreCalendar(const CalendarBucket& bucket) {
  CHISIM_REQUIRE(eventCore_, "restoreCalendar requires the event core");
  CHISIM_CHECK(bucket.hour < totalHours_,
               "checkpointed calendar bucket past the horizon");
  auto& target = progressionCalendar_[bucket.hour];
  CHISIM_CHECK(target.empty(), "calendar bucket restored twice");
  target = bucket.persons;
  pendingProgressions_ += bucket.persons.size();
}

void DiseaseRank::restoreBuffer(std::vector<elog::ExtendedEvent> entries) {
  CHISIM_CHECK(buffer_.empty(), "CLX5 buffer restored twice");
  buffer_ = std::move(entries);
}

void DiseaseRank::sync() { writer_->sync(); }

void DiseaseRank::abandon() {
  buffer_.clear();
  writer_->abandon();
}

}  // namespace chisimnet::abm
