#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "chisimnet/pop/schedule.hpp"
#include "chisimnet/table/event.hpp"

/// Timestamped migration messages for the event-driven ABM core.
///
/// When an agent's new place lives on another rank, the sender ships the
/// agent's full cursor state — the current packed week plus the stint index
/// within it — so the destination resumes the schedule without regenerating
/// it. Each batch is stamped with the simulation hour it belongs to
/// (validated on receipt against the receiver's clock) and carries the
/// sender's conservative next-event hint, which is how the ranks agree on
/// the next globally active hour without a separate reduction (see
/// DESIGN.md §3.7).

namespace chisimnet::abm {

/// One migrating agent: cursor state sufficient to resume its schedule.
struct MigrantRecord {
  table::PersonId person = 0;
  std::uint32_t weekIndex = 0;
  std::uint32_t stintIndex = 0;
  std::vector<pop::PackedStint> stints;  ///< the full current packed week
};

/// Control flags OR-combined across ranks via the hourly exchange (every
/// rank receives every other rank's flags, so the OR is a free all-reduce).
inline constexpr std::uint32_t kBatchFlagShutdown = 1u << 0;

/// Everything one rank sends another for one simulation hour.
struct MigrationBatch {
  table::Hour hour = 0;               ///< the hour the moves happened
  std::uint64_t nextEventHint = 0;    ///< sender's earliest possible next
                                      ///< active hour (> hour)
  std::uint32_t flags = 0;            ///< kBatchFlag* bits (shutdown request)
  std::vector<MigrantRecord> migrants;
};

std::vector<std::byte> encodeMigrationBatch(const MigrationBatch& batch);

/// Decodes and validates a batch; throws unless the embedded hour stamp
/// equals `expectedHour` and every record is structurally sound.
MigrationBatch decodeMigrationBatch(std::span<const std::byte> payload,
                                    table::Hour expectedHour);

}  // namespace chisimnet::abm
