#include "chisimnet/abm/place_partition.hpp"

#include "chisimnet/runtime/partition.hpp"
#include "chisimnet/util/error.hpp"

namespace chisimnet::abm {

std::string partitionStrategyName(PartitionStrategy strategy) {
  switch (strategy) {
    case PartitionStrategy::kNeighborhood:
      return "neighborhood";
    case PartitionStrategy::kRoundRobin:
      return "round-robin";
  }
  return "unknown";
}

std::vector<int> assignPlacesToRanks(const pop::SyntheticPopulation& population,
                                     int rankCount,
                                     PartitionStrategy strategy) {
  CHISIM_REQUIRE(rankCount >= 1, "need at least one rank");
  std::vector<int> placeRank(population.places().size(), 0);
  if (rankCount == 1) {
    return placeRank;
  }

  switch (strategy) {
    case PartitionStrategy::kRoundRobin: {
      for (std::size_t p = 0; p < placeRank.size(); ++p) {
        placeRank[p] = static_cast<int>(p % static_cast<std::size_t>(rankCount));
      }
      return placeRank;
    }
    case PartitionStrategy::kNeighborhood: {
      // Balance neighborhoods over ranks by resident count.
      std::vector<std::uint64_t> hoodPopulation(population.neighborhoodCount(),
                                                0);
      for (const pop::Person& person : population.persons()) {
        ++hoodPopulation[person.neighborhood];
      }
      const runtime::Partition partition = runtime::partitionGreedyLpt(
          hoodPopulation, static_cast<std::size_t>(rankCount));
      std::vector<int> hoodRank(population.neighborhoodCount(), 0);
      for (std::size_t rank = 0; rank < partition.assignment.size(); ++rank) {
        for (std::size_t hood : partition.assignment[rank]) {
          hoodRank[hood] = static_cast<int>(rank);
        }
      }
      for (const pop::Place& place : population.places()) {
        placeRank[place.id] = hoodRank[place.neighborhood];
      }
      return placeRank;
    }
  }
  CHISIM_CHECK(false, "unknown partition strategy");
}

}  // namespace chisimnet::abm
