#pragma once

#include <cstdint>

#include "chisimnet/graph/graph.hpp"
#include "chisimnet/util/rng.hpp"

/// Random-graph generators (paper §VI): the paper contrasts the simulated
/// collocation network against generated scale-free / random networks that
/// are "superficially similar in structure". These three classical models
/// are the comparison baselines in bench_random_net_compare.

namespace chisimnet::graph {

/// Erdős–Rényi G(n, m): exactly m distinct uniform random edges.
Graph erdosRenyi(Vertex vertexCount, std::uint64_t edgeCount, util::Rng& rng);

/// Barabási–Albert preferential attachment: starts from a small clique and
/// attaches each new vertex to `edgesPerVertex` existing vertices chosen
/// proportionally to degree. Produces a power-law degree tail.
Graph barabasiAlbert(Vertex vertexCount, unsigned edgesPerVertex,
                     util::Rng& rng);

/// Watts–Strogatz small world: ring lattice with `neighborsEachSide`
/// neighbors per side, each edge rewired with probability beta.
Graph wattsStrogatz(Vertex vertexCount, unsigned neighborsEachSide, double beta,
                    util::Rng& rng);

/// Configuration model: a random simple graph whose degree sequence
/// approximates `degrees` (random stub matching with self-loop / parallel-
/// edge rejection; a bounded number of re-shuffles, then offending stubs
/// are dropped, so realized degrees can fall slightly short). This is the
/// §VI "tailored" generator: it matches the emergent network's degree
/// distribution exactly, so any remaining structural difference (e.g.
/// clustering) demonstrates what degree alone cannot capture.
Graph configurationModel(std::span<const std::uint64_t> degrees,
                         util::Rng& rng);

}  // namespace chisimnet::graph
