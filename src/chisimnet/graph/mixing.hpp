#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "chisimnet/graph/graph.hpp"
#include "chisimnet/util/rng.hpp"

/// Group mixing analysis and group-structured generation (paper §VI: "an
/// accurate characterization of the real population social network will
/// require that synthetically generated networks also match the vertex
/// degree distributions for population sub-groups such as age").
///
/// MixingMatrix is the discrete contact matrix between vertex groups (e.g.
/// age bands) — the collocation analogue of the POLYMOD-style contact
/// matrices epidemiology builds from surveys. groupedConfigurationModel is
/// the §VI "tailored" generator taken one step further than the plain
/// configuration model: it preserves both per-vertex degrees and the
/// group-pair edge counts.

namespace chisimnet::graph {

class MixingMatrix {
 public:
  /// Computes group-pair edge and weight totals for `graph`, where
  /// groupOf[v] < groupCount assigns every vertex to a group.
  MixingMatrix(const Graph& graph, std::span<const std::uint32_t> groupOf,
               std::uint32_t groupCount);

  std::uint32_t groupCount() const noexcept { return groupCount_; }

  /// Number of edges between groups a and b (symmetric; diagonal counts
  /// intra-group edges once).
  std::uint64_t edgeCount(std::uint32_t a, std::uint32_t b) const;

  /// Total collocation weight between groups a and b.
  std::uint64_t weight(std::uint32_t a, std::uint32_t b) const;

  /// Fraction of all edges that join groups a and b.
  double edgeFraction(std::uint32_t a, std::uint32_t b) const;

  /// Newman's discrete assortativity coefficient over the grouping:
  /// r = (Σ_i e_ii − Σ_i a_i²) / (1 − Σ_i a_i²); 1 = perfectly assortative
  /// (all edges intra-group), 0 = random mixing.
  double assortativity() const;

  /// Flat row-major group-pair edge-count table (for the generator).
  std::vector<std::uint64_t> edgeCountTable() const { return edges_; }

 private:
  std::size_t index(std::uint32_t a, std::uint32_t b) const {
    return static_cast<std::size_t>(a) * groupCount_ + b;
  }

  std::uint32_t groupCount_ = 0;
  std::uint64_t totalEdges_ = 0;
  std::vector<std::uint64_t> edges_;    ///< symmetric, row-major
  std::vector<std::uint64_t> weights_;  ///< symmetric, row-major
};

/// Random simple graph approximately matching both the per-vertex degree
/// sequence and the group-pair edge counts (row-major groupCount² table,
/// symmetric, diagonal = intra-group edge count). Stub matching with
/// rejection: conflicting pairs are retried a bounded number of times then
/// dropped, so realized counts can fall slightly short.
Graph groupedConfigurationModel(std::span<const std::uint64_t> degrees,
                                std::span<const std::uint32_t> groupOf,
                                std::span<const std::uint64_t> pairEdgeCounts,
                                std::uint32_t groupCount, util::Rng& rng);

}  // namespace chisimnet::graph
