#include "chisimnet/graph/generators.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "chisimnet/util/error.hpp"

namespace chisimnet::graph {

Graph erdosRenyi(Vertex vertexCount, std::uint64_t edgeCount, util::Rng& rng) {
  CHISIM_REQUIRE(vertexCount >= 2, "need at least two vertices");
  const std::uint64_t maxEdges =
      static_cast<std::uint64_t>(vertexCount) * (vertexCount - 1) / 2;
  CHISIM_REQUIRE(edgeCount <= maxEdges, "more edges than pairs");

  std::unordered_set<std::uint64_t> chosen;
  chosen.reserve(edgeCount * 2);
  std::vector<Edge> edges;
  edges.reserve(edgeCount);
  while (edges.size() < edgeCount) {
    const auto u = static_cast<Vertex>(rng.uniformBelow(vertexCount));
    const auto v = static_cast<Vertex>(rng.uniformBelow(vertexCount));
    if (u == v) {
      continue;
    }
    const std::uint64_t key = sparse::packPair(u, v);
    if (chosen.insert(key).second) {
      edges.push_back(Edge{u, v, 1});
    }
  }
  return Graph::fromEdges(edges, vertexCount);
}

Graph barabasiAlbert(Vertex vertexCount, unsigned edgesPerVertex,
                     util::Rng& rng) {
  CHISIM_REQUIRE(edgesPerVertex >= 1, "need at least one edge per vertex");
  CHISIM_REQUIRE(vertexCount > edgesPerVertex,
                 "need more vertices than edges per vertex");

  std::vector<Edge> edges;
  // Seed: a clique over the first edgesPerVertex+1 vertices.
  const Vertex seed = edgesPerVertex + 1;
  for (Vertex u = 0; u < seed; ++u) {
    for (Vertex v = u + 1; v < seed; ++v) {
      edges.push_back(Edge{u, v, 1});
    }
  }
  // Degree-proportional sampling via the repeated-endpoints trick: every
  // edge endpoint appears once in `endpoints`, so a uniform draw from it is
  // a degree-proportional draw.
  std::vector<Vertex> endpoints;
  endpoints.reserve(static_cast<std::size_t>(vertexCount) * edgesPerVertex * 2);
  for (const Edge& edge : edges) {
    endpoints.push_back(edge.u);
    endpoints.push_back(edge.v);
  }

  std::vector<Vertex> targets;
  for (Vertex newcomer = seed; newcomer < vertexCount; ++newcomer) {
    targets.clear();
    while (targets.size() < edgesPerVertex) {
      const Vertex candidate =
          endpoints[rng.uniformBelow(endpoints.size())];
      if (std::find(targets.begin(), targets.end(), candidate) ==
          targets.end()) {
        targets.push_back(candidate);
      }
    }
    for (Vertex target : targets) {
      edges.push_back(Edge{newcomer, target, 1});
      endpoints.push_back(newcomer);
      endpoints.push_back(target);
    }
  }
  return Graph::fromEdges(edges, vertexCount);
}

Graph wattsStrogatz(Vertex vertexCount, unsigned neighborsEachSide, double beta,
                    util::Rng& rng) {
  CHISIM_REQUIRE(neighborsEachSide >= 1, "need at least one lattice neighbor");
  CHISIM_REQUIRE(vertexCount > 2 * neighborsEachSide,
                 "ring too small for the lattice degree");
  CHISIM_REQUIRE(beta >= 0.0 && beta <= 1.0, "beta must be a probability");

  std::unordered_set<std::uint64_t> present;
  std::vector<Edge> edges;
  const auto addEdge = [&](Vertex u, Vertex v) {
    if (u == v) {
      return false;
    }
    if (present.insert(sparse::packPair(u, v)).second) {
      edges.push_back(Edge{u, v, 1});
      return true;
    }
    return false;
  };

  for (Vertex u = 0; u < vertexCount; ++u) {
    for (unsigned offset = 1; offset <= neighborsEachSide; ++offset) {
      addEdge(u, static_cast<Vertex>((u + offset) % vertexCount));
    }
  }

  // Rewire: each lattice edge keeps its source, re-targets uniformly.
  for (Edge& edge : edges) {
    if (!rng.bernoulli(beta)) {
      continue;
    }
    for (int attempt = 0; attempt < 32; ++attempt) {
      const auto target = static_cast<Vertex>(rng.uniformBelow(vertexCount));
      if (target == edge.u || target == edge.v) {
        continue;
      }
      if (present.contains(sparse::packPair(edge.u, target))) {
        continue;
      }
      present.erase(sparse::packPair(edge.u, edge.v));
      present.insert(sparse::packPair(edge.u, target));
      edge.v = target;
      break;
    }
  }
  return Graph::fromEdges(edges, vertexCount);
}

Graph configurationModel(std::span<const std::uint64_t> degrees,
                         util::Rng& rng) {
  CHISIM_REQUIRE(!degrees.empty(), "need at least one degree");
  // Stub list: vertex v appears degrees[v] times.
  std::vector<Vertex> stubs;
  const std::uint64_t total =
      std::accumulate(degrees.begin(), degrees.end(), std::uint64_t{0});
  stubs.reserve(total + 1);
  for (Vertex v = 0; v < degrees.size(); ++v) {
    for (std::uint64_t d = 0; d < degrees[v]; ++d) {
      stubs.push_back(v);
    }
  }
  if (stubs.size() % 2 == 1) {
    stubs.pop_back();  // odd total degree cannot be fully matched
  }
  rng.shuffle(stubs);

  // Pair consecutive stubs; a self-loop or duplicate pair is retried by
  // swapping in a random later stub a bounded number of times, then the
  // offending pair is dropped (slightly truncating two degrees).
  std::unordered_set<std::uint64_t> present;
  present.reserve(stubs.size());
  std::vector<Edge> edges;
  edges.reserve(stubs.size() / 2);
  for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
    bool placed = false;
    for (int attempt = 0; attempt < 32 && !placed; ++attempt) {
      const Vertex u = stubs[i];
      const Vertex v = stubs[i + 1];
      if (u != v && !present.contains(sparse::packPair(u, v))) {
        present.insert(sparse::packPair(u, v));
        edges.push_back(Edge{u, v, 1});
        placed = true;
        break;
      }
      // Swap the second stub with a uniformly chosen later stub and retry.
      if (i + 2 >= stubs.size()) {
        break;
      }
      const std::size_t other =
          i + 2 + static_cast<std::size_t>(rng.uniformBelow(stubs.size() - i - 2));
      std::swap(stubs[i + 1], stubs[other]);
    }
  }
  return Graph::fromEdges(edges, static_cast<Vertex>(degrees.size()));
}

}  // namespace chisimnet::graph
