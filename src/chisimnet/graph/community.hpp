#pragma once

#include <cstdint>
#include <vector>

#include "chisimnet/graph/graph.hpp"
#include "chisimnet/util/rng.hpp"

/// Community detection (paper §I: "more novel approaches such as community
/// detection algorithms that can capture emergent macro level
/// characteristics of the network").
///
/// Two standard algorithms over the weighted collocation network:
///   - label propagation (Raghavan et al.): near-linear, each vertex
///     repeatedly adopts the weight-dominant label among its neighbors;
///   - Louvain (Blondel et al.): greedy modularity optimization with graph
///     aggregation between passes.
/// plus weighted modularity, the standard partition quality score.

namespace chisimnet::graph {

struct CommunityAssignment {
  /// communityOf[v] in [0, communityCount) for every vertex.
  std::vector<std::uint32_t> communityOf;
  std::uint32_t communityCount = 0;
  double modularity = 0.0;  ///< of this assignment on the source graph
  unsigned iterations = 0;  ///< sweeps (LP) or levels (Louvain) executed

  /// Sizes of each community, indexed by community id.
  std::vector<std::uint64_t> sizes() const;
};

/// Weighted Newman-Girvan modularity of an arbitrary assignment:
/// Q = (1/2m) Σ_ij [A_ij - k_i k_j / 2m] δ(c_i, c_j).
double modularity(const Graph& graph,
                  std::span<const std::uint32_t> communityOf);

/// Asynchronous weighted label propagation. Vertices are visited in random
/// order each sweep; ties broken by smallest label. Stops when a sweep
/// changes nothing or after maxSweeps.
CommunityAssignment labelPropagation(const Graph& graph, util::Rng& rng,
                                     unsigned maxSweeps = 50);

/// Louvain method: local-move phase to a fixed point, then aggregation,
/// repeated until modularity stops improving. Deterministic for a given
/// rng seed (vertex visit order is shuffled per pass).
CommunityAssignment louvain(const Graph& graph, util::Rng& rng,
                            unsigned maxLevels = 10);

/// Renumbers labels to a dense [0, count) range; returns the count.
std::uint32_t compactLabels(std::vector<std::uint32_t>& labels);

}  // namespace chisimnet::graph
