#include "chisimnet/graph/mixing.hpp"

#include <algorithm>
#include <optional>
#include <unordered_set>

#include "chisimnet/sparse/pair_count_map.hpp"
#include "chisimnet/util/error.hpp"

namespace chisimnet::graph {

MixingMatrix::MixingMatrix(const Graph& graph,
                           std::span<const std::uint32_t> groupOf,
                           std::uint32_t groupCount)
    : groupCount_(groupCount) {
  CHISIM_REQUIRE(groupOf.size() == graph.vertexCount(),
                 "grouping size must match vertex count");
  CHISIM_REQUIRE(groupCount > 0, "need at least one group");
  for (std::uint32_t group : groupOf) {
    CHISIM_REQUIRE(group < groupCount, "group id out of range");
  }
  edges_.assign(static_cast<std::size_t>(groupCount) * groupCount, 0);
  weights_.assign(static_cast<std::size_t>(groupCount) * groupCount, 0);

  for (Vertex u = 0; u < graph.vertexCount(); ++u) {
    const auto row = graph.neighbors(u);
    const auto rowWeights = graph.edgeWeights(u);
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (row[i] <= u) {
        continue;
      }
      const std::uint32_t a = groupOf[u];
      const std::uint32_t b = groupOf[row[i]];
      ++edges_[index(a, b)];
      weights_[index(a, b)] += rowWeights[i];
      if (a != b) {
        ++edges_[index(b, a)];
        weights_[index(b, a)] += rowWeights[i];
      }
      ++totalEdges_;
    }
  }
}

std::uint64_t MixingMatrix::edgeCount(std::uint32_t a, std::uint32_t b) const {
  CHISIM_REQUIRE(a < groupCount_ && b < groupCount_, "group out of range");
  return edges_[index(a, b)];
}

std::uint64_t MixingMatrix::weight(std::uint32_t a, std::uint32_t b) const {
  CHISIM_REQUIRE(a < groupCount_ && b < groupCount_, "group out of range");
  return weights_[index(a, b)];
}

double MixingMatrix::edgeFraction(std::uint32_t a, std::uint32_t b) const {
  if (totalEdges_ == 0) {
    return 0.0;
  }
  return static_cast<double>(edgeCount(a, b)) /
         static_cast<double>(totalEdges_);
}

double MixingMatrix::assortativity() const {
  if (totalEdges_ == 0) {
    return 0.0;
  }
  // e_ij over *edge ends*: each edge contributes 1/2 to e_ab and e_ba
  // (or 1 to e_aa when intra-group), so rows sum to the group's share of
  // edge ends.
  const double m = static_cast<double>(totalEdges_);
  double diagonal = 0.0;
  double squares = 0.0;
  for (std::uint32_t g = 0; g < groupCount_; ++g) {
    double rowSum = 0.0;
    for (std::uint32_t h = 0; h < groupCount_; ++h) {
      const double value = g == h
                               ? static_cast<double>(edges_[index(g, h)]) / m
                               : static_cast<double>(edges_[index(g, h)]) / m / 2.0;
      rowSum += value;
      if (g == h) {
        diagonal += value;
      }
    }
    squares += rowSum * rowSum;
  }
  if (squares >= 1.0) {
    return 1.0;
  }
  return (diagonal - squares) / (1.0 - squares);
}

Graph groupedConfigurationModel(std::span<const std::uint64_t> degrees,
                                std::span<const std::uint32_t> groupOf,
                                std::span<const std::uint64_t> pairEdgeCounts,
                                std::uint32_t groupCount, util::Rng& rng) {
  CHISIM_REQUIRE(degrees.size() == groupOf.size(),
                 "degrees and grouping must have equal size");
  CHISIM_REQUIRE(pairEdgeCounts.size() ==
                     static_cast<std::size_t>(groupCount) * groupCount,
                 "pair table must be groupCount^2");

  // Per-group stub pools.
  std::vector<std::vector<Vertex>> stubs(groupCount);
  for (Vertex v = 0; v < degrees.size(); ++v) {
    CHISIM_REQUIRE(groupOf[v] < groupCount, "group id out of range");
    for (std::uint64_t d = 0; d < degrees[v]; ++d) {
      stubs[groupOf[v]].push_back(v);
    }
  }
  for (auto& pool : stubs) {
    rng.shuffle(pool);
  }

  std::unordered_set<std::uint64_t> present;
  std::vector<Edge> edges;
  const auto popStub = [&stubs](std::uint32_t group) -> std::optional<Vertex> {
    auto& pool = stubs[group];
    if (pool.empty()) {
      return std::nullopt;
    }
    const Vertex v = pool.back();
    pool.pop_back();
    return v;
  };

  const auto placePair = [&](std::uint32_t ga, std::uint32_t gb) {
    for (int attempt = 0; attempt < 32; ++attempt) {
      const auto u = popStub(ga);
      if (!u.has_value()) {
        return;
      }
      const auto v = popStub(gb);
      if (!v.has_value()) {
        stubs[ga].push_back(*u);
        return;
      }
      if (*u != *v && !present.contains(sparse::packPair(*u, *v))) {
        present.insert(sparse::packPair(*u, *v));
        edges.push_back(Edge{*u, *v, 1});
        return;
      }
      // Conflict: return the stubs at random positions and retry.
      auto& poolA = stubs[ga];
      auto& poolB = stubs[gb];
      poolA.push_back(*u);
      poolB.push_back(*v);
      if (poolA.size() > 1) {
        std::swap(poolA.back(), poolA[rng.uniformBelow(poolA.size())]);
      }
      if (poolB.size() > 1) {
        std::swap(poolB.back(), poolB[rng.uniformBelow(poolB.size())]);
      }
    }
  };

  for (std::uint32_t ga = 0; ga < groupCount; ++ga) {
    for (std::uint32_t gb = ga; gb < groupCount; ++gb) {
      const std::uint64_t target =
          pairEdgeCounts[static_cast<std::size_t>(ga) * groupCount + gb];
      for (std::uint64_t e = 0; e < target; ++e) {
        placePair(ga, gb);
      }
    }
  }
  return Graph::fromEdges(edges, static_cast<Vertex>(degrees.size()));
}

}  // namespace chisimnet::graph
