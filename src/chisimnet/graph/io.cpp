#include "chisimnet/graph/io.hpp"

#include <fstream>

#include "chisimnet/util/error.hpp"

namespace chisimnet::graph {

namespace {

std::ofstream openOut(const std::filesystem::path& path) {
  std::ofstream out(path);
  CHISIM_CHECK(out.good(), "cannot open for writing: " + path.string());
  return out;
}

}  // namespace

void writeEdgeListTsv(const Graph& graph, const std::filesystem::path& path) {
  std::ofstream out = openOut(path);
  for (Vertex u = 0; u < graph.vertexCount(); ++u) {
    const auto row = graph.neighbors(u);
    const auto rowWeights = graph.edgeWeights(u);
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (row[i] > u) {
        out << graph.label(u) << '\t' << graph.label(row[i]) << '\t'
            << rowWeights[i] << '\n';
      }
    }
  }
  CHISIM_CHECK(out.good(), "edge list write failed: " + path.string());
}

void writeGraphMl(const Graph& graph, const std::filesystem::path& path) {
  std::ofstream out = openOut(path);
  out << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      << "<graphml xmlns=\"http://graphml.graphdrawing.org/xmlns\">\n"
      << "  <key id=\"d0\" for=\"node\" attr.name=\"degree\" attr.type=\"long\"/>\n"
      << "  <key id=\"d1\" for=\"edge\" attr.name=\"weight\" attr.type=\"long\"/>\n"
      << "  <graph id=\"G\" edgedefault=\"undirected\">\n";
  for (Vertex v = 0; v < graph.vertexCount(); ++v) {
    out << "    <node id=\"n" << graph.label(v) << "\"><data key=\"d0\">"
        << graph.degree(v) << "</data></node>\n";
  }
  std::uint64_t edgeId = 0;
  for (Vertex u = 0; u < graph.vertexCount(); ++u) {
    const auto row = graph.neighbors(u);
    const auto rowWeights = graph.edgeWeights(u);
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (row[i] > u) {
        out << "    <edge id=\"e" << edgeId++ << "\" source=\"n"
            << graph.label(u) << "\" target=\"n" << graph.label(row[i])
            << "\"><data key=\"d1\">" << rowWeights[i] << "</data></edge>\n";
      }
    }
  }
  out << "  </graph>\n</graphml>\n";
  CHISIM_CHECK(out.good(), "GraphML write failed: " + path.string());
}

void writeDot(const Graph& graph, const std::filesystem::path& path) {
  std::ofstream out = openOut(path);
  out << "graph G {\n";
  for (Vertex u = 0; u < graph.vertexCount(); ++u) {
    const auto row = graph.neighbors(u);
    const auto rowWeights = graph.edgeWeights(u);
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (row[i] > u) {
        out << "  " << graph.label(u) << " -- " << graph.label(row[i])
            << " [weight=" << rowWeights[i] << "];\n";
      }
    }
  }
  out << "}\n";
  CHISIM_CHECK(out.good(), "DOT write failed: " + path.string());
}

}  // namespace chisimnet::graph
