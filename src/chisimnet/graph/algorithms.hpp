#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "chisimnet/graph/graph.hpp"

/// Graph analyses used in the paper's §V: degree sequences (Figs 3, 5),
/// local clustering coefficients (Fig 4), radius-limited ego networks and
/// induced subgraphs (Figs 1, 2), plus connected components.

namespace chisimnet::graph {

/// degrees()[v] is the (unweighted) vertex degree of v.
std::vector<std::uint64_t> degreeSequence(const Graph& graph);

/// Local clustering coefficient per vertex: the ratio of closed triangles
/// to connected triples centered on the vertex (Wasserman & Faust). By
/// convention vertices with degree < 2 get coefficient 0.
std::vector<double> localClusteringCoefficients(const Graph& graph);

/// Global transitivity: 3 x triangles / connected triples over the whole
/// graph (0 for triple-free graphs).
double globalTransitivity(const Graph& graph);

/// Total number of triangles in the graph.
std::uint64_t triangleCount(const Graph& graph);

/// All vertices within `radius` hops of `source` (including the source),
/// sorted ascending. Radius 0 yields just the source.
std::vector<Vertex> verticesWithinRadius(const Graph& graph, Vertex source,
                                         unsigned radius);

/// Induced subgraph over `vertices` (need not be sorted; duplicates
/// ignored). All edges between selected vertices are preserved, as are
/// their weights; subgraph labels are the parent graph's labels, so results
/// can still be joined back to person ids.
Graph inducedSubgraph(const Graph& graph, std::span<const Vertex> vertices);

/// Ego network: the induced subgraph on all vertices within `radius` of
/// `source` — the V = V1 ∪ V2 construction of paper §V.A for radius 2.
Graph egoNetwork(const Graph& graph, Vertex source, unsigned radius);

struct Components {
  std::vector<std::uint32_t> componentOf;  ///< per-vertex component id
  std::vector<std::uint64_t> sizes;        ///< per-component vertex count

  std::size_t count() const noexcept { return sizes.size(); }
  std::uint64_t giantSize() const noexcept;
};

/// Connected components via BFS.
Components connectedComponents(const Graph& graph);

/// k-core decomposition (Batagelj-Zaversnik peeling): coreOf[v] is the
/// largest k such that v belongs to a subgraph where every vertex has
/// degree >= k. A macro-structure summary complementing the degree
/// distribution: congregate places show up as deep cores.
std::vector<std::uint32_t> kCoreDecomposition(const Graph& graph);

/// Mean unweighted degree (0 for the empty graph).
double meanDegree(const Graph& graph);

}  // namespace chisimnet::graph
