#include "chisimnet/graph/community.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "chisimnet/util/error.hpp"

namespace chisimnet::graph {

std::vector<std::uint64_t> CommunityAssignment::sizes() const {
  std::vector<std::uint64_t> result(communityCount, 0);
  for (std::uint32_t community : communityOf) {
    ++result[community];
  }
  return result;
}

std::uint32_t compactLabels(std::vector<std::uint32_t>& labels) {
  std::unordered_map<std::uint32_t, std::uint32_t> remap;
  remap.reserve(labels.size());
  for (std::uint32_t& label : labels) {
    const auto [it, inserted] =
        remap.emplace(label, static_cast<std::uint32_t>(remap.size()));
    label = it->second;
  }
  return static_cast<std::uint32_t>(remap.size());
}

double modularity(const Graph& graph,
                  std::span<const std::uint32_t> communityOf) {
  CHISIM_REQUIRE(communityOf.size() == graph.vertexCount(),
                 "assignment size must match vertex count");
  const double twoM = 2.0 * static_cast<double>(graph.totalWeight());
  if (twoM <= 0.0) {
    return 0.0;
  }
  std::uint32_t maxLabel = 0;
  for (std::uint32_t label : communityOf) {
    maxLabel = std::max(maxLabel, label);
  }
  std::vector<double> communityStrength(maxLabel + 1, 0.0);
  double internal = 0.0;  // 2 x intra-community edge weight
  for (Vertex u = 0; u < graph.vertexCount(); ++u) {
    const auto row = graph.neighbors(u);
    const auto rowWeights = graph.edgeWeights(u);
    double strength = 0.0;
    for (std::size_t i = 0; i < row.size(); ++i) {
      strength += static_cast<double>(rowWeights[i]);
      if (communityOf[u] == communityOf[row[i]]) {
        internal += static_cast<double>(rowWeights[i]);
      }
    }
    communityStrength[communityOf[u]] += strength;
  }
  double expectation = 0.0;
  for (double strength : communityStrength) {
    expectation += (strength / twoM) * (strength / twoM);
  }
  return internal / twoM - expectation;
}

CommunityAssignment labelPropagation(const Graph& graph, util::Rng& rng,
                                     unsigned maxSweeps) {
  CommunityAssignment result;
  result.communityOf.resize(graph.vertexCount());
  std::iota(result.communityOf.begin(), result.communityOf.end(), 0u);
  if (graph.vertexCount() == 0) {
    return result;
  }

  std::vector<Vertex> order(graph.vertexCount());
  std::iota(order.begin(), order.end(), 0u);
  std::unordered_map<std::uint32_t, double> labelWeight;

  for (unsigned sweep = 0; sweep < maxSweeps; ++sweep) {
    result.iterations = sweep + 1;
    rng.shuffle(order);
    bool changed = false;
    for (Vertex v : order) {
      const auto row = graph.neighbors(v);
      if (row.empty()) {
        continue;
      }
      labelWeight.clear();
      const auto rowWeights = graph.edgeWeights(v);
      for (std::size_t i = 0; i < row.size(); ++i) {
        labelWeight[result.communityOf[row[i]]] +=
            static_cast<double>(rowWeights[i]);
      }
      // Weight-dominant label; ties to the smallest label for determinism.
      std::uint32_t best = result.communityOf[v];
      double bestWeight = -1.0;
      for (const auto& [label, weight] : labelWeight) {
        if (weight > bestWeight ||
            (weight == bestWeight && label < best)) {
          best = label;
          bestWeight = weight;
        }
      }
      if (best != result.communityOf[v]) {
        result.communityOf[v] = best;
        changed = true;
      }
    }
    if (!changed) {
      break;
    }
  }

  result.communityCount = compactLabels(result.communityOf);
  result.modularity = modularity(graph, result.communityOf);
  return result;
}

namespace {

/// Aggregated weighted graph used between Louvain levels. Strength counts
/// self-loops twice, matching the usual modularity conventions.
struct LevelGraph {
  std::vector<std::vector<std::pair<std::uint32_t, double>>> adjacency;
  std::vector<double> selfLoop;
  double twoM = 0.0;

  std::size_t size() const noexcept { return adjacency.size(); }

  double strength(std::uint32_t node) const {
    double total = 2.0 * selfLoop[node];
    for (const auto& [neighbor, weight] : adjacency[node]) {
      total += weight;
    }
    return total;
  }
};

LevelGraph fromGraph(const Graph& graph) {
  LevelGraph level;
  level.adjacency.resize(graph.vertexCount());
  level.selfLoop.assign(graph.vertexCount(), 0.0);
  for (Vertex u = 0; u < graph.vertexCount(); ++u) {
    const auto row = graph.neighbors(u);
    const auto rowWeights = graph.edgeWeights(u);
    level.adjacency[u].reserve(row.size());
    for (std::size_t i = 0; i < row.size(); ++i) {
      level.adjacency[u].emplace_back(row[i],
                                      static_cast<double>(rowWeights[i]));
    }
  }
  for (std::uint32_t n = 0; n < level.size(); ++n) {
    level.twoM += level.strength(n);
  }
  return level;
}

/// One Louvain local-move phase; returns the node->community map.
std::vector<std::uint32_t> localMoves(const LevelGraph& level, util::Rng& rng) {
  const std::size_t n = level.size();
  std::vector<std::uint32_t> community(n);
  std::iota(community.begin(), community.end(), 0u);
  std::vector<double> communityStrength(n);
  for (std::uint32_t node = 0; node < n; ++node) {
    communityStrength[node] = level.strength(node);
  }

  std::vector<std::uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::unordered_map<std::uint32_t, double> neighborWeight;

  bool improved = true;
  while (improved) {
    improved = false;
    rng.shuffle(order);
    for (std::uint32_t node : order) {
      const double k = level.strength(node);
      neighborWeight.clear();
      for (const auto& [neighbor, weight] : level.adjacency[node]) {
        neighborWeight[community[neighbor]] += weight;
      }
      const std::uint32_t from = community[node];
      communityStrength[from] -= k;

      std::uint32_t best = from;
      double bestGain = neighborWeight.count(from) != 0
                            ? neighborWeight[from] -
                                  k * communityStrength[from] / level.twoM
                            : -k * communityStrength[from] / level.twoM;
      for (const auto& [candidate, weight] : neighborWeight) {
        if (candidate == from) {
          continue;
        }
        const double gain =
            weight - k * communityStrength[candidate] / level.twoM;
        if (gain > bestGain + 1e-12) {
          bestGain = gain;
          best = candidate;
        }
      }
      communityStrength[best] += k;
      if (best != from) {
        community[node] = best;
        improved = true;
      }
    }
  }
  return community;
}

/// Aggregates communities into the next level's graph.
LevelGraph aggregate(const LevelGraph& level,
                     const std::vector<std::uint32_t>& community,
                     std::uint32_t communityCount) {
  LevelGraph next;
  next.adjacency.resize(communityCount);
  next.selfLoop.assign(communityCount, 0.0);
  next.twoM = level.twoM;

  std::vector<std::unordered_map<std::uint32_t, double>> edges(communityCount);
  for (std::uint32_t node = 0; node < level.size(); ++node) {
    const std::uint32_t cu = community[node];
    next.selfLoop[cu] += level.selfLoop[node];
    for (const auto& [neighbor, weight] : level.adjacency[node]) {
      const std::uint32_t cv = community[neighbor];
      if (cu == cv) {
        next.selfLoop[cu] += weight / 2.0;  // each edge visited twice
      } else {
        edges[cu][cv] += weight;
      }
    }
  }
  for (std::uint32_t c = 0; c < communityCount; ++c) {
    next.adjacency[c].assign(edges[c].begin(), edges[c].end());
    std::sort(next.adjacency[c].begin(), next.adjacency[c].end());
  }
  return next;
}

}  // namespace

CommunityAssignment louvain(const Graph& graph, util::Rng& rng,
                            unsigned maxLevels) {
  CommunityAssignment result;
  result.communityOf.resize(graph.vertexCount());
  std::iota(result.communityOf.begin(), result.communityOf.end(), 0u);
  if (graph.vertexCount() == 0 || graph.edgeCount() == 0) {
    result.communityCount = graph.vertexCount();
    return result;
  }

  LevelGraph level = fromGraph(graph);
  // flat[v] = current community of original vertex v.
  std::vector<std::uint32_t> flat(graph.vertexCount());
  std::iota(flat.begin(), flat.end(), 0u);
  double bestModularity = modularity(graph, flat);

  for (unsigned pass = 0; pass < maxLevels; ++pass) {
    result.iterations = pass + 1;
    std::vector<std::uint32_t> community = localMoves(level, rng);
    const std::uint32_t count = compactLabels(community);

    std::vector<std::uint32_t> candidate(flat.size());
    for (std::size_t v = 0; v < flat.size(); ++v) {
      candidate[v] = community[flat[v]];
    }
    const double q = modularity(graph, candidate);
    if (q <= bestModularity + 1e-9) {
      break;
    }
    bestModularity = q;
    flat = std::move(candidate);
    if (count == level.size()) {
      break;  // no aggregation possible
    }
    level = aggregate(level, community, count);
  }

  result.communityOf = std::move(flat);
  result.communityCount = compactLabels(result.communityOf);
  result.modularity = modularity(graph, result.communityOf);
  return result;
}

}  // namespace chisimnet::graph
