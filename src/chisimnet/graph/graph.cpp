#include "chisimnet/graph/graph.hpp"

#include <algorithm>
#include <numeric>

#include "chisimnet/util/error.hpp"

namespace chisimnet::graph {

Graph Graph::fromTriplets(std::span<const sparse::AdjacencyTriplet> triplets) {
  // Collect and compact the person ids that appear.
  std::vector<std::uint32_t> labels;
  labels.reserve(triplets.size() * 2);
  for (const sparse::AdjacencyTriplet& triplet : triplets) {
    labels.push_back(triplet.i);
    labels.push_back(triplet.j);
  }
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());
  return fromTriplets(triplets, labels);
}

Graph Graph::fromTriplets(std::span<const sparse::AdjacencyTriplet> triplets,
                          std::span<const std::uint32_t> vertexLabels) {
  std::vector<std::uint32_t> labels(vertexLabels.begin(), vertexLabels.end());
  std::sort(labels.begin(), labels.end());
  labels.erase(std::unique(labels.begin(), labels.end()), labels.end());

  const auto compact = [&labels](std::uint32_t id) {
    const auto it = std::lower_bound(labels.begin(), labels.end(), id);
    CHISIM_REQUIRE(it != labels.end() && *it == id,
                   "triplet endpoint missing from vertex label universe");
    return static_cast<Vertex>(it - labels.begin());
  };

  std::vector<Edge> edges;
  edges.reserve(triplets.size());
  for (const sparse::AdjacencyTriplet& triplet : triplets) {
    CHISIM_REQUIRE(triplet.i != triplet.j, "self-loop in adjacency triplets");
    edges.push_back(Edge{compact(triplet.i), compact(triplet.j), triplet.weight});
  }
  return build(std::move(edges), std::move(labels));
}

Graph Graph::fromEdges(std::span<const Edge> edges, Vertex vertexCount) {
  std::vector<std::uint32_t> labels(vertexCount);
  std::iota(labels.begin(), labels.end(), 0u);
  std::vector<Edge> copy(edges.begin(), edges.end());
  for (const Edge& edge : copy) {
    CHISIM_REQUIRE(edge.u < vertexCount && edge.v < vertexCount,
                   "edge endpoint out of range");
    CHISIM_REQUIRE(edge.u != edge.v, "self-loops are not supported");
  }
  return build(std::move(copy), std::move(labels));
}

Graph Graph::build(std::vector<Edge> edges, std::vector<std::uint32_t> labels) {
  // Canonicalize, sort and merge parallel edges.
  for (Edge& edge : edges) {
    if (edge.u > edge.v) {
      std::swap(edge.u, edge.v);
    }
  }
  std::sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  });
  std::vector<Edge> merged;
  merged.reserve(edges.size());
  for (const Edge& edge : edges) {
    if (!merged.empty() && merged.back().u == edge.u && merged.back().v == edge.v) {
      merged.back().weight += edge.weight;
    } else {
      merged.push_back(edge);
    }
  }

  Graph graph;
  graph.labels_ = std::move(labels);
  const std::size_t n = graph.labels_.size();
  graph.offsets_.assign(n + 1, 0);
  for (const Edge& edge : merged) {
    ++graph.offsets_[edge.u + 1];
    ++graph.offsets_[edge.v + 1];
  }
  for (std::size_t v = 1; v <= n; ++v) {
    graph.offsets_[v] += graph.offsets_[v - 1];
  }
  graph.neighbors_.resize(merged.size() * 2);
  graph.weights_.resize(merged.size() * 2);
  std::vector<std::uint64_t> cursor(graph.offsets_.begin(),
                                    graph.offsets_.end() - 1);
  for (const Edge& edge : merged) {
    graph.neighbors_[cursor[edge.u]] = edge.v;
    graph.weights_[cursor[edge.u]++] = edge.weight;
    graph.neighbors_[cursor[edge.v]] = edge.u;
    graph.weights_[cursor[edge.v]++] = edge.weight;
  }

  // Sort each adjacency row by neighbor id (weights permuted alongside).
  for (std::size_t v = 0; v < n; ++v) {
    const std::uint64_t begin = graph.offsets_[v];
    const std::uint64_t end = graph.offsets_[v + 1];
    std::vector<std::pair<Vertex, Weight>> row;
    row.reserve(end - begin);
    for (std::uint64_t i = begin; i < end; ++i) {
      row.emplace_back(graph.neighbors_[i], graph.weights_[i]);
    }
    std::sort(row.begin(), row.end());
    for (std::uint64_t i = begin; i < end; ++i) {
      graph.neighbors_[i] = row[i - begin].first;
      graph.weights_[i] = row[i - begin].second;
    }
  }
  return graph;
}

Weight Graph::totalWeight() const noexcept {
  Weight doubled = 0;
  for (Weight weight : weights_) {
    doubled += weight;
  }
  return doubled / 2;
}

bool Graph::hasEdge(Vertex u, Vertex v) const noexcept {
  if (u >= vertexCount() || v >= vertexCount()) {
    return false;
  }
  const auto row = neighbors(u);
  return std::binary_search(row.begin(), row.end(), v);
}

Weight Graph::weightBetween(Vertex u, Vertex v) const noexcept {
  if (u >= vertexCount() || v >= vertexCount()) {
    return 0;
  }
  const auto row = neighbors(u);
  const auto it = std::lower_bound(row.begin(), row.end(), v);
  if (it == row.end() || *it != v) {
    return 0;
  }
  return edgeWeights(u)[static_cast<std::size_t>(it - row.begin())];
}

std::optional<Vertex> Graph::vertexForLabel(std::uint32_t label) const noexcept {
  const auto it = std::lower_bound(labels_.begin(), labels_.end(), label);
  if (it == labels_.end() || *it != label) {
    return std::nullopt;
  }
  return static_cast<Vertex>(it - labels_.begin());
}

std::size_t Graph::memoryBytes() const noexcept {
  return offsets_.size() * sizeof(std::uint64_t) +
         neighbors_.size() * sizeof(Vertex) + weights_.size() * sizeof(Weight) +
         labels_.size() * sizeof(std::uint32_t);
}

}  // namespace chisimnet::graph
