#pragma once

#include <filesystem>
#include <vector>

#include "chisimnet/graph/graph.hpp"
#include "chisimnet/util/rng.hpp"

/// Force-directed layout in the spirit of Gephi's ForceAtlas 2 (paper §V.A:
/// clusters of highly connected nodes pull together; edge weights shorten
/// springs), plus an SVG renderer that colors nodes by degree — darker
/// means higher degree, exactly as in Figs 1 and 2.

namespace chisimnet::graph {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

struct LayoutOptions {
  unsigned iterations = 200;
  double repulsion = 1.0;       ///< scaling of the n-body repulsive force
  double gravity = 0.05;        ///< pull toward the origin (keeps components together)
  double step = 0.1;            ///< integration step (decays over iterations)
  bool weightedAttraction = true;  ///< scale springs by log(1 + weight)
};

/// Computes positions for every vertex. ForceAtlas2-style forces:
/// attraction along edges proportional to distance, degree-scaled repulsion
/// between all vertex pairs, and weak gravity. O(n^2) per iteration — meant
/// for ego-network scale graphs (10^3..10^4 vertices), matching the paper's
/// visualization workflow.
std::vector<Point> forceAtlas2Layout(const Graph& graph,
                                     const LayoutOptions& options,
                                     util::Rng& rng);

struct SvgOptions {
  double width = 1600.0;
  double height = 1600.0;
  double nodeRadius = 3.0;
  double edgeOpacity = 0.08;
};

/// Renders the laid-out graph to an SVG file; node fill goes from light
/// gray (minimum degree) to near-black (maximum degree).
void writeSvg(const Graph& graph, std::span<const Point> positions,
              const std::filesystem::path& path, const SvgOptions& options = {});

}  // namespace chisimnet::graph
