#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "chisimnet/sparse/adjacency.hpp"

/// Undirected weighted graph in CSR form (the iGraph substitute).
///
/// The collocation network is built from the sparse triangular adjacency
/// matrix (paper §IV-V): vertices are persons, edge weights are collocated
/// person-hours. Vertex ids are compacted to [0, n); the original person ids
/// are retained as labels so analyses can join back to demographic data.
/// Neighbor lists are sorted by vertex id, which the clustering and
/// subgraph algorithms rely on for O(d1+d2) intersections.

namespace chisimnet::graph {

using Vertex = std::uint32_t;
using Weight = std::uint64_t;

struct Edge {
  Vertex u = 0;
  Vertex v = 0;
  Weight weight = 1;
};

class Graph {
 public:
  Graph() = default;

  /// Builds from upper-triangular adjacency triplets; vertex labels are the
  /// person ids appearing in the triplets, compacted in ascending order.
  static Graph fromTriplets(std::span<const sparse::AdjacencyTriplet> triplets);

  /// Same, but over an explicit vertex universe: `vertexLabels` lists every
  /// vertex (by original id) that must exist, including isolated ones;
  /// every triplet endpoint must be in the list.
  static Graph fromTriplets(std::span<const sparse::AdjacencyTriplet> triplets,
                            std::span<const std::uint32_t> vertexLabels);

  /// Builds from explicit edges over compact vertex ids [0, vertexCount).
  /// Parallel edges are merged by summing weights; self-loops are rejected.
  static Graph fromEdges(std::span<const Edge> edges, Vertex vertexCount);

  Vertex vertexCount() const noexcept {
    return static_cast<Vertex>(offsets_.empty() ? 0 : offsets_.size() - 1);
  }
  std::uint64_t edgeCount() const noexcept { return neighbors_.size() / 2; }

  std::span<const Vertex> neighbors(Vertex v) const {
    return {neighbors_.data() + offsets_[v], neighbors_.data() + offsets_[v + 1]};
  }
  std::span<const Weight> edgeWeights(Vertex v) const {
    return {weights_.data() + offsets_[v], weights_.data() + offsets_[v + 1]};
  }

  std::uint64_t degree(Vertex v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Sum of all edge weights (each undirected edge counted once).
  Weight totalWeight() const noexcept;

  bool hasEdge(Vertex u, Vertex v) const noexcept;

  /// Weight of edge (u, v), or 0 when absent.
  Weight weightBetween(Vertex u, Vertex v) const noexcept;

  /// Original id (e.g. person id) of compact vertex v.
  std::uint32_t label(Vertex v) const { return labels_[v]; }
  std::span<const std::uint32_t> labels() const noexcept { return labels_; }

  /// Compact vertex for an original id, if present.
  std::optional<Vertex> vertexForLabel(std::uint32_t label) const noexcept;

  /// Approximate heap bytes of the CSR storage.
  std::size_t memoryBytes() const noexcept;

 private:
  static Graph build(std::vector<Edge> edges, std::vector<std::uint32_t> labels);

  std::vector<std::uint64_t> offsets_;  ///< size n+1
  std::vector<Vertex> neighbors_;       ///< both directions, sorted per row
  std::vector<Weight> weights_;
  std::vector<std::uint32_t> labels_;   ///< compact vertex -> original id (sorted)
};

}  // namespace chisimnet::graph
