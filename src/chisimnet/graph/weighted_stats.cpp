#include "chisimnet/graph/weighted_stats.hpp"

#include <cmath>

namespace chisimnet::graph {

namespace {

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  const std::size_t n = x.size();
  if (n < 2) {
    return 0.0;
  }
  double meanX = 0.0;
  double meanY = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    meanX += x[i];
    meanY += y[i];
  }
  meanX /= static_cast<double>(n);
  meanY /= static_cast<double>(n);
  double covariance = 0.0;
  double varX = 0.0;
  double varY = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - meanX;
    const double dy = y[i] - meanY;
    covariance += dx * dy;
    varX += dx * dx;
    varY += dy * dy;
  }
  if (varX <= 0.0 || varY <= 0.0) {
    return 0.0;
  }
  return covariance / std::sqrt(varX * varY);
}

}  // namespace

std::vector<std::uint64_t> strengthSequence(const Graph& graph) {
  std::vector<std::uint64_t> strengths(graph.vertexCount(), 0);
  for (Vertex v = 0; v < graph.vertexCount(); ++v) {
    for (Weight weight : graph.edgeWeights(v)) {
      strengths[v] += weight;
    }
  }
  return strengths;
}

std::vector<std::uint64_t> edgeWeightSequence(const Graph& graph) {
  std::vector<std::uint64_t> weights;
  weights.reserve(graph.edgeCount());
  for (Vertex u = 0; u < graph.vertexCount(); ++u) {
    const auto row = graph.neighbors(u);
    const auto rowWeights = graph.edgeWeights(u);
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (row[i] > u) {
        weights.push_back(rowWeights[i]);
      }
    }
  }
  return weights;
}

double degreeStrengthCorrelation(const Graph& graph) {
  const auto strengths = strengthSequence(graph);
  std::vector<double> degrees(graph.vertexCount());
  std::vector<double> strengthsD(graph.vertexCount());
  for (Vertex v = 0; v < graph.vertexCount(); ++v) {
    degrees[v] = static_cast<double>(graph.degree(v));
    strengthsD[v] = static_cast<double>(strengths[v]);
  }
  return pearson(degrees, strengthsD);
}

double degreeAssortativity(const Graph& graph) {
  std::vector<double> left;
  std::vector<double> right;
  left.reserve(graph.edgeCount() * 2);
  right.reserve(graph.edgeCount() * 2);
  for (Vertex u = 0; u < graph.vertexCount(); ++u) {
    for (Vertex v : graph.neighbors(u)) {
      if (v > u) {
        // Symmetrize: include the edge in both orientations so the
        // correlation is orientation-free.
        left.push_back(static_cast<double>(graph.degree(u)));
        right.push_back(static_cast<double>(graph.degree(v)));
        left.push_back(static_cast<double>(graph.degree(v)));
        right.push_back(static_cast<double>(graph.degree(u)));
      }
    }
  }
  return pearson(left, right);
}

std::vector<double> weightedClusteringCoefficients(const Graph& graph) {
  std::vector<double> coefficients(graph.vertexCount(), 0.0);
  for (Vertex v = 0; v < graph.vertexCount(); ++v) {
    const auto row = graph.neighbors(v);
    if (row.size() < 2) {
      continue;
    }
    const auto rowWeights = graph.edgeWeights(v);
    double strength = 0.0;
    for (Weight weight : rowWeights) {
      strength += static_cast<double>(weight);
    }
    // Barrat's sum runs over ordered neighbor pairs; iterating unordered
    // pairs, each triangle contributes (w_a + w_b)/2 twice = (w_a + w_b).
    double weightedTriangles = 0.0;
    for (std::size_t a = 0; a < row.size(); ++a) {
      for (std::size_t b = a + 1; b < row.size(); ++b) {
        if (graph.hasEdge(row[a], row[b])) {
          weightedTriangles += static_cast<double>(rowWeights[a]) +
                               static_cast<double>(rowWeights[b]);
        }
      }
    }
    coefficients[v] = weightedTriangles /
                      (strength * static_cast<double>(row.size() - 1));
  }
  return coefficients;
}

std::vector<double> meanNeighborDegree(const Graph& graph) {
  std::vector<double> result(graph.vertexCount(), 0.0);
  for (Vertex v = 0; v < graph.vertexCount(); ++v) {
    const auto row = graph.neighbors(v);
    if (row.empty()) {
      continue;
    }
    double sum = 0.0;
    for (Vertex neighbor : row) {
      sum += static_cast<double>(graph.degree(neighbor));
    }
    result[v] = sum / static_cast<double>(row.size());
  }
  return result;
}

}  // namespace chisimnet::graph
