#pragma once

#include <filesystem>

#include "chisimnet/graph/graph.hpp"

/// Graph exporters. The paper exports ego-network subgraphs from R/iGraph
/// into Gephi for visualization; these writers produce the equivalent
/// interchange files (edge list, GraphML — Gephi's native import — and
/// Graphviz DOT).

namespace chisimnet::graph {

/// Tab-separated "<source>\t<target>\t<weight>" lines using vertex labels.
void writeEdgeListTsv(const Graph& graph, const std::filesystem::path& path);

/// GraphML with a node attribute `degree` and an edge attribute `weight`
/// (what Gephi reads to color by degree, as in Figs 1-2).
void writeGraphMl(const Graph& graph, const std::filesystem::path& path);

/// Graphviz DOT (undirected).
void writeDot(const Graph& graph, const std::filesystem::path& path);

}  // namespace chisimnet::graph
