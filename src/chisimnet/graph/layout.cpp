#include "chisimnet/graph/layout.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "chisimnet/util/error.hpp"

namespace chisimnet::graph {

std::vector<Point> forceAtlas2Layout(const Graph& graph,
                                     const LayoutOptions& options,
                                     util::Rng& rng) {
  const std::size_t n = graph.vertexCount();
  std::vector<Point> positions(n);
  if (n == 0) {
    return positions;
  }
  // Random initial placement on a disc scaled with sqrt(n).
  const double radius = std::sqrt(static_cast<double>(n));
  for (Point& point : positions) {
    const double angle = rng.uniformReal(0.0, 2.0 * 3.141592653589793);
    const double r = radius * std::sqrt(rng.uniform01());
    point.x = r * std::cos(angle);
    point.y = r * std::sin(angle);
  }

  std::vector<Point> forces(n);
  std::vector<double> mass(n);
  for (std::size_t v = 0; v < n; ++v) {
    mass[v] = 1.0 + static_cast<double>(graph.degree(v));
  }

  for (unsigned iteration = 0; iteration < options.iterations; ++iteration) {
    std::fill(forces.begin(), forces.end(), Point{});

    // Degree-scaled pairwise repulsion (FA2's (deg+1)(deg+1)/d force).
    for (std::size_t a = 0; a < n; ++a) {
      for (std::size_t b = a + 1; b < n; ++b) {
        double dx = positions[a].x - positions[b].x;
        double dy = positions[a].y - positions[b].y;
        double distanceSq = dx * dx + dy * dy;
        if (distanceSq < 1e-9) {
          dx = rng.uniformReal(-1e-3, 1e-3);
          dy = rng.uniformReal(-1e-3, 1e-3);
          distanceSq = dx * dx + dy * dy;
        }
        const double force =
            options.repulsion * mass[a] * mass[b] / distanceSq;
        forces[a].x += dx * force;
        forces[a].y += dy * force;
        forces[b].x -= dx * force;
        forces[b].y -= dy * force;
      }
    }

    // Linear attraction along edges (weighted by log(1 + w)).
    for (Vertex u = 0; u < graph.vertexCount(); ++u) {
      const auto row = graph.neighbors(u);
      const auto rowWeights = graph.edgeWeights(u);
      for (std::size_t i = 0; i < row.size(); ++i) {
        const Vertex v = row[i];
        if (v <= u) {
          continue;
        }
        const double dx = positions[v].x - positions[u].x;
        const double dy = positions[v].y - positions[u].y;
        const double pull =
            options.weightedAttraction
                ? std::log1p(static_cast<double>(rowWeights[i]))
                : 1.0;
        forces[u].x += dx * pull;
        forces[u].y += dy * pull;
        forces[v].x -= dx * pull;
        forces[v].y -= dy * pull;
      }
    }

    // Gravity toward the origin, scaled by mass.
    for (std::size_t v = 0; v < n; ++v) {
      forces[v].x -= options.gravity * mass[v] * positions[v].x;
      forces[v].y -= options.gravity * mass[v] * positions[v].y;
    }

    // Integrate with a decaying step and a per-node speed cap.
    const double decay = 1.0 - static_cast<double>(iteration) /
                                   static_cast<double>(options.iterations);
    const double step = options.step * decay;
    for (std::size_t v = 0; v < n; ++v) {
      double fx = forces[v].x / mass[v];
      double fy = forces[v].y / mass[v];
      const double magnitude = std::sqrt(fx * fx + fy * fy);
      const double cap = 10.0;
      if (magnitude > cap) {
        fx *= cap / magnitude;
        fy *= cap / magnitude;
      }
      positions[v].x += step * fx;
      positions[v].y += step * fy;
    }
  }
  return positions;
}

void writeSvg(const Graph& graph, std::span<const Point> positions,
              const std::filesystem::path& path, const SvgOptions& options) {
  CHISIM_REQUIRE(positions.size() == graph.vertexCount(),
                 "positions/vertex count mismatch");
  std::ofstream out(path);
  CHISIM_CHECK(out.good(), "cannot open SVG for writing: " + path.string());

  double minX = 0.0;
  double maxX = 1.0;
  double minY = 0.0;
  double maxY = 1.0;
  if (!positions.empty()) {
    minX = maxX = positions[0].x;
    minY = maxY = positions[0].y;
    for (const Point& point : positions) {
      minX = std::min(minX, point.x);
      maxX = std::max(maxX, point.x);
      minY = std::min(minY, point.y);
      maxY = std::max(maxY, point.y);
    }
  }
  const double margin = 20.0;
  const double spanX = std::max(1e-9, maxX - minX);
  const double spanY = std::max(1e-9, maxY - minY);
  const auto mapX = [&](double x) {
    return margin + (x - minX) / spanX * (options.width - 2 * margin);
  };
  const auto mapY = [&](double y) {
    return margin + (y - minY) / spanY * (options.height - 2 * margin);
  };

  std::uint64_t maxDegree = 1;
  for (Vertex v = 0; v < graph.vertexCount(); ++v) {
    maxDegree = std::max(maxDegree, graph.degree(v));
  }

  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << options.width
      << "\" height=\"" << options.height << "\" viewBox=\"0 0 "
      << options.width << " " << options.height << "\">\n"
      << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n"
      << "<g stroke=\"#3060a0\" stroke-opacity=\"" << options.edgeOpacity
      << "\" stroke-width=\"0.5\">\n";
  for (Vertex u = 0; u < graph.vertexCount(); ++u) {
    for (Vertex v : graph.neighbors(u)) {
      if (v > u) {
        out << "<line x1=\"" << mapX(positions[u].x) << "\" y1=\""
            << mapY(positions[u].y) << "\" x2=\"" << mapX(positions[v].x)
            << "\" y2=\"" << mapY(positions[v].y) << "\"/>\n";
      }
    }
  }
  out << "</g>\n<g>\n";
  for (Vertex v = 0; v < graph.vertexCount(); ++v) {
    // Dark = high degree, matching the paper's coloring.
    const double fraction = static_cast<double>(graph.degree(v)) /
                            static_cast<double>(maxDegree);
    const int shade = static_cast<int>(220.0 * (1.0 - fraction));
    out << "<circle cx=\"" << mapX(positions[v].x) << "\" cy=\""
        << mapY(positions[v].y) << "\" r=\"" << options.nodeRadius
        << "\" fill=\"rgb(" << shade << ',' << shade << ',' << shade
        << ")\"/>\n";
  }
  out << "</g>\n</svg>\n";
  CHISIM_CHECK(out.good(), "SVG write failed: " + path.string());
}

}  // namespace chisimnet::graph
