#include "chisimnet/graph/algorithms.hpp"

#include <algorithm>
#include <deque>

#include "chisimnet/util/error.hpp"

namespace chisimnet::graph {

std::vector<std::uint64_t> degreeSequence(const Graph& graph) {
  std::vector<std::uint64_t> degrees(graph.vertexCount());
  for (Vertex v = 0; v < graph.vertexCount(); ++v) {
    degrees[v] = graph.degree(v);
  }
  return degrees;
}

namespace {

/// Number of common neighbors of u and v (sorted-list intersection).
std::uint64_t sharedNeighbors(const Graph& graph, Vertex u, Vertex v) {
  const auto a = graph.neighbors(u);
  const auto b = graph.neighbors(v);
  std::uint64_t count = 0;
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < a.size() && ib < b.size()) {
    if (a[ia] < b[ib]) {
      ++ia;
    } else if (b[ib] < a[ia]) {
      ++ib;
    } else {
      ++count;
      ++ia;
      ++ib;
    }
  }
  return count;
}

}  // namespace

std::vector<double> localClusteringCoefficients(const Graph& graph) {
  std::vector<double> coefficients(graph.vertexCount(), 0.0);
  for (Vertex v = 0; v < graph.vertexCount(); ++v) {
    const std::uint64_t degree = graph.degree(v);
    if (degree < 2) {
      continue;
    }
    // Closed triangles through v: for each neighbor pair (a, b) an edge
    // a-b closes the triangle. Count via intersections along neighbors.
    std::uint64_t closed = 0;
    for (Vertex neighbor : graph.neighbors(v)) {
      closed += sharedNeighbors(graph, v, neighbor);
    }
    // Each triangle at v was counted twice (once per incident neighbor).
    const double triples = static_cast<double>(degree) *
                           static_cast<double>(degree - 1) / 2.0;
    coefficients[v] = static_cast<double>(closed) / 2.0 / triples;
  }
  return coefficients;
}

std::uint64_t triangleCount(const Graph& graph) {
  // Sum over edges (u < v) of shared neighbors counts each triangle three
  // times.
  std::uint64_t tripleCounted = 0;
  for (Vertex u = 0; u < graph.vertexCount(); ++u) {
    for (Vertex v : graph.neighbors(u)) {
      if (v > u) {
        tripleCounted += sharedNeighbors(graph, u, v);
      }
    }
  }
  return tripleCounted / 3;
}

double globalTransitivity(const Graph& graph) {
  std::uint64_t triples = 0;
  for (Vertex v = 0; v < graph.vertexCount(); ++v) {
    const std::uint64_t degree = graph.degree(v);
    triples += degree * (degree - 1) / 2;
  }
  if (triples == 0) {
    return 0.0;
  }
  return 3.0 * static_cast<double>(triangleCount(graph)) /
         static_cast<double>(triples);
}

std::vector<Vertex> verticesWithinRadius(const Graph& graph, Vertex source,
                                         unsigned radius) {
  CHISIM_REQUIRE(source < graph.vertexCount(), "source vertex out of range");
  std::vector<bool> visited(graph.vertexCount(), false);
  std::vector<Vertex> result;
  std::deque<std::pair<Vertex, unsigned>> frontier;
  visited[source] = true;
  frontier.emplace_back(source, 0u);
  result.push_back(source);
  while (!frontier.empty()) {
    const auto [vertex, depth] = frontier.front();
    frontier.pop_front();
    if (depth == radius) {
      continue;
    }
    for (Vertex neighbor : graph.neighbors(vertex)) {
      if (!visited[neighbor]) {
        visited[neighbor] = true;
        result.push_back(neighbor);
        frontier.emplace_back(neighbor, depth + 1);
      }
    }
  }
  std::sort(result.begin(), result.end());
  return result;
}

Graph inducedSubgraph(const Graph& graph, std::span<const Vertex> vertices) {
  std::vector<Vertex> selected(vertices.begin(), vertices.end());
  std::sort(selected.begin(), selected.end());
  selected.erase(std::unique(selected.begin(), selected.end()), selected.end());
  for (Vertex v : selected) {
    CHISIM_REQUIRE(v < graph.vertexCount(), "subgraph vertex out of range");
  }

  const auto localIndex = [&selected](Vertex v) {
    const auto it = std::lower_bound(selected.begin(), selected.end(), v);
    return it != selected.end() && *it == v
               ? static_cast<Vertex>(it - selected.begin())
               : static_cast<Vertex>(selected.size());
  };

  std::vector<sparse::AdjacencyTriplet> triplets;
  for (Vertex u : selected) {
    const auto row = graph.neighbors(u);
    const auto rowWeights = graph.edgeWeights(u);
    for (std::size_t i = 0; i < row.size(); ++i) {
      const Vertex v = row[i];
      if (v <= u) {
        continue;  // count each edge once
      }
      if (localIndex(v) == selected.size()) {
        continue;  // endpoint not selected
      }
      // Keep parent labels so person ids survive the extraction.
      triplets.push_back(sparse::AdjacencyTriplet{
          graph.label(u), graph.label(v), rowWeights[i]});
    }
  }
  // Build over the full selected-vertex universe so isolated vertices are
  // preserved.
  std::vector<std::uint32_t> labels;
  labels.reserve(selected.size());
  for (Vertex v : selected) {
    labels.push_back(graph.label(v));
  }
  return Graph::fromTriplets(triplets, labels);
}

Graph egoNetwork(const Graph& graph, Vertex source, unsigned radius) {
  const std::vector<Vertex> vertices =
      verticesWithinRadius(graph, source, radius);
  return inducedSubgraph(graph, vertices);
}

Components connectedComponents(const Graph& graph) {
  Components components;
  components.componentOf.assign(graph.vertexCount(),
                                static_cast<std::uint32_t>(-1));
  for (Vertex start = 0; start < graph.vertexCount(); ++start) {
    if (components.componentOf[start] != static_cast<std::uint32_t>(-1)) {
      continue;
    }
    const auto id = static_cast<std::uint32_t>(components.sizes.size());
    std::uint64_t size = 0;
    std::deque<Vertex> frontier{start};
    components.componentOf[start] = id;
    while (!frontier.empty()) {
      const Vertex vertex = frontier.front();
      frontier.pop_front();
      ++size;
      for (Vertex neighbor : graph.neighbors(vertex)) {
        if (components.componentOf[neighbor] == static_cast<std::uint32_t>(-1)) {
          components.componentOf[neighbor] = id;
          frontier.push_back(neighbor);
        }
      }
    }
    components.sizes.push_back(size);
  }
  return components;
}

std::uint64_t Components::giantSize() const noexcept {
  std::uint64_t giant = 0;
  for (std::uint64_t size : sizes) {
    giant = std::max(giant, size);
  }
  return giant;
}

std::vector<std::uint32_t> kCoreDecomposition(const Graph& graph) {
  const std::size_t n = graph.vertexCount();
  std::vector<std::uint32_t> degree(n);
  std::uint32_t maxDegree = 0;
  for (Vertex v = 0; v < n; ++v) {
    degree[v] = static_cast<std::uint32_t>(graph.degree(v));
    maxDegree = std::max(maxDegree, degree[v]);
  }

  // Bucket-sort vertices by current degree (Batagelj-Zaversnik: O(E)).
  std::vector<std::uint32_t> binStart(maxDegree + 2, 0);
  for (Vertex v = 0; v < n; ++v) {
    ++binStart[degree[v] + 1];
  }
  for (std::size_t d = 1; d < binStart.size(); ++d) {
    binStart[d] += binStart[d - 1];
  }
  std::vector<Vertex> order(n);
  std::vector<std::uint32_t> position(n);
  {
    std::vector<std::uint32_t> cursor(binStart.begin(), binStart.end() - 1);
    for (Vertex v = 0; v < n; ++v) {
      position[v] = cursor[degree[v]];
      order[position[v]] = v;
      ++cursor[degree[v]];
    }
  }

  std::vector<std::uint32_t> core(n, 0);
  std::vector<bool> removed(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    const Vertex v = order[i];
    core[v] = degree[v];
    removed[v] = true;
    for (Vertex neighbor : graph.neighbors(v)) {
      if (removed[neighbor] || degree[neighbor] <= degree[v]) {
        continue;
      }
      // Move `neighbor` one bucket down: swap it with the first vertex of
      // its current bucket, then shrink the bucket boundary.
      const std::uint32_t d = degree[neighbor];
      const std::uint32_t firstPos = binStart[d];
      const Vertex firstVertex = order[firstPos];
      if (firstVertex != neighbor) {
        std::swap(order[firstPos], order[position[neighbor]]);
        std::swap(position[firstVertex], position[neighbor]);
      }
      ++binStart[d];
      --degree[neighbor];
    }
  }
  return core;
}

double meanDegree(const Graph& graph) {
  if (graph.vertexCount() == 0) {
    return 0.0;
  }
  return 2.0 * static_cast<double>(graph.edgeCount()) /
         static_cast<double>(graph.vertexCount());
}

}  // namespace chisimnet::graph
