#pragma once

#include <cstdint>
#include <vector>

#include "chisimnet/graph/graph.hpp"

/// Weighted network statistics (paper §VI future work: "identify additional
/// network statistics and their relative contributions to the features of
/// the network"). The collocation network is inherently weighted — edge
/// weights are collocated person-hours — so alongside the paper's
/// unweighted degree analyses these capture the time dimension: vertex
/// strength (total collocation hours), the edge-weight distribution, and
/// degree assortativity.

namespace chisimnet::graph {

/// strength[v] = sum of incident edge weights (total collocation hours).
std::vector<std::uint64_t> strengthSequence(const Graph& graph);

/// All edge weights, one per undirected edge.
std::vector<std::uint64_t> edgeWeightSequence(const Graph& graph);

/// Pearson correlation between degree and strength across vertices
/// (1.0 when every contact lasts equally long; lower when a few long-
/// duration ties dominate). Returns 0 for degenerate inputs.
double degreeStrengthCorrelation(const Graph& graph);

/// Degree assortativity: the Pearson correlation of the degrees at the two
/// ends of each edge (Newman 2002). Social networks are typically
/// assortative (> 0). Returns 0 for degenerate inputs.
double degreeAssortativity(const Graph& graph);

/// Mean neighbor degree per vertex (0 for isolated vertices) — the
/// k_nn(v) ingredient of assortative-mixing analyses.
std::vector<double> meanNeighborDegree(const Graph& graph);

/// Barrat et al. weighted local clustering coefficient:
/// c_w(v) = 1/(s_v (k_v - 1)) Σ_{(u,t) triangles at v} (w_vu + w_vt)/2,
/// which weighs each closed triangle by the collocation time of the two
/// edges incident to v. Equals the unweighted coefficient when all weights
/// are equal; 0 by convention for degree < 2.
std::vector<double> weightedClusteringCoefficients(const Graph& graph);

}  // namespace chisimnet::graph
