#include "chisimnet/util/binary_io.hpp"

#include <array>

namespace chisimnet::util {

namespace {

std::array<std::uint32_t, 256> makeCrcTable() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t value = i;
    for (int bit = 0; bit < 8; ++bit) {
      value = (value & 1u) ? (0xEDB88320u ^ (value >> 1)) : (value >> 1);
    }
    table[i] = value;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::span<const std::byte> bytes, std::uint32_t seed) noexcept {
  static const std::array<std::uint32_t, 256> table = makeCrcTable();
  std::uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (std::byte b : bytes) {
    crc = table[(crc ^ static_cast<std::uint32_t>(b)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace chisimnet::util
