#pragma once

#include <chrono>
#include <cstdint>

#if defined(__unix__) || defined(__APPLE__)
#include <time.h>
#define CHISIMNET_HAS_THREAD_CPU_CLOCK 1
#endif

/// Wall-clock timing used by the benchmark harnesses and the runtime's
/// load-balance reporting.

namespace chisimnet::util {

class WallTimer {
 public:
  WallTimer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  std::uint64_t milliseconds() const noexcept {
    return static_cast<std::uint64_t>(seconds() * 1e3);
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// CPU time consumed by the calling thread. Unlike wall time this is not
/// inflated by preemption, so per-task timings taken inside a thread pool
/// stay meaningful even when tasks outnumber cores (on an idle multi-core
/// host the two clocks agree). Falls back to wall time on platforms
/// without a per-thread CPU clock.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() noexcept : start_(now()) {}

  void reset() noexcept { start_ = now(); }

  /// Elapsed thread-CPU seconds since construction or the last reset().
  double seconds() const noexcept { return now() - start_; }

 private:
  static double now() noexcept {
#ifdef CHISIMNET_HAS_THREAD_CPU_CLOCK
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
      return static_cast<double>(ts.tv_sec) +
             static_cast<double>(ts.tv_nsec) * 1e-9;
    }
#endif
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  double start_;
};

}  // namespace chisimnet::util
