#pragma once

#include <chrono>
#include <cstdint>

/// Wall-clock timing used by the benchmark harnesses and the runtime's
/// load-balance reporting.

namespace chisimnet::util {

class WallTimer {
 public:
  WallTimer() noexcept : start_(Clock::now()) {}

  void reset() noexcept { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const noexcept {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  std::uint64_t milliseconds() const noexcept {
    return static_cast<std::uint64_t>(seconds() * 1e3);
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace chisimnet::util
