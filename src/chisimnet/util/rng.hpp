#pragma once

#include <array>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "chisimnet/util/error.hpp"

/// Deterministic pseudo-random number generation.
///
/// All stochastic components of chisimnet (population synthesis, schedules,
/// the ABM, graph generators) draw from Rng so that a run is reproducible
/// from a single seed. The generator is xoshiro256**, seeded via splitmix64,
/// which is fast, has a 2^256-1 period, and passes BigCrush. Rng satisfies
/// the UniformRandomBitGenerator concept so it can also drive <random>
/// distributions where convenient.

namespace chisimnet::util {

/// splitmix64 step; used for seeding and as a cheap stateless hash.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// xoshiro256** generator with convenience sampling methods.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound). Requires bound > 0. Uses Lemire's
  /// multiply-shift rejection method (unbiased).
  std::uint64_t uniformBelow(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  double uniformReal(double lo, double hi) noexcept;

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept;

  /// Standard normal via Box-Muller (no cached spare; stateless per call).
  double normal(double mean = 0.0, double stddev = 1.0) noexcept;

  /// Log-normal: exp(normal(mu, sigma)).
  double lognormal(double mu, double sigma) noexcept;

  /// Exponential with rate lambda > 0.
  double exponential(double lambda) noexcept;

  /// Poisson draw (Knuth for small mean, normal approximation above 64).
  std::uint64_t poisson(double mean) noexcept;

  /// Index draw from unnormalized non-negative weights. Requires a
  /// non-empty span with positive total weight.
  std::size_t discrete(std::span<const double> weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::size_t j = uniformBelow(i);
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// Fork a statistically independent child generator; the stream index
  /// decorrelates children forked from the same parent state.
  Rng fork(std::uint64_t streamIndex) noexcept;

  /// The full 256-bit engine state, for checkpointing. fromState() resumes
  /// the exact draw sequence: fromState(r.state()) produces the same
  /// stream as continuing with r.
  std::array<std::uint64_t, 4> state() const noexcept {
    return {state_[0], state_[1], state_[2], state_[3]};
  }

  /// Rebuilds a generator from a state() snapshot. The state must not be
  /// all-zero (xoshiro's one forbidden fixed point).
  static Rng fromState(const std::array<std::uint64_t, 4>& state) {
    CHISIM_REQUIRE(state[0] | state[1] | state[2] | state[3],
                   "all-zero xoshiro state");
    Rng rng(0);
    rng.state_[0] = state[0];
    rng.state_[1] = state[1];
    rng.state_[2] = state[2];
    rng.state_[3] = state[3];
    return rng;
  }

 private:
  std::uint64_t state_[4];
};

/// Precomputed alias table for O(1) repeated sampling from a fixed discrete
/// distribution (Walker's alias method). Used on hot paths such as schedule
/// generation where the same weight vector is sampled millions of times.
class AliasTable {
 public:
  /// Builds the table from unnormalized non-negative weights.
  /// Requires non-empty weights with positive total.
  explicit AliasTable(std::span<const double> weights);

  std::size_t sample(Rng& rng) const noexcept;
  std::size_t size() const noexcept { return probability_.size(); }

 private:
  std::vector<double> probability_;
  std::vector<std::uint32_t> alias_;
};

/// Bounded Zipf(s) sampler over ranks {1..n} via precomputed CDF and binary
/// search. Heavy-tailed place sizes in the synthetic population use this.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double exponent);

  /// Returns a rank in [1, n].
  std::size_t sample(Rng& rng) const noexcept;

 private:
  std::vector<double> cdf_;
};

}  // namespace chisimnet::util
