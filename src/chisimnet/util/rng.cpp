#include "chisimnet/util/rng.hpp"

#include <cmath>
#include <numbers>

namespace chisimnet::util {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = splitmix64(sm);
  }
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::uniformBelow(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless method.
  if (bound == 0) {
    return 0;
  }
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniformInt(std::int64_t lo, std::int64_t hi) noexcept {
  if (lo >= hi) {
    return lo;
  }
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniformBelow(range));
}

double Rng::uniform01() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniformReal(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

bool Rng::bernoulli(double p) noexcept { return uniform01() < p; }

double Rng::normal(double mean, double stddev) noexcept {
  // Box-Muller; u1 shifted away from 0 to keep log() finite.
  const double u1 = (static_cast<double>(next() >> 11) + 0.5) * 0x1.0p-53;
  const double u2 = uniform01();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::lognormal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double lambda) noexcept {
  const double u = (static_cast<double>(next() >> 11) + 0.5) * 0x1.0p-53;
  return -std::log(u) / lambda;
}

std::uint64_t Rng::poisson(double mean) noexcept {
  if (mean <= 0.0) {
    return 0;
  }
  if (mean > 64.0) {
    // Normal approximation with continuity correction; adequate for the
    // coarse workloads that need large means.
    const double draw = normal(mean, std::sqrt(mean));
    return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw + 0.5);
  }
  const double limit = std::exp(-mean);
  double product = uniform01();
  std::uint64_t count = 0;
  while (product > limit) {
    ++count;
    product *= uniform01();
  }
  return count;
}

std::size_t Rng::discrete(std::span<const double> weights) {
  CHISIM_REQUIRE(!weights.empty(), "discrete() requires at least one weight");
  double total = 0.0;
  for (double w : weights) {
    CHISIM_REQUIRE(w >= 0.0, "discrete() weights must be non-negative");
    total += w;
  }
  CHISIM_REQUIRE(total > 0.0, "discrete() requires positive total weight");
  double target = uniform01() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) {
      return i;
    }
  }
  return weights.size() - 1;
}

Rng Rng::fork(std::uint64_t streamIndex) noexcept {
  // Mix the parent's next output with the stream index through splitmix64 so
  // that distinct children (and the parent) are decorrelated.
  std::uint64_t mix = next() ^ (streamIndex * 0x9e3779b97f4a7c15ULL + 0x7f4a7c15ULL);
  return Rng(splitmix64(mix));
}

AliasTable::AliasTable(std::span<const double> weights) {
  CHISIM_REQUIRE(!weights.empty(), "AliasTable requires at least one weight");
  const std::size_t n = weights.size();
  double total = 0.0;
  for (double w : weights) {
    CHISIM_REQUIRE(w >= 0.0, "AliasTable weights must be non-negative");
    total += w;
  }
  CHISIM_REQUIRE(total > 0.0, "AliasTable requires positive total weight");

  probability_.assign(n, 0.0);
  alias_.assign(n, 0);

  std::vector<double> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<double>(n) / total;
  }

  std::vector<std::uint32_t> small;
  std::vector<std::uint32_t> large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }

  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    large.pop_back();
    probability_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  for (std::uint32_t i : large) {
    probability_[i] = 1.0;
  }
  for (std::uint32_t i : small) {
    probability_[i] = 1.0;  // numerical remainder
  }
}

std::size_t AliasTable::sample(Rng& rng) const noexcept {
  const std::size_t column = rng.uniformBelow(probability_.size());
  return rng.uniform01() < probability_[column] ? column : alias_[column];
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent) {
  CHISIM_REQUIRE(n > 0, "ZipfSampler requires n > 0");
  cdf_.resize(n);
  double cumulative = 0.0;
  for (std::size_t rank = 1; rank <= n; ++rank) {
    cumulative += std::pow(static_cast<double>(rank), -exponent);
    cdf_[rank - 1] = cumulative;
  }
  for (double& value : cdf_) {
    value /= cumulative;
  }
}

std::size_t ZipfSampler::sample(Rng& rng) const noexcept {
  const double u = rng.uniform01();
  // Binary search for the first cdf entry >= u.
  std::size_t lo = 0;
  std::size_t hi = cdf_.size() - 1;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (cdf_[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo + 1;
}

}  // namespace chisimnet::util
