#include "chisimnet/util/env.hpp"

#include <algorithm>
#include <cstdlib>

namespace chisimnet::util {

double envDouble(const std::string& name, double fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr) {
    return fallback;
  }
  char* end = nullptr;
  const double value = std::strtod(raw, &end);
  if (end == raw) {
    return fallback;
  }
  return value;
}

std::uint64_t envU64(const std::string& name, std::uint64_t fallback) {
  const char* raw = std::getenv(name.c_str());
  if (raw == nullptr) {
    return fallback;
  }
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  if (end == raw) {
    return fallback;
  }
  return static_cast<std::uint64_t>(value);
}

double benchScale() {
  const double scale = envDouble("CHISIMNET_SCALE", 1.0);
  return std::clamp(scale, 1e-6, 100.0);
}

}  // namespace chisimnet::util
