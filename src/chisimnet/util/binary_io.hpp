#pragma once

#include <cstdint>
#include <cstring>
#include <istream>
#include <ostream>
#include <span>
#include <string>
#include <vector>

#include "chisimnet/util/error.hpp"

/// Little-endian binary stream helpers and CRC32, shared by the CLG5 log
/// format (elog) and graph exporters. All multi-byte values are written
/// little-endian regardless of host order so files are portable.

namespace chisimnet::util {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a byte span,
/// optionally chained via the seed parameter.
std::uint32_t crc32(std::span<const std::byte> bytes, std::uint32_t seed = 0) noexcept;

/// LEB128-style unsigned varint append (1-5 bytes for u32 values).
inline void putVarint(std::vector<std::byte>& out, std::uint32_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<std::byte>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out.push_back(static_cast<std::byte>(value));
}

/// Reads a varint at `cursor`, advancing it. Throws on truncation.
inline std::uint32_t getVarint(std::span<const std::byte> bytes,
                               std::size_t& cursor) {
  std::uint32_t value = 0;
  int shift = 0;
  while (true) {
    CHISIM_CHECK(cursor < bytes.size(), "truncated varint");
    const auto piece = static_cast<std::uint32_t>(bytes[cursor++]);
    value |= (piece & 0x7F) << shift;
    if ((piece & 0x80) == 0) {
      return value;
    }
    shift += 7;
    CHISIM_CHECK(shift < 36, "varint too long");
  }
}

/// ZigZag mapping of signed deltas onto unsigned varint-friendly values.
inline std::uint32_t zigzagEncode(std::int32_t value) noexcept {
  return (static_cast<std::uint32_t>(value) << 1) ^
         static_cast<std::uint32_t>(value >> 31);
}

inline std::int32_t zigzagDecode(std::uint32_t value) noexcept {
  return static_cast<std::int32_t>(value >> 1) ^
         -static_cast<std::int32_t>(value & 1);
}

inline void writeU32(std::ostream& out, std::uint32_t value) {
  unsigned char buffer[4];
  buffer[0] = static_cast<unsigned char>(value);
  buffer[1] = static_cast<unsigned char>(value >> 8);
  buffer[2] = static_cast<unsigned char>(value >> 16);
  buffer[3] = static_cast<unsigned char>(value >> 24);
  out.write(reinterpret_cast<const char*>(buffer), 4);
}

inline void writeU64(std::ostream& out, std::uint64_t value) {
  writeU32(out, static_cast<std::uint32_t>(value));
  writeU32(out, static_cast<std::uint32_t>(value >> 32));
}

inline std::uint32_t readU32(std::istream& in) {
  unsigned char buffer[4];
  in.read(reinterpret_cast<char*>(buffer), 4);
  CHISIM_CHECK(in.gcount() == 4, "unexpected end of stream reading u32");
  return static_cast<std::uint32_t>(buffer[0]) |
         (static_cast<std::uint32_t>(buffer[1]) << 8) |
         (static_cast<std::uint32_t>(buffer[2]) << 16) |
         (static_cast<std::uint32_t>(buffer[3]) << 24);
}

inline std::uint64_t readU64(std::istream& in) {
  const std::uint64_t low = readU32(in);
  const std::uint64_t high = readU32(in);
  return low | (high << 32);
}

inline void writeBytes(std::ostream& out, std::span<const std::byte> bytes) {
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

inline void readBytes(std::istream& in, std::span<std::byte> bytes) {
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  CHISIM_CHECK(in.gcount() == static_cast<std::streamsize>(bytes.size()),
               "unexpected end of stream reading byte block");
}

}  // namespace chisimnet::util
