#pragma once

#include <stdexcept>
#include <string>

/// Error-handling macros used across chisimnet.
///
/// CHISIM_REQUIRE validates preconditions on public API boundaries and
/// throws std::invalid_argument; CHISIM_CHECK validates internal invariants
/// and runtime conditions (I/O, format integrity) and throws
/// std::runtime_error. Both are always on: this library favors loud failure
/// over silent corruption, and none of these checks sit on hot inner loops.

namespace chisimnet::util {

[[noreturn]] void throwRequireFailure(const char* expr, const char* file, int line,
                                      const std::string& message);
[[noreturn]] void throwCheckFailure(const char* expr, const char* file, int line,
                                    const std::string& message);

}  // namespace chisimnet::util

#define CHISIM_REQUIRE(expr, message)                                              \
  do {                                                                             \
    if (!(expr)) {                                                                 \
      ::chisimnet::util::throwRequireFailure(#expr, __FILE__, __LINE__, (message)); \
    }                                                                              \
  } while (false)

#define CHISIM_CHECK(expr, message)                                              \
  do {                                                                           \
    if (!(expr)) {                                                               \
      ::chisimnet::util::throwCheckFailure(#expr, __FILE__, __LINE__, (message)); \
    }                                                                             \
  } while (false)
