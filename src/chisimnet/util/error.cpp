#include "chisimnet/util/error.hpp"

namespace chisimnet::util {

namespace {

std::string format(const char* kind, const char* expr, const char* file, int line,
                   const std::string& message) {
  std::string out;
  out += kind;
  out += " failed: ";
  out += expr;
  out += " (";
  out += file;
  out += ":";
  out += std::to_string(line);
  out += "): ";
  out += message;
  return out;
}

}  // namespace

void throwRequireFailure(const char* expr, const char* file, int line,
                         const std::string& message) {
  throw std::invalid_argument(format("CHISIM_REQUIRE", expr, file, line, message));
}

void throwCheckFailure(const char* expr, const char* file, int line,
                       const std::string& message) {
  throw std::runtime_error(format("CHISIM_CHECK", expr, file, line, message));
}

}  // namespace chisimnet::util
