#pragma once

#include <cstdint>
#include <string>

/// Helpers for reading bench/example configuration from the environment.
/// Benches honor CHISIMNET_SCALE (a multiplier on the default population
/// size) so a quick smoke run and a full reproduction share one binary.

namespace chisimnet::util {

/// Returns the value of the environment variable parsed as double, or
/// fallback when unset/unparseable.
double envDouble(const std::string& name, double fallback);

/// Returns the value of the environment variable parsed as a non-negative
/// integer, or fallback when unset/unparseable.
std::uint64_t envU64(const std::string& name, std::uint64_t fallback);

/// The global scale multiplier for bench workloads: CHISIMNET_SCALE,
/// default 1.0, clamped to (0, 100].
double benchScale();

}  // namespace chisimnet::util
