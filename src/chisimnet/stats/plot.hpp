#pragma once

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "chisimnet/stats/histogram.hpp"

/// Minimal SVG chart renderer used to regenerate the paper's figures.
///
/// Fig 3 and Fig 5 are log-log scatter plots of degree frequency
/// distributions with fitted model curves overlaid; Fig 4 is a linear
/// histogram. ScatterPlot supports linear or log10 axes with decade ticks,
/// point series, line series and a legend — enough to reproduce those
/// figures from the measured data, no plotting dependency required.

namespace chisimnet::stats {

struct PlotPoint {
  double x = 0.0;
  double y = 0.0;
};

struct PlotSeries {
  std::string label;
  std::string color = "#1f6fb4";
  std::vector<PlotPoint> points;
  bool drawLine = false;    ///< connect points (for model curves)
  bool drawMarkers = true;  ///< draw circles at points
  std::string dash;         ///< SVG stroke-dasharray, e.g. "6,3"
};

class ScatterPlot {
 public:
  ScatterPlot(std::string title, std::string xLabel, std::string yLabel);

  void setLogX(bool logX) noexcept { logX_ = logX; }
  void setLogY(bool logY) noexcept { logY_ = logY; }
  void setSize(double width, double height) noexcept {
    width_ = width;
    height_ = height;
  }

  /// Adds a series; non-positive coordinates are dropped on log axes.
  void addSeries(PlotSeries series);

  /// Renders to an SVG file. Requires at least one plottable point.
  void writeSvg(const std::filesystem::path& path) const;

 private:
  std::string title_;
  std::string xLabel_;
  std::string yLabel_;
  std::vector<PlotSeries> series_;
  bool logX_ = false;
  bool logY_ = false;
  double width_ = 760.0;
  double height_ = 560.0;
};

/// Renders a Histogram as an SVG bar chart (the paper's Fig 4 form).
void writeHistogramSvg(const Histogram& histogram, const std::string& title,
                       const std::string& xLabel,
                       const std::filesystem::path& path,
                       double width = 760.0, double height = 560.0);

}  // namespace chisimnet::stats
