#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

/// Histograms and empirical distributions used by the network analyses
/// (paper §V.B): the clustering-coefficient histogram (Fig 4) and the vertex
/// degree frequency distributions (Figs 3 and 5).

namespace chisimnet::stats {

/// Fixed-range linear-bin histogram over doubles.
class Histogram {
 public:
  /// Bins the half-open range [lo, hi) into `bins` equal cells; values at
  /// exactly `hi` land in the last cell, values outside are counted in
  /// underflow/overflow. Requires hi > lo and bins > 0.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value) noexcept;
  void addAll(std::span<const double> values) noexcept;

  std::size_t binCount() const noexcept { return counts_.size(); }
  std::uint64_t count(std::size_t bin) const { return counts_.at(bin); }
  std::uint64_t underflow() const noexcept { return underflow_; }
  std::uint64_t overflow() const noexcept { return overflow_; }
  std::uint64_t total() const noexcept { return total_; }

  /// Center of bin `bin`.
  double binCenter(std::size_t bin) const;
  /// [low, high) edges of bin `bin`.
  std::pair<double, double> binEdges(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t underflow_ = 0;
  std::uint64_t overflow_ = 0;
  std::uint64_t total_ = 0;
};

/// One point of an integer-valued empirical frequency distribution.
struct FrequencyPoint {
  std::uint64_t value = 0;  ///< e.g. vertex degree k
  std::uint64_t count = 0;  ///< number of observations with that value
  double fraction = 0.0;    ///< count / total observations
};

/// Exact frequency distribution of non-negative integer observations,
/// sorted by value ascending. Zero observations are included as a point
/// only if present in the input.
std::vector<FrequencyPoint> frequencyDistribution(
    std::span<const std::uint64_t> values);

/// Logarithmically binned distribution (geometric bin edges with the given
/// ratio > 1), useful for reading heavy tails; each returned point carries
/// the geometric bin center as `value` and the per-unit-width normalized
/// fraction as `fraction`.
std::vector<FrequencyPoint> logBinnedDistribution(
    std::span<const std::uint64_t> values, double binRatio = 1.5);

/// Mean of a span (0 for empty input).
double mean(std::span<const double> values) noexcept;

/// Population variance of a span (0 for fewer than two values).
double variance(std::span<const double> values) noexcept;

}  // namespace chisimnet::stats
