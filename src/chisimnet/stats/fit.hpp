#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "chisimnet/stats/histogram.hpp"

/// Degree-distribution model fits used in the paper's Fig 3: power law
/// p(k) ~ k^-a, truncated power law p(k) ~ k^-a * exp(-k/kc), and
/// exponential p(k) ~ exp(-k/kc). Fits are least squares in log space over
/// the empirical frequency points, matching how the paper overlays the
/// model lines on the log-log plot; a discrete MLE estimator for the
/// power-law exponent is also provided (Clauset-style).

namespace chisimnet::stats {

enum class FitModel { kPowerLaw, kTruncatedPowerLaw, kExponential };

std::string fitModelName(FitModel model);

struct FitResult {
  FitModel model = FitModel::kPowerLaw;
  double alpha = 0.0;        ///< power-law exponent (0 for exponential)
  double cutoff = 0.0;       ///< k_c (0 for pure power law)
  double logPrefactor = 0.0; ///< c in ln p = c - a ln k - k/k_c
  double sseLog = 0.0;       ///< sum of squared residuals in log space
  std::size_t points = 0;    ///< fitted point count

  /// Model density at degree k (k >= 1).
  double evaluate(double k) const;
};

/// Fits ln p = c - a ln k over points with value >= kMin and fraction > 0.
FitResult fitPowerLaw(std::span<const FrequencyPoint> distribution,
                      std::uint64_t kMin = 1);

/// Fits ln p = c - a ln k - k/k_c (3-parameter linear least squares).
FitResult fitTruncatedPowerLaw(std::span<const FrequencyPoint> distribution,
                               std::uint64_t kMin = 1);

/// Fits ln p = c - k/k_c.
FitResult fitExponential(std::span<const FrequencyPoint> distribution,
                         std::uint64_t kMin = 1);

/// Log-space sum of squared residuals of `fit` against the distribution
/// (over points with value >= kMin and positive fraction).
double logSse(const FitResult& fit, std::span<const FrequencyPoint> distribution,
              std::uint64_t kMin = 1);

/// Discrete maximum-likelihood power-law exponent estimate
/// alpha = 1 + n / sum(ln(k_i / (kMin - 0.5))) over observations >= kMin
/// (Clauset et al.'s continuous approximation of the discrete MLE; accurate
/// to ~1% for kMin >= 6, increasingly biased toward small alpha as kMin
/// approaches 1 — pick the fit region accordingly).
double powerLawAlphaMle(std::span<const std::uint64_t> values,
                        std::uint64_t kMin = 1);

/// Kolmogorov-Smirnov distance between the empirical distribution (over
/// k >= kMin) and the fitted model normalized over the same support.
double ksStatistic(const FitResult& fit,
                   std::span<const FrequencyPoint> distribution,
                   std::uint64_t kMin = 1);

/// Two-sample Kolmogorov-Smirnov distance between empirical integer
/// distributions (max CDF gap over the union of supports). 0 = identical
/// distributions, 1 = disjoint supports. The quantitative form of the
/// paper's "superficially similar" comparison between emergent and
/// generated degree distributions.
double ksTwoSample(std::span<const FrequencyPoint> a,
                   std::span<const FrequencyPoint> b);

}  // namespace chisimnet::stats
