#include "chisimnet/stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "chisimnet/util/error.hpp"

namespace chisimnet::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)) {
  CHISIM_REQUIRE(hi > lo, "histogram range must be non-empty");
  CHISIM_REQUIRE(bins > 0, "histogram needs at least one bin");
  counts_.assign(bins, 0);
}

void Histogram::add(double value) noexcept {
  ++total_;
  if (value < lo_) {
    ++underflow_;
    return;
  }
  if (value > hi_) {
    ++overflow_;
    return;
  }
  auto bin = static_cast<std::size_t>((value - lo_) / width_);
  bin = std::min(bin, counts_.size() - 1);  // value == hi_ joins last bin
  ++counts_[bin];
}

void Histogram::addAll(std::span<const double> values) noexcept {
  for (double value : values) {
    add(value);
  }
}

double Histogram::binCenter(std::size_t bin) const {
  CHISIM_REQUIRE(bin < counts_.size(), "bin out of range");
  return lo_ + (static_cast<double>(bin) + 0.5) * width_;
}

std::pair<double, double> Histogram::binEdges(std::size_t bin) const {
  CHISIM_REQUIRE(bin < counts_.size(), "bin out of range");
  return {lo_ + static_cast<double>(bin) * width_,
          lo_ + static_cast<double>(bin + 1) * width_};
}

std::vector<FrequencyPoint> frequencyDistribution(
    std::span<const std::uint64_t> values) {
  std::map<std::uint64_t, std::uint64_t> counts;
  for (std::uint64_t value : values) {
    ++counts[value];
  }
  std::vector<FrequencyPoint> points;
  points.reserve(counts.size());
  const double total = static_cast<double>(values.size());
  for (const auto& [value, count] : counts) {
    points.push_back(FrequencyPoint{
        value, count, total > 0 ? static_cast<double>(count) / total : 0.0});
  }
  return points;
}

std::vector<FrequencyPoint> logBinnedDistribution(
    std::span<const std::uint64_t> values, double binRatio) {
  CHISIM_REQUIRE(binRatio > 1.0, "log bin ratio must exceed 1");
  std::uint64_t maxValue = 0;
  for (std::uint64_t value : values) {
    maxValue = std::max(maxValue, value);
  }
  if (maxValue == 0) {
    return {};
  }

  // Geometric edges 1, r, r^2, ... covering [1, maxValue].
  std::vector<double> edges{1.0};
  while (edges.back() <= static_cast<double>(maxValue)) {
    edges.push_back(edges.back() * binRatio);
  }

  std::vector<std::uint64_t> counts(edges.size() - 1, 0);
  std::uint64_t total = 0;
  for (std::uint64_t value : values) {
    if (value == 0) {
      continue;  // log bins cover k >= 1
    }
    const auto it = std::upper_bound(edges.begin(), edges.end(),
                                     static_cast<double>(value));
    const auto bin = static_cast<std::size_t>(it - edges.begin()) - 1;
    ++counts[std::min(bin, counts.size() - 1)];
    ++total;
  }

  std::vector<FrequencyPoint> points;
  for (std::size_t bin = 0; bin < counts.size(); ++bin) {
    if (counts[bin] == 0) {
      continue;
    }
    const double width = edges[bin + 1] - edges[bin];
    const double center = std::sqrt(edges[bin] * edges[bin + 1]);
    points.push_back(FrequencyPoint{
        static_cast<std::uint64_t>(center + 0.5), counts[bin],
        static_cast<double>(counts[bin]) / (static_cast<double>(total) * width)});
  }
  return points;
}

double mean(std::span<const double> values) noexcept {
  if (values.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double value : values) {
    sum += value;
  }
  return sum / static_cast<double>(values.size());
}

double variance(std::span<const double> values) noexcept {
  if (values.size() < 2) {
    return 0.0;
  }
  const double mu = mean(values);
  double sum = 0.0;
  for (double value : values) {
    sum += (value - mu) * (value - mu);
  }
  return sum / static_cast<double>(values.size());
}

}  // namespace chisimnet::stats
