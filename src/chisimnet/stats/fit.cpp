#include "chisimnet/stats/fit.hpp"

#include <algorithm>
#include <array>
#include <cmath>

#include "chisimnet/util/error.hpp"

namespace chisimnet::stats {

namespace {

/// Solves the n x n linear system M·x = b (Gaussian elimination with partial
/// pivoting). Small systems only (n <= 3 here).
template <std::size_t N>
std::array<double, N> solveLinear(std::array<std::array<double, N>, N> m,
                                  std::array<double, N> b) {
  for (std::size_t col = 0; col < N; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < N; ++row) {
      if (std::fabs(m[row][col]) > std::fabs(m[pivot][col])) {
        pivot = row;
      }
    }
    std::swap(m[col], m[pivot]);
    std::swap(b[col], b[pivot]);
    CHISIM_CHECK(std::fabs(m[col][col]) > 1e-12,
                 "singular normal equations in distribution fit");
    for (std::size_t row = col + 1; row < N; ++row) {
      const double factor = m[row][col] / m[col][col];
      for (std::size_t k = col; k < N; ++k) {
        m[row][k] -= factor * m[col][k];
      }
      b[row] -= factor * b[col];
    }
  }
  std::array<double, N> x{};
  for (std::size_t row = N; row-- > 0;) {
    double sum = b[row];
    for (std::size_t k = row + 1; k < N; ++k) {
      sum -= m[row][k] * x[k];
    }
    x[row] = sum / m[row][row];
  }
  return x;
}

struct LogPoint {
  double k = 0.0;
  double lnK = 0.0;
  double lnP = 0.0;
};

std::vector<LogPoint> logPoints(std::span<const FrequencyPoint> distribution,
                                std::uint64_t kMin) {
  std::vector<LogPoint> points;
  for (const FrequencyPoint& point : distribution) {
    if (point.value >= kMin && point.value > 0 && point.fraction > 0.0) {
      const double k = static_cast<double>(point.value);
      points.push_back(LogPoint{k, std::log(k), std::log(point.fraction)});
    }
  }
  return points;
}

/// Least squares of lnP against the selected basis columns of
/// (1, -lnK, -k): a generic driver for all three models.
template <std::size_t N>
std::array<double, N> leastSquares(const std::vector<LogPoint>& points,
                                   bool useLnK, bool useK) {
  std::array<std::array<double, N>, N> normal{};
  std::array<double, N> rhs{};
  for (const LogPoint& point : points) {
    std::array<double, N> row{};
    std::size_t column = 0;
    row[column++] = 1.0;
    if (useLnK) {
      row[column++] = -point.lnK;
    }
    if (useK) {
      row[column++] = -point.k;
    }
    for (std::size_t a = 0; a < N; ++a) {
      rhs[a] += row[a] * point.lnP;
      for (std::size_t b = 0; b < N; ++b) {
        normal[a][b] += row[a] * row[b];
      }
    }
  }
  return solveLinear<N>(normal, rhs);
}

}  // namespace

std::string fitModelName(FitModel model) {
  switch (model) {
    case FitModel::kPowerLaw:
      return "power-law";
    case FitModel::kTruncatedPowerLaw:
      return "truncated-power-law";
    case FitModel::kExponential:
      return "exponential";
  }
  return "unknown";
}

double FitResult::evaluate(double k) const {
  CHISIM_REQUIRE(k > 0.0, "model density defined for k > 0");
  double lnP = logPrefactor - alpha * std::log(k);
  if (cutoff > 0.0) {
    lnP -= k / cutoff;
  }
  return std::exp(lnP);
}

FitResult fitPowerLaw(std::span<const FrequencyPoint> distribution,
                      std::uint64_t kMin) {
  const auto points = logPoints(distribution, kMin);
  CHISIM_REQUIRE(points.size() >= 2, "power-law fit needs >= 2 points");
  const auto solution = leastSquares<2>(points, /*useLnK=*/true, /*useK=*/false);
  FitResult fit;
  fit.model = FitModel::kPowerLaw;
  fit.logPrefactor = solution[0];
  fit.alpha = solution[1];
  fit.points = points.size();
  fit.sseLog = logSse(fit, distribution, kMin);
  return fit;
}

FitResult fitTruncatedPowerLaw(std::span<const FrequencyPoint> distribution,
                               std::uint64_t kMin) {
  const auto points = logPoints(distribution, kMin);
  CHISIM_REQUIRE(points.size() >= 3, "truncated power-law fit needs >= 3 points");
  const auto solution = leastSquares<3>(points, /*useLnK=*/true, /*useK=*/true);
  FitResult fit;
  fit.model = FitModel::kTruncatedPowerLaw;
  fit.logPrefactor = solution[0];
  fit.alpha = solution[1];
  // solution[2] is 1/k_c; guard against a fit that bends the wrong way.
  fit.cutoff = solution[2] > 1e-12 ? 1.0 / solution[2] : 0.0;
  fit.points = points.size();
  fit.sseLog = logSse(fit, distribution, kMin);
  return fit;
}

FitResult fitExponential(std::span<const FrequencyPoint> distribution,
                         std::uint64_t kMin) {
  const auto points = logPoints(distribution, kMin);
  CHISIM_REQUIRE(points.size() >= 2, "exponential fit needs >= 2 points");
  const auto solution = leastSquares<2>(points, /*useLnK=*/false, /*useK=*/true);
  FitResult fit;
  fit.model = FitModel::kExponential;
  fit.logPrefactor = solution[0];
  fit.alpha = 0.0;
  fit.cutoff = solution[1] > 1e-12 ? 1.0 / solution[1] : 0.0;
  fit.points = points.size();
  fit.sseLog = logSse(fit, distribution, kMin);
  return fit;
}

double logSse(const FitResult& fit, std::span<const FrequencyPoint> distribution,
              std::uint64_t kMin) {
  double sse = 0.0;
  for (const LogPoint& point : logPoints(distribution, kMin)) {
    double lnModel = fit.logPrefactor - fit.alpha * point.lnK;
    if (fit.cutoff > 0.0) {
      lnModel -= point.k / fit.cutoff;
    }
    const double residual = point.lnP - lnModel;
    sse += residual * residual;
  }
  return sse;
}

double powerLawAlphaMle(std::span<const std::uint64_t> values,
                        std::uint64_t kMin) {
  CHISIM_REQUIRE(kMin >= 1, "kMin must be >= 1");
  double logSum = 0.0;
  std::uint64_t n = 0;
  const double shifted = static_cast<double>(kMin) - 0.5;
  for (std::uint64_t value : values) {
    if (value >= kMin) {
      logSum += std::log(static_cast<double>(value) / shifted);
      ++n;
    }
  }
  CHISIM_REQUIRE(n > 0 && logSum > 0.0, "MLE needs observations >= kMin");
  return 1.0 + static_cast<double>(n) / logSum;
}

double ksStatistic(const FitResult& fit,
                   std::span<const FrequencyPoint> distribution,
                   std::uint64_t kMin) {
  // Restrict both distributions to k >= kMin and renormalize.
  std::vector<FrequencyPoint> support;
  double empiricalTotal = 0.0;
  for (const FrequencyPoint& point : distribution) {
    if (point.value >= kMin && point.value > 0) {
      support.push_back(point);
      empiricalTotal += point.fraction;
    }
  }
  CHISIM_REQUIRE(!support.empty() && empiricalTotal > 0.0,
                 "KS needs support at k >= kMin");
  double modelTotal = 0.0;
  for (const FrequencyPoint& point : support) {
    modelTotal += fit.evaluate(static_cast<double>(point.value));
  }
  CHISIM_CHECK(modelTotal > 0.0, "model mass vanished on the support");

  double empiricalCdf = 0.0;
  double modelCdf = 0.0;
  double ks = 0.0;
  for (const FrequencyPoint& point : support) {
    empiricalCdf += point.fraction / empiricalTotal;
    modelCdf += fit.evaluate(static_cast<double>(point.value)) / modelTotal;
    ks = std::max(ks, std::fabs(empiricalCdf - modelCdf));
  }
  return ks;
}

double ksTwoSample(std::span<const FrequencyPoint> a,
                   std::span<const FrequencyPoint> b) {
  CHISIM_REQUIRE(!a.empty() && !b.empty(),
                 "two-sample KS needs non-empty distributions");
  double totalA = 0.0;
  double totalB = 0.0;
  for (const FrequencyPoint& point : a) {
    totalA += point.fraction;
  }
  for (const FrequencyPoint& point : b) {
    totalB += point.fraction;
  }
  CHISIM_REQUIRE(totalA > 0.0 && totalB > 0.0,
                 "two-sample KS needs positive mass");

  // Merge-walk the two value-sorted supports, tracking both CDFs.
  double cdfA = 0.0;
  double cdfB = 0.0;
  double ks = 0.0;
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < a.size() || ib < b.size()) {
    std::uint64_t value;
    if (ib >= b.size() || (ia < a.size() && a[ia].value <= b[ib].value)) {
      value = a[ia].value;
    } else {
      value = b[ib].value;
    }
    while (ia < a.size() && a[ia].value == value) {
      cdfA += a[ia].fraction / totalA;
      ++ia;
    }
    while (ib < b.size() && b[ib].value == value) {
      cdfB += b[ib].fraction / totalB;
      ++ib;
    }
    ks = std::max(ks, std::fabs(cdfA - cdfB));
  }
  return ks;
}

}  // namespace chisimnet::stats
