#include "chisimnet/stats/plot.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

#include "chisimnet/util/error.hpp"

namespace chisimnet::stats {

namespace {

constexpr double kMarginLeft = 70.0;
constexpr double kMarginRight = 20.0;
constexpr double kMarginTop = 40.0;
constexpr double kMarginBottom = 55.0;

struct AxisRange {
  double lo = 0.0;
  double hi = 1.0;

  void expand(double value) {
    lo = std::min(lo, value);
    hi = std::max(hi, value);
  }
};

/// Maps a data value to plot coordinates, in (possibly log10) axis space.
double axisValue(double value, bool log) {
  return log ? std::log10(value) : value;
}

std::string escapeXml(const std::string& text) {
  std::string out;
  for (char c : text) {
    switch (c) {
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '&':
        out += "&amp;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

/// Tick positions: decades for log axes, ~6 round steps for linear axes.
std::vector<double> ticks(double lo, double hi, bool log) {
  std::vector<double> result;
  if (log) {
    for (int exponent = static_cast<int>(std::floor(lo));
         exponent <= static_cast<int>(std::ceil(hi)); ++exponent) {
      result.push_back(static_cast<double>(exponent));
    }
    return result;
  }
  const double span = hi - lo;
  const double rawStep = span / 6.0;
  const double magnitude = std::pow(10.0, std::floor(std::log10(
                                              std::max(rawStep, 1e-12))));
  double step = magnitude;
  for (double candidate : {1.0, 2.0, 5.0, 10.0}) {
    if (magnitude * candidate >= rawStep) {
      step = magnitude * candidate;
      break;
    }
  }
  for (double tick = std::ceil(lo / step) * step; tick <= hi + 1e-9;
       tick += step) {
    result.push_back(tick);
  }
  return result;
}

std::string tickLabel(double axisPos, bool log) {
  char buffer[48];
  if (log) {
    std::snprintf(buffer, sizeof(buffer), "1e%d", static_cast<int>(axisPos));
  } else if (std::fabs(axisPos) >= 1000.0) {
    std::snprintf(buffer, sizeof(buffer), "%.0f", axisPos);
  } else {
    std::snprintf(buffer, sizeof(buffer), "%g", axisPos);
  }
  return buffer;
}

}  // namespace

ScatterPlot::ScatterPlot(std::string title, std::string xLabel,
                         std::string yLabel)
    : title_(std::move(title)),
      xLabel_(std::move(xLabel)),
      yLabel_(std::move(yLabel)) {}

void ScatterPlot::addSeries(PlotSeries series) {
  series_.push_back(std::move(series));
}

void ScatterPlot::writeSvg(const std::filesystem::path& path) const {
  // Collect the plottable range in axis space.
  bool any = false;
  AxisRange xRange{1e300, -1e300};
  AxisRange yRange{1e300, -1e300};
  for (const PlotSeries& series : series_) {
    for (const PlotPoint& point : series.points) {
      if ((logX_ && point.x <= 0.0) || (logY_ && point.y <= 0.0)) {
        continue;
      }
      xRange.expand(axisValue(point.x, logX_));
      yRange.expand(axisValue(point.y, logY_));
      any = true;
    }
  }
  CHISIM_REQUIRE(any, "plot has no plottable points");
  if (xRange.hi - xRange.lo < 1e-9) {
    xRange.hi = xRange.lo + 1.0;
  }
  if (yRange.hi - yRange.lo < 1e-9) {
    yRange.hi = yRange.lo + 1.0;
  }

  const double plotWidth = width_ - kMarginLeft - kMarginRight;
  const double plotHeight = height_ - kMarginTop - kMarginBottom;
  const auto mapX = [&](double value) {
    return kMarginLeft + (axisValue(value, logX_) - xRange.lo) /
                             (xRange.hi - xRange.lo) * plotWidth;
  };
  const auto mapY = [&](double value) {
    return kMarginTop + plotHeight - (axisValue(value, logY_) - yRange.lo) /
                                         (yRange.hi - yRange.lo) * plotHeight;
  };

  std::ofstream out(path);
  CHISIM_CHECK(out.good(), "cannot open plot for writing: " + path.string());
  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width_
      << "\" height=\"" << height_ << "\" font-family=\"sans-serif\">\n"
      << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n"
      << "<text x=\"" << width_ / 2 << "\" y=\"24\" text-anchor=\"middle\" "
         "font-size=\"16\">"
      << escapeXml(title_) << "</text>\n";

  // Axes frame.
  out << "<rect x=\"" << kMarginLeft << "\" y=\"" << kMarginTop << "\" width=\""
      << plotWidth << "\" height=\"" << plotHeight
      << "\" fill=\"none\" stroke=\"#444\"/>\n";

  // Ticks and grid.
  for (double tick : ticks(xRange.lo, xRange.hi, logX_)) {
    const double x = kMarginLeft +
                     (tick - xRange.lo) / (xRange.hi - xRange.lo) * plotWidth;
    if (x < kMarginLeft - 1 || x > kMarginLeft + plotWidth + 1) {
      continue;
    }
    out << "<line x1=\"" << x << "\" y1=\"" << kMarginTop << "\" x2=\"" << x
        << "\" y2=\"" << kMarginTop + plotHeight
        << "\" stroke=\"#ddd\"/>\n"
        << "<text x=\"" << x << "\" y=\"" << kMarginTop + plotHeight + 18
        << "\" text-anchor=\"middle\" font-size=\"11\">"
        << tickLabel(tick, logX_) << "</text>\n";
  }
  for (double tick : ticks(yRange.lo, yRange.hi, logY_)) {
    const double y = kMarginTop + plotHeight -
                     (tick - yRange.lo) / (yRange.hi - yRange.lo) * plotHeight;
    if (y < kMarginTop - 1 || y > kMarginTop + plotHeight + 1) {
      continue;
    }
    out << "<line x1=\"" << kMarginLeft << "\" y1=\"" << y << "\" x2=\""
        << kMarginLeft + plotWidth << "\" y2=\"" << y
        << "\" stroke=\"#ddd\"/>\n"
        << "<text x=\"" << kMarginLeft - 6 << "\" y=\"" << y + 4
        << "\" text-anchor=\"end\" font-size=\"11\">" << tickLabel(tick, logY_)
        << "</text>\n";
  }

  // Axis labels.
  out << "<text x=\"" << kMarginLeft + plotWidth / 2 << "\" y=\""
      << height_ - 12 << "\" text-anchor=\"middle\" font-size=\"13\">"
      << escapeXml(xLabel_) << "</text>\n"
      << "<text x=\"18\" y=\"" << kMarginTop + plotHeight / 2
      << "\" text-anchor=\"middle\" font-size=\"13\" transform=\"rotate(-90 18 "
      << kMarginTop + plotHeight / 2 << ")\">" << escapeXml(yLabel_)
      << "</text>\n";

  // Series.
  for (const PlotSeries& series : series_) {
    std::vector<PlotPoint> usable;
    for (const PlotPoint& point : series.points) {
      if ((logX_ && point.x <= 0.0) || (logY_ && point.y <= 0.0)) {
        continue;
      }
      usable.push_back(point);
    }
    if (usable.empty()) {
      continue;
    }
    if (series.drawLine) {
      out << "<polyline fill=\"none\" stroke=\"" << series.color
          << "\" stroke-width=\"1.5\"";
      if (!series.dash.empty()) {
        out << " stroke-dasharray=\"" << series.dash << "\"";
      }
      out << " points=\"";
      for (const PlotPoint& point : usable) {
        out << mapX(point.x) << ',' << mapY(point.y) << ' ';
      }
      out << "\"/>\n";
    }
    if (series.drawMarkers) {
      for (const PlotPoint& point : usable) {
        out << "<circle cx=\"" << mapX(point.x) << "\" cy=\"" << mapY(point.y)
            << "\" r=\"2.2\" fill=\"" << series.color << "\"/>\n";
      }
    }
  }

  // Legend.
  double legendY = kMarginTop + 14;
  for (const PlotSeries& series : series_) {
    if (series.label.empty()) {
      continue;
    }
    const double x = kMarginLeft + plotWidth - 180;
    out << "<line x1=\"" << x << "\" y1=\"" << legendY - 4 << "\" x2=\""
        << x + 24 << "\" y2=\"" << legendY - 4 << "\" stroke=\"" << series.color
        << "\" stroke-width=\"2\"";
    if (!series.dash.empty()) {
      out << " stroke-dasharray=\"" << series.dash << "\"";
    }
    out << "/>\n<text x=\"" << x + 30 << "\" y=\"" << legendY
        << "\" font-size=\"12\">" << escapeXml(series.label) << "</text>\n";
    legendY += 18;
  }

  out << "</svg>\n";
  CHISIM_CHECK(out.good(), "plot write failed: " + path.string());
}

void writeHistogramSvg(const Histogram& histogram, const std::string& title,
                       const std::string& xLabel,
                       const std::filesystem::path& path, double width,
                       double height) {
  std::uint64_t maxCount = 1;
  for (std::size_t bin = 0; bin < histogram.binCount(); ++bin) {
    maxCount = std::max(maxCount, histogram.count(bin));
  }
  const double plotWidth = width - kMarginLeft - kMarginRight;
  const double plotHeight = height - kMarginTop - kMarginBottom;
  const double barWidth = plotWidth / static_cast<double>(histogram.binCount());

  std::ofstream out(path);
  CHISIM_CHECK(out.good(), "cannot open plot for writing: " + path.string());
  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << width
      << "\" height=\"" << height << "\" font-family=\"sans-serif\">\n"
      << "<rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n"
      << "<text x=\"" << width / 2 << "\" y=\"24\" text-anchor=\"middle\" "
         "font-size=\"16\">"
      << escapeXml(title) << "</text>\n"
      << "<rect x=\"" << kMarginLeft << "\" y=\"" << kMarginTop << "\" width=\""
      << plotWidth << "\" height=\"" << plotHeight
      << "\" fill=\"none\" stroke=\"#444\"/>\n";

  for (std::size_t bin = 0; bin < histogram.binCount(); ++bin) {
    const double fraction = static_cast<double>(histogram.count(bin)) /
                            static_cast<double>(maxCount);
    const double barHeight = fraction * plotHeight;
    out << "<rect x=\"" << kMarginLeft + static_cast<double>(bin) * barWidth + 1
        << "\" y=\"" << kMarginTop + plotHeight - barHeight << "\" width=\""
        << barWidth - 2 << "\" height=\"" << barHeight
        << "\" fill=\"#1f6fb4\"/>\n";
    if (bin % std::max<std::size_t>(1, histogram.binCount() / 10) == 0) {
      out << "<text x=\""
          << kMarginLeft + (static_cast<double>(bin) + 0.5) * barWidth
          << "\" y=\"" << kMarginTop + plotHeight + 18
          << "\" text-anchor=\"middle\" font-size=\"11\">"
          << tickLabel(histogram.binCenter(bin), false) << "</text>\n";
    }
  }
  // Y-axis max label and x-axis title.
  out << "<text x=\"" << kMarginLeft - 6 << "\" y=\"" << kMarginTop + 4
      << "\" text-anchor=\"end\" font-size=\"11\">" << maxCount << "</text>\n"
      << "<text x=\"" << kMarginLeft - 6 << "\" y=\""
      << kMarginTop + plotHeight + 4 << "\" text-anchor=\"end\" "
         "font-size=\"11\">0</text>\n"
      << "<text x=\"" << kMarginLeft + plotWidth / 2 << "\" y=\""
      << height - 12 << "\" text-anchor=\"middle\" font-size=\"13\">"
      << escapeXml(xLabel) << "</text>\n</svg>\n";
  CHISIM_CHECK(out.good(), "plot write failed: " + path.string());
}

}  // namespace chisimnet::stats
