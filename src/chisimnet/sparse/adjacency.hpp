#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "chisimnet/sparse/collocation.hpp"
#include "chisimnet/sparse/pair_count_map.hpp"
#include "chisimnet/table/event.hpp"

/// The sparse symmetric collocation adjacency matrix A = Σ_l x_l·x_lᵀ
/// (paper §IV). Off-diagonal entries only: A(i,j) is the number of
/// person-hours i and j spent collocated. The matrix is stored as its upper
/// triangle (i < j), exactly as the paper stores the triangular sparse
/// matrix in R, via a pair-count hash map while accumulating and as sorted
/// triplets once finalized.

namespace chisimnet::sparse {

/// How a per-place adjacency contribution x·xᵀ is computed.
enum class AdjacencyMethod {
  /// Faithful to the paper's math: for every time column, add 1 to every
  /// pair of persons present in that column (sparse column outer products).
  kSpGemm,
  /// Optimized equivalent: for every pair of persons at the place, the
  /// weight is the size of the sorted intersection of their hour lists.
  kIntervalIntersection,
  /// Local-coordinate accumulator: pair counts are gathered per place in
  /// local row coordinates (a flat upper-triangular uint32 array for
  /// small/medium places, a compact local hash for hubs) and emitted into
  /// the global map once per distinct pair instead of once per pair-hour.
  kLocalAccumulate,
};

/// Diagnostic counters from the local-coordinate kernel, merged up the
/// reduce tree alongside the weights (not part of the matrix value).
struct AdjacencyKernelStats {
  std::uint64_t densePlaces = 0;     ///< places on the triangular-array path
  std::uint64_t hashPlaces = 0;      ///< places on the local-hash path
  std::uint64_t pairHourUpdates = 0; ///< local increments performed
  std::uint64_t globalEmits = 0;     ///< distinct pairs pushed to the map
  /// Entries pre-reserved in merge-fed containers from the summed per-run
  /// row counts (TripletMerger::expectedTriplets), so the hot merge loop
  /// never pays rehash/regrow churn.
  std::uint64_t mergeReservedEntries = 0;

  void merge(const AdjacencyKernelStats& other) noexcept {
    densePlaces += other.densePlaces;
    hashPlaces += other.hashPlaces;
    pairHourUpdates += other.pairHourUpdates;
    globalEmits += other.globalEmits;
    mergeReservedEntries += other.mergeReservedEntries;
  }
};

struct AdjacencyTriplet {
  std::uint32_t i = 0;  ///< lower person id
  std::uint32_t j = 0;  ///< higher person id
  std::uint64_t weight = 0;

  friend auto operator<=>(const AdjacencyTriplet&, const AdjacencyTriplet&) =
      default;
};

class SymmetricAdjacency {
 public:
  explicit SymmetricAdjacency(std::size_t expectedEdges = 64)
      : pairs_(expectedEdges) {}

  /// Adds `weight` collocation hours between distinct persons i and j.
  void add(std::uint32_t i, std::uint32_t j, std::uint64_t weight);

  /// Accumulates one place's x·xᵀ contribution.
  void addCollocation(
      const CollocationMatrix& matrix,
      AdjacencyMethod method = AdjacencyMethod::kLocalAccumulate);

  /// Sums another adjacency into this one (matrix addition).
  void merge(const SymmetricAdjacency& other) {
    pairs_.merge(other.pairs_);
    kernelStats_.merge(other.kernelStats_);
  }

  /// Collocation hours between i and j (0 when never collocated).
  std::uint64_t weight(std::uint32_t i, std::uint32_t j) const noexcept;

  /// Number of stored (i<j) edges.
  std::uint64_t edgeCount() const noexcept { return pairs_.size(); }

  std::size_t memoryBytes() const noexcept { return pairs_.memoryBytes(); }

  /// Pre-sizes the underlying map for `expectedEdges` entries.
  void reserve(std::size_t expectedEdges) { pairs_.reserve(expectedEdges); }

  const AdjacencyKernelStats& kernelStats() const noexcept {
    return kernelStats_;
  }

  /// Folds externally gathered kernel counters in (used when triplets and
  /// stats travel separately, e.g. over the message-passing wire).
  void addKernelStats(const AdjacencyKernelStats& stats) noexcept {
    kernelStats_.merge(stats);
  }

  /// Upper-triangular triplets sorted by (i, j); deterministic output.
  std::vector<AdjacencyTriplet> toTriplets() const;

 private:
  PairCountMap pairs_;
  AdjacencyKernelStats kernelStats_;
};

/// Merges two (i,j)-sorted triplet runs into one sorted run, summing the
/// weights of equal pairs. The reduce tree's building block: no hash table
/// is rebuilt, just a two-pointer walk.
std::vector<AdjacencyTriplet> mergeSortedTriplets(
    std::span<const AdjacencyTriplet> a, std::span<const AdjacencyTriplet> b);

/// A pull stream of (i,j)-sorted triplets with strictly increasing packed
/// keys. The unit the external-memory merge composes over: in-memory runs,
/// spill-run files (sparse/spill.hpp), and merger outputs all speak it.
class TripletSource {
 public:
  virtual ~TripletSource() = default;

  /// Fills `out` with the next triplet; false once the stream is exhausted
  /// (and on every call after that).
  virtual bool next(AdjacencyTriplet& out) = 0;

  /// Upper bound on the rows this source will deliver, when cheaply known
  /// (an in-memory run's size, a spill run's header count); 0 = unknown.
  /// Consumers use the summed hints to pre-reserve output capacity.
  virtual std::uint64_t sizeHint() const noexcept { return 0; }
};

/// TripletSource over an in-memory sorted run (non-owning view).
class SpanTripletSource final : public TripletSource {
 public:
  explicit SpanTripletSource(std::span<const AdjacencyTriplet> run)
      : run_(run) {}
  bool next(AdjacencyTriplet& out) override {
    if (cursor_ >= run_.size()) {
      return false;
    }
    out = run_[cursor_++];
    return true;
  }
  std::uint64_t sizeHint() const noexcept override { return run_.size(); }

 private:
  std::span<const AdjacencyTriplet> run_;
  std::size_t cursor_ = 0;
};

/// K-way generalization of mergeSortedTriplets: a loser-tree tournament
/// over k sorted sources, emitting one strictly key-ascending stream with
/// the weights of pairs that appear in several sources summed. Each next()
/// costs O(log k) comparisons and replays only the path from the winning
/// leaf to the root, so merging spilled runs streams through bounded
/// buffers instead of materializing them. Sources must be strictly
/// ascending (a run never repeats a key); the merger validates that and
/// rejects mis-ordered input rather than emitting a corrupt sum.
class TripletMerger final : public TripletSource {
 public:
  /// Non-owning: the sources must outlive the merger.
  explicit TripletMerger(std::vector<TripletSource*> sources);
  /// Owning variant for composed pipelines (file readers feeding a merge).
  explicit TripletMerger(std::vector<std::unique_ptr<TripletSource>> sources);

  bool next(AdjacencyTriplet& out) override;

  /// Sum of the sources' sizeHint()s: an upper bound on the merged row
  /// count (duplicate keys collapse), taken before any rows are pulled.
  /// Callers reserve output capacity from it instead of regrowing.
  std::uint64_t expectedTriplets() const noexcept { return expected_; }
  std::uint64_t sizeHint() const noexcept override { return expected_; }

 private:
  void start(std::size_t sourceCount);
  void advance(std::size_t leaf);
  void replay(std::size_t leaf);
  std::uint64_t keyOf(std::size_t leaf) const noexcept { return keys_[leaf]; }

  std::vector<TripletSource*> sources_;
  std::vector<std::unique_ptr<TripletSource>> owned_;
  std::vector<AdjacencyTriplet> heads_;  ///< current head per leaf
  std::vector<std::uint64_t> keys_;      ///< packed key per leaf (sentinel on EOF)
  std::vector<std::size_t> losers_;      ///< internal tournament nodes
  std::size_t leafCount_ = 0;            ///< sources padded to a power of two
  std::size_t winner_ = 0;
  std::uint64_t expected_ = 0;           ///< Σ source sizeHint() at start
};

/// Convenience for tests and in-memory reductions: k-way merge of sorted
/// runs via TripletMerger, materialized.
std::vector<AdjacencyTriplet> mergeKSortedTriplets(
    std::span<const std::span<const AdjacencyTriplet>> runs);

/// Accumulates every matrix in `matrices` into a fresh adjacency.
SymmetricAdjacency adjacencyFromCollocations(
    std::span<const CollocationMatrix> matrices,
    AdjacencyMethod method = AdjacencyMethod::kLocalAccumulate);

}  // namespace chisimnet::sparse
