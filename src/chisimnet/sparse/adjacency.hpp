#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "chisimnet/sparse/collocation.hpp"
#include "chisimnet/sparse/pair_count_map.hpp"
#include "chisimnet/table/event.hpp"

/// The sparse symmetric collocation adjacency matrix A = Σ_l x_l·x_lᵀ
/// (paper §IV). Off-diagonal entries only: A(i,j) is the number of
/// person-hours i and j spent collocated. The matrix is stored as its upper
/// triangle (i < j), exactly as the paper stores the triangular sparse
/// matrix in R, via a pair-count hash map while accumulating and as sorted
/// triplets once finalized.

namespace chisimnet::sparse {

/// How a per-place adjacency contribution x·xᵀ is computed.
enum class AdjacencyMethod {
  /// Faithful to the paper's math: for every time column, add 1 to every
  /// pair of persons present in that column (sparse column outer products).
  kSpGemm,
  /// Optimized equivalent: for every pair of persons at the place, the
  /// weight is the size of the sorted intersection of their hour lists.
  kIntervalIntersection,
  /// Local-coordinate accumulator: pair counts are gathered per place in
  /// local row coordinates (a flat upper-triangular uint32 array for
  /// small/medium places, a compact local hash for hubs) and emitted into
  /// the global map once per distinct pair instead of once per pair-hour.
  kLocalAccumulate,
};

/// Diagnostic counters from the local-coordinate kernel, merged up the
/// reduce tree alongside the weights (not part of the matrix value).
struct AdjacencyKernelStats {
  std::uint64_t densePlaces = 0;     ///< places on the triangular-array path
  std::uint64_t hashPlaces = 0;      ///< places on the local-hash path
  std::uint64_t pairHourUpdates = 0; ///< local increments performed
  std::uint64_t globalEmits = 0;     ///< distinct pairs pushed to the map

  void merge(const AdjacencyKernelStats& other) noexcept {
    densePlaces += other.densePlaces;
    hashPlaces += other.hashPlaces;
    pairHourUpdates += other.pairHourUpdates;
    globalEmits += other.globalEmits;
  }
};

struct AdjacencyTriplet {
  std::uint32_t i = 0;  ///< lower person id
  std::uint32_t j = 0;  ///< higher person id
  std::uint64_t weight = 0;

  friend auto operator<=>(const AdjacencyTriplet&, const AdjacencyTriplet&) =
      default;
};

class SymmetricAdjacency {
 public:
  explicit SymmetricAdjacency(std::size_t expectedEdges = 64)
      : pairs_(expectedEdges) {}

  /// Adds `weight` collocation hours between distinct persons i and j.
  void add(std::uint32_t i, std::uint32_t j, std::uint64_t weight);

  /// Accumulates one place's x·xᵀ contribution.
  void addCollocation(
      const CollocationMatrix& matrix,
      AdjacencyMethod method = AdjacencyMethod::kLocalAccumulate);

  /// Sums another adjacency into this one (matrix addition).
  void merge(const SymmetricAdjacency& other) {
    pairs_.merge(other.pairs_);
    kernelStats_.merge(other.kernelStats_);
  }

  /// Collocation hours between i and j (0 when never collocated).
  std::uint64_t weight(std::uint32_t i, std::uint32_t j) const noexcept;

  /// Number of stored (i<j) edges.
  std::uint64_t edgeCount() const noexcept { return pairs_.size(); }

  std::size_t memoryBytes() const noexcept { return pairs_.memoryBytes(); }

  /// Pre-sizes the underlying map for `expectedEdges` entries.
  void reserve(std::size_t expectedEdges) { pairs_.reserve(expectedEdges); }

  const AdjacencyKernelStats& kernelStats() const noexcept {
    return kernelStats_;
  }

  /// Folds externally gathered kernel counters in (used when triplets and
  /// stats travel separately, e.g. over the message-passing wire).
  void addKernelStats(const AdjacencyKernelStats& stats) noexcept {
    kernelStats_.merge(stats);
  }

  /// Upper-triangular triplets sorted by (i, j); deterministic output.
  std::vector<AdjacencyTriplet> toTriplets() const;

 private:
  PairCountMap pairs_;
  AdjacencyKernelStats kernelStats_;
};

/// Merges two (i,j)-sorted triplet runs into one sorted run, summing the
/// weights of equal pairs. The reduce tree's building block: no hash table
/// is rebuilt, just a two-pointer walk.
std::vector<AdjacencyTriplet> mergeSortedTriplets(
    std::span<const AdjacencyTriplet> a, std::span<const AdjacencyTriplet> b);

/// Accumulates every matrix in `matrices` into a fresh adjacency.
SymmetricAdjacency adjacencyFromCollocations(
    std::span<const CollocationMatrix> matrices,
    AdjacencyMethod method = AdjacencyMethod::kLocalAccumulate);

}  // namespace chisimnet::sparse
