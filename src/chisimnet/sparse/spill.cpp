#include "chisimnet/sparse/spill.hpp"

#include <algorithm>
#include <charconv>
#include <cstring>
#include <map>
#include <system_error>
#include <utility>

#if defined(__linux__)
#include <fcntl.h>
#include <unistd.h>
#endif

#include "chisimnet/runtime/fault.hpp"
#include "chisimnet/util/binary_io.hpp"
#include "chisimnet/util/error.hpp"
#include "chisimnet/util/timer.hpp"

namespace chisimnet::sparse {

namespace {

constexpr char kSpillMagic[4] = {'C', 'S', 'P', 'L'};
constexpr std::uint32_t kSpillVersion = 1;
/// Header: magic 4 | version u32 | tripletCount u64.
constexpr std::uint64_t kSpillHeaderBytes = 4 + 4 + 8;
constexpr std::size_t kTripletBytes = sizeof(AdjacencyTriplet);
static_assert(sizeof(AdjacencyTriplet) == 16,
              "spill frames assume 16-byte packed triplets");

/// Floor for spill/flush thresholds so pathological tiny budgets still
/// terminate: a threshold below one minimal hash table would spill on
/// every insert.
constexpr std::uint64_t kMinSpillThresholdBytes = 4096;

std::vector<std::byte> encodeFrame(std::span<const AdjacencyTriplet> rows) {
  std::vector<std::byte> payload(rows.size() * kTripletBytes);
  std::byte* out = payload.data();
  const auto put32 = [&out](std::uint32_t value) {
    for (int shift = 0; shift < 32; shift += 8) {
      *out++ = static_cast<std::byte>(value >> shift);
    }
  };
  for (const AdjacencyTriplet& row : rows) {
    put32(row.i);
    put32(row.j);
    put32(static_cast<std::uint32_t>(row.weight));
    put32(static_cast<std::uint32_t>(row.weight >> 32));
  }
  return payload;
}

}  // namespace

// ---------------------------------------------------------------- writer

SpillRunWriter::SpillRunWriter(std::filesystem::path path)
    : path_(std::move(path)), tmp_(path_.string() + ".tmp") {
  if (path_.has_parent_path()) {
    std::filesystem::create_directories(path_.parent_path());
  }
  out_.open(tmp_, std::ios::binary | std::ios::trunc);
  CHISIM_CHECK(out_.good(),
               "cannot open spill run for writing: " + tmp_.string());
  out_.write(kSpillMagic, 4);
  util::writeU32(out_, kSpillVersion);
  util::writeU64(out_, 0);  // triplet count, patched by finish()
  frame_.reserve(kSpillFrameTriplets);
}

SpillRunWriter::~SpillRunWriter() {
  if (!finished_) {
    out_.close();
    std::error_code ignored;
    std::filesystem::remove(tmp_, ignored);
  }
}

void SpillRunWriter::append(const AdjacencyTriplet& triplet) {
  const std::uint64_t key = packPair(triplet.i, triplet.j);
  CHISIM_CHECK(!any_ || key > lastKey_,
               "spill run rows must be strictly key-ascending: " +
                   path_.string());
  if (!any_) {
    firstKey_ = key;
  }
  lastKey_ = key;
  any_ = true;
  frame_.push_back(triplet);
  if (frame_.size() >= kSpillFrameTriplets) {
    flushFrame();
  }
}

void SpillRunWriter::append(std::span<const AdjacencyTriplet> sorted) {
  for (const AdjacencyTriplet& triplet : sorted) {
    append(triplet);
  }
}

void SpillRunWriter::flushFrame() {
  if (frame_.empty()) {
    return;
  }
  const std::vector<std::byte> payload = encodeFrame(frame_);
  util::writeU32(out_, static_cast<std::uint32_t>(frame_.size()));
  util::writeU32(out_, util::crc32(payload));
  util::writeBytes(out_, payload);
  total_ += frame_.size();
  frame_.clear();
}

SpillRunInfo SpillRunWriter::finish() {
  CHISIM_REQUIRE(!finished_, "spill run already finished");
  flushFrame();
  out_.seekp(8);
  util::writeU64(out_, total_);
  out_.flush();
  CHISIM_CHECK(out_.good(), "spill run write failed: " + tmp_.string());
  out_.close();
  // A kThrow here models dying mid-spill: the complete .tmp is on disk but
  // never renamed, so resume-side GC sees only an orphan.
  runtime::fault::hit("spill.write");
  std::filesystem::rename(tmp_, path_);
  finished_ = true;
  SpillRunInfo info;
  info.file = path_;
  info.triplets = total_;
  info.bytes = static_cast<std::uint64_t>(std::filesystem::file_size(path_));
  info.hasKeyRange = any_;
  info.firstKey = firstKey_;
  info.lastKey = lastKey_;
  return info;
}

// ---------------------------------------------------------------- reader

SpillRunReader::SpillRunReader(std::filesystem::path path,
                               SpillReadahead readahead)
    : path_(std::move(path)),
      in_(path_, std::ios::binary),
      readahead_(readahead) {
  CHISIM_CHECK(in_.good(), "cannot open spill run: " + path_.string());
  char magic[4];
  in_.read(magic, 4);
  CHISIM_CHECK(in_.gcount() == 4 && std::equal(magic, magic + 4, kSpillMagic),
               "not a CSPL spill run: " + path_.string());
  CHISIM_CHECK(util::readU32(in_) == kSpillVersion,
               "unsupported spill run version: " + path_.string());
  total_ = util::readU64(in_);
  frame_.reserve(kSpillFrameTriplets);
#if defined(__linux__)
  if (readahead_ == SpillReadahead::kFadvise) {
    // A side fd carries the kernel hints; the ifstream keeps the read path.
    hintFd_ = ::open(path_.c_str(), O_RDONLY | O_CLOEXEC);
    if (hintFd_ >= 0) {
      posix_fadvise(hintFd_, 0, 0, POSIX_FADV_SEQUENTIAL);
    }
  }
#endif
  if (readahead_ != SpillReadahead::kNone) {
    staged_.reserve(kSpillFrameTriplets);
    // After this point only the prefetcher touches in_ (and hintFd_).
    prefetcher_ = std::thread([this] { prefetchLoop(); });
  }
}

SpillRunReader::~SpillRunReader() {
  if (prefetcher_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    frameTaken_.notify_all();
    prefetcher_.join();
  }
#if defined(__linux__)
  if (hintFd_ >= 0) {
    ::close(hintFd_);
  }
#endif
}

void SpillRunReader::fail(const std::string& what,
                          std::uint64_t offset) const {
  CHISIM_CHECK(false, "spill run " + path_.string() + " at byte offset " +
                          std::to_string(offset) + ": " + what);
}

bool SpillRunReader::decodeFrame(std::vector<AdjacencyTriplet>& dest) {
  const std::uint64_t frameOffset =
      static_cast<std::uint64_t>(in_.tellg());
  unsigned char header[8];
  in_.read(reinterpret_cast<char*>(header), 8);
  if (in_.gcount() == 0 && in_.eof()) {
    // Clean end of file at a frame boundary: the header count must agree.
    if (decoded_ != total_) {
      fail("truncated: header declares " + std::to_string(total_) +
               " triplets but only " + std::to_string(decoded_) +
               " are present",
           frameOffset);
    }
    return false;
  }
  if (in_.gcount() != 8) {
    fail("truncated frame header", frameOffset);
  }
  const auto get32 = [&header](int at) {
    return static_cast<std::uint32_t>(header[at]) |
           (static_cast<std::uint32_t>(header[at + 1]) << 8) |
           (static_cast<std::uint32_t>(header[at + 2]) << 16) |
           (static_cast<std::uint32_t>(header[at + 3]) << 24);
  };
  const std::uint32_t count = get32(0);
  const std::uint32_t storedCrc = get32(4);
  if (count == 0 || count > kSpillFrameTriplets) {
    fail("corrupt frame header: implausible row count " +
             std::to_string(count),
         frameOffset);
  }
  std::vector<std::byte> payload(count * kTripletBytes);
  in_.read(reinterpret_cast<char*>(payload.data()),
           static_cast<std::streamsize>(payload.size()));
  if (in_.gcount() != static_cast<std::streamsize>(payload.size())) {
    fail("truncated frame payload (wanted " + std::to_string(payload.size()) +
             " bytes, got " + std::to_string(in_.gcount()) + ")",
         frameOffset);
  }
  const std::uint32_t actualCrc = util::crc32(payload);
  if (actualCrc != storedCrc) {
    fail("frame CRC mismatch (stored " + std::to_string(storedCrc) +
             ", computed " + std::to_string(actualCrc) + ")",
         frameOffset);
  }
  decoded_ += count;
  if (decoded_ > total_) {
    fail("more triplets than the header declares (" + std::to_string(total_) +
             ")",
         frameOffset);
  }
  dest.resize(count);
  std::size_t cursor = 0;
  const auto take32 = [&payload, &cursor]() {
    const std::uint32_t value =
        static_cast<std::uint32_t>(payload[cursor]) |
        (static_cast<std::uint32_t>(payload[cursor + 1]) << 8) |
        (static_cast<std::uint32_t>(payload[cursor + 2]) << 16) |
        (static_cast<std::uint32_t>(payload[cursor + 3]) << 24);
    cursor += 4;
    return value;
  };
  for (AdjacencyTriplet& row : dest) {
    row.i = take32();
    row.j = take32();
    const std::uint64_t low = take32();
    const std::uint64_t high = take32();
    row.weight = low | (high << 32);
  }
#if defined(__linux__)
  if (hintFd_ >= 0) {
    // Ask the kernel to stage the next frame while this one is consumed:
    // readahead depth 2 in total (one frame in the double buffer, one in
    // the page cache).
    posix_fadvise(hintFd_, static_cast<off_t>(in_.tellg()),
                  static_cast<off_t>(kSpillFrameTriplets * kTripletBytes + 8),
                  POSIX_FADV_WILLNEED);
  }
#endif
  return true;
}

void SpillRunReader::prefetchLoop() {
  try {
    std::vector<AdjacencyTriplet> local;
    local.reserve(kSpillFrameTriplets);
    for (;;) {
      local.clear();
      if (!decodeFrame(local)) {
        std::lock_guard<std::mutex> lock(mutex_);
        producerDone_ = true;
        frameReady_.notify_all();
        return;
      }
      std::unique_lock<std::mutex> lock(mutex_);
      frameTaken_.wait(lock, [this] { return !stagedFull_ || stop_; });
      if (stop_) {
        return;
      }
      staged_.swap(local);
      stagedFull_ = true;
      frameReady_.notify_all();
    }
  } catch (...) {
    std::lock_guard<std::mutex> lock(mutex_);
    producerError_ = std::current_exception();
    producerDone_ = true;
    frameReady_.notify_all();
  }
}

bool SpillRunReader::next(AdjacencyTriplet& out) {
  while (cursor_ >= frame_.size()) {
    if (readahead_ == SpillReadahead::kNone) {
      if (exhausted_) {
        return false;
      }
      frame_.clear();
      cursor_ = 0;
      if (!decodeFrame(frame_)) {
        exhausted_ = true;
        return false;
      }
      continue;
    }
    std::unique_lock<std::mutex> lock(mutex_);
    frameReady_.wait(lock, [this] { return stagedFull_ || producerDone_; });
    if (stagedFull_) {
      frame_.swap(staged_);
      staged_.clear();
      stagedFull_ = false;
      cursor_ = 0;
      frameTaken_.notify_all();
      continue;
    }
    // Producer finished: surface its error on the consumer thread, or a
    // clean end of stream.
    if (producerError_) {
      std::rethrow_exception(producerError_);
    }
    return false;
  }
  out = frame_[cursor_++];
  return true;
}

// ---------------------------------------------------------- accumulator

SpillingAccumulator::SpillingAccumulator(Options options)
    : options_(std::move(options)) {
  CHISIM_REQUIRE(!options_.dir.empty(),
                 "a spilling accumulator needs a run directory");
  CHISIM_REQUIRE(options_.rowsPerShard >= 1, "rowsPerShard must be >= 1");
  CHISIM_REQUIRE(options_.maxLiveRuns >= 2, "maxLiveRuns must be >= 2");
  std::filesystem::create_directories(options_.dir);
  if (options_.budgetBytes > 0) {
    spillThreshold_ =
        std::max(options_.budgetBytes / 2, kMinSpillThresholdBytes);
  }
  // Resume-safe run numbering: start above any run file of this prefix
  // already in the directory (adopted checkpoint runs keep their names).
  for (const auto& entry : std::filesystem::directory_iterator(options_.dir)) {
    const std::string name = entry.path().filename().string();
    if (!name.starts_with(options_.runPrefix)) {
      continue;
    }
    if (name.ends_with(".spl.tmp")) {
      // A SIGKILL during spill-write in a previous non-checkpoint run leaves
      // a complete-but-unrenamed .tmp behind; it is unreachable state and
      // would otherwise accumulate across fresh starts.
      std::error_code ignored;
      std::filesystem::remove(entry.path(), ignored);
      continue;
    }
    if (!name.ends_with(".spl")) {
      continue;
    }
    const std::string middle = name.substr(
        options_.runPrefix.size(),
        name.size() - options_.runPrefix.size() - 4);
    std::uint64_t index = 0;
    const auto [ptr, ec] =
        std::from_chars(middle.data(), middle.data() + middle.size(), index);
    if (ec == std::errc{} && ptr == middle.data() + middle.size()) {
      nextRunIndex_ = std::max(nextRunIndex_, index + 1);
    }
  }
}

std::filesystem::path SpillingAccumulator::nextRunPath() {
  return options_.dir /
         (options_.runPrefix + std::to_string(nextRunIndex_++) + ".spl");
}

void SpillingAccumulator::notePeak(std::uint64_t extraBytes) noexcept {
  stats_.peakResidentBytes =
      std::max(stats_.peakResidentBytes, residentBytes_ + extraBytes);
}

void SpillingAccumulator::noteWorkerPeak(std::uint64_t extraBytes) noexcept {
  stats_.peakWorkerBytes = std::max(stats_.peakWorkerBytes, extraBytes);
}

void SpillingAccumulator::add(std::uint32_t i, std::uint32_t j,
                              std::uint64_t weight) {
  CHISIM_REQUIRE(i != j, "self-collocation is not an edge");
  if (weight == 0) {
    return;
  }
  const std::uint32_t lo = i < j ? i : j;
  const std::uint32_t shard = lo / options_.rowsPerShard;
  auto found = shards_.find(shard);
  if (found == shards_.end()) {
    found = shards_.emplace(shard, PairCountMap(16)).first;
    residentBytes_ += found->second.memoryBytes();
  }
  PairCountMap* pairs = &found->second;
  if (spillThreshold_ > 0 && pairs->growthImminent() &&
      residentBytes_ + pairs->memoryBytes() > spillThreshold_) {
    // The next insert would double this shard past the budget line: spill
    // everything resident first, then insert into a fresh minimal shard.
    spillAll();
    found = shards_.emplace(shard, PairCountMap(16)).first;
    residentBytes_ += found->second.memoryBytes();
    pairs = &found->second;
  }
  const std::size_t before = pairs->memoryBytes();
  pairs->add(packPair(i, j), weight);
  residentBytes_ += pairs->memoryBytes() - before;
  notePeak(0);
}

void SpillingAccumulator::addSortedRun(std::span<const AdjacencyTriplet> run) {
  for (const AdjacencyTriplet& triplet : run) {
    add(triplet.i, triplet.j, triplet.weight);
  }
}

void SpillingAccumulator::adoptRunFile(const SpillRunInfo& info) {
  CHISIM_CHECK(std::filesystem::exists(info.file),
               "cannot adopt a missing spill run: " + info.file.string());
  SpillRunInfo owned = info;
  owned.file = nextRunPath();
  std::filesystem::rename(info.file, owned.file);
  runs_.push_back(std::move(owned));
  ++stats_.runsWritten;
  stats_.spilledTriplets += info.triplets;
  stats_.spilledBytes += info.bytes;
  maybeCompact();
}

void SpillingAccumulator::restoreRunFile(const SpillRunInfo& info) {
  CHISIM_CHECK(std::filesystem::exists(info.file),
               "checkpoint manifest references a missing spill run: " +
                   info.file.string());
  // Restored runs are prior-life state, not this run's spill activity:
  // they count toward the live set but not the written/spilled counters.
  runs_.push_back(info);
  maybeCompact();
}

void SpillingAccumulator::spillShard(std::uint32_t shard,
                                     PairCountMap& pairs) {
  if (pairs.empty()) {
    return;
  }
  std::vector<AdjacencyTriplet> triplets;
  triplets.reserve(pairs.size());
  pairs.forEach([&triplets](std::uint64_t key, std::uint64_t count) {
    triplets.push_back(
        AdjacencyTriplet{pairLow(key), pairHigh(key), count});
  });
  std::sort(triplets.begin(), triplets.end());
  // The sort buffer is the spill transient: it lives beside the resident
  // shards, which is why the spill threshold is half the budget.
  notePeak(triplets.size() * kTripletBytes);
  // Release the shard table before the file write so the transient and the
  // table never both count twice against the budget.
  residentBytes_ -= pairs.memoryBytes();
  pairs = PairCountMap(16);
  residentBytes_ += pairs.memoryBytes();

  SpillRunWriter writer(nextRunPath());
  writer.append(std::span<const AdjacencyTriplet>(triplets));
  const SpillRunInfo info = writer.finish();
  (void)shard;
  runs_.push_back(info);
  ++stats_.runsWritten;
  stats_.spilledTriplets += info.triplets;
  stats_.spilledBytes += info.bytes;
}

void SpillingAccumulator::spillAll() {
  for (auto& [shard, pairs] : shards_) {
    spillShard(shard, pairs);
  }
  for (const auto& [shard, pairs] : shards_) {
    residentBytes_ -= pairs.memoryBytes();
  }
  shards_.clear();
  maybeCompact();
}

void SpillingAccumulator::retireRunFile(std::filesystem::path file) {
  if (options_.deferDeletes) {
    retired_.push_back(std::move(file));
  } else {
    std::error_code ignored;
    std::filesystem::remove(file, ignored);
  }
}

void SpillingAccumulator::maybeCompact() {
  // Compaction is per shard group: runs that cover a single reduce shard
  // only ever merge with runs of the same shard, so the shard-ownership
  // invariant survives compaction and a later sharded merge still sees
  // shard-pure inputs. Runs without a known shard (legacy manifests,
  // pre-split compactions) pool in a catch-all group.
  std::map<std::int64_t, std::vector<std::size_t>> groups;
  for (std::size_t at = 0; at < runs_.size(); ++at) {
    groups[runs_[at].shardOf(options_.rowsPerShard)].push_back(at);
  }
  // The bound compaction enforces is per-group merge fan-in, not global
  // file count: a sharded merge opens one group at a time, so a global
  // trigger that rewrites every group whenever the total run count trips
  // makes compaction IO scale with the shard count for no fan-in benefit
  // (each cycle re-reads and re-writes nearly all spilled data). Compact
  // exactly the groups whose own member count exceeds maxLiveRuns and
  // leave the rest untouched; with one group this is the legacy global
  // trigger.
  bool oversized = false;
  for (const auto& [shard, members] : groups) {
    if (members.size() > options_.maxLiveRuns) {
      oversized = true;
      break;
    }
  }
  if (!oversized) {
    return;
  }
  runtime::fault::hit("spill.merge");
  ++stats_.compactions;
  std::vector<SpillRunInfo> survivors;
  survivors.reserve(runs_.size());
  for (auto& [shard, members] : groups) {
    if (members.size() <= options_.maxLiveRuns) {
      for (const std::size_t at : members) {
        survivors.push_back(std::move(runs_[at]));
      }
      continue;
    }
    std::vector<std::unique_ptr<TripletSource>> readers;
    readers.reserve(members.size());
    for (const std::size_t at : members) {
      readers.push_back(std::make_unique<SpillRunReader>(runs_[at].file));
    }
    TripletMerger merger(std::move(readers));
    SpillRunWriter writer(nextRunPath());
    AdjacencyTriplet triplet;
    while (merger.next(triplet)) {
      writer.append(triplet);
    }
    const SpillRunInfo compacted = writer.finish();
    // The inputs are superseded; under deferDeletes they stay on disk until
    // the caller's next checkpoint manifest no longer references them.
    for (const std::size_t at : members) {
      retireRunFile(std::move(runs_[at].file));
    }
    survivors.push_back(compacted);
    ++stats_.runsWritten;
    stats_.spilledTriplets += compacted.triplets;
    stats_.spilledBytes += compacted.bytes;
  }
  runs_ = std::move(survivors);
}

std::unique_ptr<TripletSource> SpillingAccumulator::finishMerge() {
  spillAll();
  std::vector<std::unique_ptr<TripletSource>> readers;
  readers.reserve(runs_.size());
  for (const SpillRunInfo& run : runs_) {
    readers.push_back(std::make_unique<SpillRunReader>(run.file));
  }
  return std::make_unique<TripletMerger>(std::move(readers));
}

void SpillingAccumulator::splitRun(const SpillRunInfo& run,
                                   std::vector<SpillRunInfo>& out) {
  SpillRunReader reader(run.file);
  std::unique_ptr<SpillRunWriter> writer;
  std::int64_t currentShard = -1;
  AdjacencyTriplet triplet;
  const auto finishPart = [this, &writer, &out] {
    if (!writer) {
      return;
    }
    const SpillRunInfo part = writer->finish();
    writer.reset();
    out.push_back(part);
    ++stats_.runsWritten;
    stats_.spilledTriplets += part.triplets;
    stats_.spilledBytes += part.bytes;
  };
  while (reader.next(triplet)) {
    const std::int64_t shard =
        static_cast<std::int64_t>(triplet.i / options_.rowsPerShard);
    if (shard != currentShard) {
      finishPart();
      writer = std::make_unique<SpillRunWriter>(nextRunPath());
      currentShard = shard;
    }
    writer->append(triplet);
  }
  finishPart();
  ++stats_.runsSplit;
  retireRunFile(run.file);
}

std::vector<SpillingAccumulator::ShardRunGroup>
SpillingAccumulator::buildShardMergePlan() {
  spillAll();
  std::vector<SpillRunInfo> pure;
  std::vector<SpillRunInfo> straddlers;
  pure.reserve(runs_.size());
  for (SpillRunInfo& run : runs_) {
    if (run.triplets == 0) {
      retireRunFile(std::move(run.file));
      continue;
    }
    if (run.shardOf(options_.rowsPerShard) >= 0) {
      pure.push_back(std::move(run));
    } else {
      straddlers.push_back(std::move(run));
    }
  }
  for (const SpillRunInfo& straddler : straddlers) {
    splitRun(straddler, pure);
  }
  runs_ = std::move(pure);
  std::map<std::uint32_t, std::vector<SpillRunInfo>> byShard;
  for (const SpillRunInfo& run : runs_) {
    const std::int64_t shard = run.shardOf(options_.rowsPerShard);
    CHISIM_CHECK(shard >= 0, "split left a straddling run: " +
                                 run.file.string());
    byShard[static_cast<std::uint32_t>(shard)].push_back(run);
  }
  std::vector<ShardRunGroup> plan;
  plan.reserve(byShard.size());
  for (auto& [shard, runs] : byShard) {
    plan.push_back(ShardRunGroup{shard, std::move(runs)});
  }
  return plan;
}

std::vector<std::filesystem::path> SpillingAccumulator::takeRetiredFiles() {
  return std::exchange(retired_, {});
}

// ---------------------------------------------------------- worker sum

SpillingSum::SpillingSum(std::filesystem::path dir, std::string filePrefix,
                         std::uint64_t flushThresholdBytes,
                         std::uint32_t splitRows)
    : dir_(std::move(dir)),
      filePrefix_(std::move(filePrefix)),
      splitRows_(splitRows),
      sum_(1024) {
  if (flushThresholdBytes > 0) {
    flushThreshold_ = std::max(flushThresholdBytes, kMinSpillThresholdBytes);
    CHISIM_REQUIRE(!dir_.empty(),
                   "a flushing stage-5 sum needs a spill directory");
  }
}

void SpillingSum::addCollocation(const CollocationMatrix& matrix,
                                 AdjacencyMethod method) {
  sum_.addCollocation(matrix, method);
  peakBytes_ = std::max<std::uint64_t>(peakBytes_, sum_.memoryBytes());
  if (flushThreshold_ > 0 && sum_.memoryBytes() > flushThreshold_) {
    flush();
  }
}

void SpillingSum::flush() {
  if (sum_.edgeCount() == 0) {
    return;
  }
  const std::vector<AdjacencyTriplet> triplets = drainInMemory();
  // With splitRows_ the sorted flush is partitioned at reduce-shard
  // boundaries into shard-pure runs, so the sink can route each run
  // straight to its shard owner without a split-and-rewrite pass.
  std::size_t begin = 0;
  while (begin < triplets.size()) {
    std::size_t end = triplets.size();
    if (splitRows_ > 0) {
      const std::uint32_t shard = triplets[begin].i / splitRows_;
      end = begin + 1;
      while (end < triplets.size() && triplets[end].i / splitRows_ == shard) {
        ++end;
      }
    }
    SpillRunWriter writer(
        dir_ / (filePrefix_ + std::to_string(nextRunIndex_++) + ".spl"));
    writer.append(std::span<const AdjacencyTriplet>(triplets.data() + begin,
                                                    end - begin));
    runs_.push_back(writer.finish());
    begin = end;
  }
  ++flushes_;
}

const AdjacencyKernelStats& SpillingSum::kernelStats() const noexcept {
  return sum_.kernelStats();
}

std::vector<AdjacencyTriplet> SpillingSum::drainInMemory() {
  std::vector<AdjacencyTriplet> triplets = sum_.toTriplets();
  peakBytes_ = std::max<std::uint64_t>(
      peakBytes_, sum_.memoryBytes() + triplets.size() * kTripletBytes);
  const AdjacencyKernelStats stats = sum_.kernelStats();
  sum_ = SymmetricAdjacency(1024);
  sum_.addKernelStats(stats);  // counters survive the drain
  return triplets;
}

void SpillingSum::flushAll() {
  flush();
}

// -------------------------------------------------------- shard merge

ShardSegment mergeShardRuns(std::uint32_t shard,
                            std::span<const SpillRunInfo> runs,
                            const std::filesystem::path& segmentFile,
                            SpillReadahead readahead) {
  util::ThreadCpuTimer timer;
  std::vector<std::unique_ptr<TripletSource>> readers;
  readers.reserve(runs.size());
  for (const SpillRunInfo& run : runs) {
    readers.push_back(std::make_unique<SpillRunReader>(run.file, readahead));
  }
  TripletMerger merger(std::move(readers));
  TripletSegmentWriter writer(segmentFile);
  AdjacencyTriplet triplet;
  while (merger.next(triplet)) {
    writer.append(triplet);
  }
  const TripletSegmentInfo info = writer.finish();
  ShardSegment segment;
  segment.shard = shard;
  segment.file = segmentFile;
  segment.triplets = info.triplets;
  segment.bytes = info.bytes;
  segment.crc = info.crc;
  segment.mergeSeconds = timer.seconds();
  return segment;
}

}  // namespace chisimnet::sparse
