#include "chisimnet/sparse/adjacency_io.hpp"

#include <algorithm>
#include <fstream>
#include <system_error>

#include "chisimnet/util/binary_io.hpp"
#include "chisimnet/util/error.hpp"

namespace chisimnet::sparse {

namespace {

constexpr char kMagic[4] = {'C', 'A', 'D', 'J'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kRowBytes = 4 + 4 + 8;

}  // namespace

void saveTriplets(std::span<const AdjacencyTriplet> triplets,
                  const std::filesystem::path& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  CHISIM_CHECK(out.good(), "cannot open adjacency file for writing: " +
                               path.string());
  out.write(kMagic, 4);
  util::writeU32(out, kVersion);
  util::writeU64(out, triplets.size());

  std::vector<std::byte> payload;
  payload.reserve(triplets.size() * kRowBytes);
  const auto put32 = [&payload](std::uint32_t value) {
    for (int shift = 0; shift < 32; shift += 8) {
      payload.push_back(static_cast<std::byte>(value >> shift));
    }
  };
  for (const AdjacencyTriplet& triplet : triplets) {
    CHISIM_REQUIRE(triplet.i < triplet.j,
                   "triplets must be upper-triangular (i < j)");
    put32(triplet.i);
    put32(triplet.j);
    put32(static_cast<std::uint32_t>(triplet.weight));
    put32(static_cast<std::uint32_t>(triplet.weight >> 32));
  }
  util::writeBytes(out, payload);
  util::writeU32(out, util::crc32(payload));
  out.flush();
  CHISIM_CHECK(out.good(), "adjacency write failed: " + path.string());
}

void saveAdjacency(const SymmetricAdjacency& adjacency,
                   const std::filesystem::path& path) {
  const std::vector<AdjacencyTriplet> triplets = adjacency.toTriplets();
  saveTriplets(triplets, path);
}

std::vector<AdjacencyTriplet> loadTriplets(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  CHISIM_CHECK(in.good(), "cannot open adjacency file: " + path.string());
  char magic[4];
  in.read(magic, 4);
  CHISIM_CHECK(in.gcount() == 4 && std::equal(magic, magic + 4, kMagic),
               "not a CADJ file: " + path.string());
  CHISIM_CHECK(util::readU32(in) == kVersion, "unsupported CADJ version");
  const std::uint64_t count = util::readU64(in);

  std::vector<std::byte> payload(count * kRowBytes);
  util::readBytes(in, payload);
  const std::uint32_t storedCrc = util::readU32(in);
  CHISIM_CHECK(storedCrc == util::crc32(payload),
               "adjacency CRC mismatch (corrupt or truncated): " +
                   path.string());

  std::vector<AdjacencyTriplet> triplets(count);
  std::size_t cursor = 0;
  const auto take32 = [&payload, &cursor]() {
    const std::uint32_t value =
        static_cast<std::uint32_t>(payload[cursor]) |
        (static_cast<std::uint32_t>(payload[cursor + 1]) << 8) |
        (static_cast<std::uint32_t>(payload[cursor + 2]) << 16) |
        (static_cast<std::uint32_t>(payload[cursor + 3]) << 24);
    cursor += 4;
    return value;
  };
  for (AdjacencyTriplet& triplet : triplets) {
    triplet.i = take32();
    triplet.j = take32();
    const std::uint64_t low = take32();
    const std::uint64_t high = take32();
    triplet.weight = low | (high << 32);
  }
  return triplets;
}

TripletSegmentWriter::TripletSegmentWriter(std::filesystem::path path)
    : path_(std::move(path)), tmp_(path_.string() + ".tmp") {
  if (path_.has_parent_path()) {
    std::filesystem::create_directories(path_.parent_path());
  }
  out_.open(tmp_, std::ios::binary | std::ios::trunc);
  CHISIM_CHECK(out_.good(),
               "cannot open segment file for writing: " + tmp_.string());
  buffer_.reserve(kRowBytes * 4096);
}

TripletSegmentWriter::~TripletSegmentWriter() {
  if (!finished_) {
    out_.close();
    std::error_code ignored;
    std::filesystem::remove(tmp_, ignored);
  }
}

void TripletSegmentWriter::append(const AdjacencyTriplet& triplet) {
  CHISIM_REQUIRE(triplet.i < triplet.j,
                 "triplets must be upper-triangular (i < j)");
  const auto put32 = [this](std::uint32_t value) {
    for (int shift = 0; shift < 32; shift += 8) {
      buffer_.push_back(static_cast<std::byte>(value >> shift));
    }
  };
  put32(triplet.i);
  put32(triplet.j);
  put32(static_cast<std::uint32_t>(triplet.weight));
  put32(static_cast<std::uint32_t>(triplet.weight >> 32));
  ++count_;
  if (buffer_.size() >= kRowBytes * 4096) {
    flushBuffer();
  }
}

void TripletSegmentWriter::flushBuffer() {
  if (buffer_.empty()) {
    return;
  }
  crc_ = util::crc32(buffer_, crc_);
  bytes_ += buffer_.size();
  util::writeBytes(out_, buffer_);
  buffer_.clear();
}

TripletSegmentInfo TripletSegmentWriter::finish() {
  CHISIM_REQUIRE(!finished_, "segment already finished");
  flushBuffer();
  out_.flush();
  CHISIM_CHECK(out_.good(), "segment write failed: " + tmp_.string());
  out_.close();
  std::filesystem::rename(tmp_, path_);
  finished_ = true;
  return TripletSegmentInfo{count_, bytes_, crc_};
}

StreamingTripletWriter::StreamingTripletWriter(
    const std::filesystem::path& path)
    : path_(path), out_(path, std::ios::binary | std::ios::trunc) {
  CHISIM_CHECK(out_.good(),
               "cannot open adjacency file for writing: " + path.string());
  out_.write(kMagic, 4);
  util::writeU32(out_, kVersion);
  util::writeU64(out_, 0);  // edge count, patched by finish()
  buffer_.reserve(kRowBytes * 4096);
}

void StreamingTripletWriter::append(const AdjacencyTriplet& triplet) {
  CHISIM_REQUIRE(triplet.i < triplet.j,
                 "triplets must be upper-triangular (i < j)");
  const auto put32 = [this](std::uint32_t value) {
    for (int shift = 0; shift < 32; shift += 8) {
      buffer_.push_back(static_cast<std::byte>(value >> shift));
    }
  };
  put32(triplet.i);
  put32(triplet.j);
  put32(static_cast<std::uint32_t>(triplet.weight));
  put32(static_cast<std::uint32_t>(triplet.weight >> 32));
  ++count_;
  if (buffer_.size() >= kRowBytes * 4096) {
    flushBuffer();
  }
}

void StreamingTripletWriter::flushBuffer() {
  if (buffer_.empty()) {
    return;
  }
  crc_ = util::crc32(buffer_, crc_);  // chained: equals crc32(whole payload)
  util::writeBytes(out_, buffer_);
  buffer_.clear();
}

void StreamingTripletWriter::appendSegmentFile(
    const std::filesystem::path& segment, const TripletSegmentInfo& info) {
  CHISIM_REQUIRE(!finished_, "adjacency stream already finished");
  flushBuffer();  // everything appended so far must precede the segment
  std::ifstream in(segment, std::ios::binary);
  CHISIM_CHECK(in.good(), "cannot open segment file: " + segment.string());
  std::vector<std::byte> chunk(kRowBytes * 4096);
  std::uint64_t copied = 0;
  std::uint32_t segmentCrc = 0;
  while (copied < info.bytes) {
    const std::uint64_t want = std::min<std::uint64_t>(
        chunk.size(), info.bytes - copied);
    in.read(reinterpret_cast<char*>(chunk.data()),
            static_cast<std::streamsize>(want));
    CHISIM_CHECK(in.gcount() == static_cast<std::streamsize>(want),
                 "segment file truncated: " + segment.string());
    const std::span<const std::byte> bytes(chunk.data(), want);
    segmentCrc = util::crc32(bytes, segmentCrc);
    crc_ = util::crc32(bytes, crc_);  // chained: composes across segments
    util::writeBytes(out_, bytes);
    copied += want;
  }
  CHISIM_CHECK(segmentCrc == info.crc,
               "segment CRC mismatch (corrupt or stale): " + segment.string());
  count_ += info.triplets;
}

std::uint64_t StreamingTripletWriter::finish() {
  CHISIM_REQUIRE(!finished_, "adjacency stream already finished");
  flushBuffer();
  util::writeU32(out_, crc_);
  out_.seekp(8);
  util::writeU64(out_, count_);
  out_.flush();
  CHISIM_CHECK(out_.good(), "adjacency write failed: " + path_.string());
  finished_ = true;
  return count_;
}

SymmetricAdjacency loadAdjacency(const std::filesystem::path& path) {
  const std::vector<AdjacencyTriplet> triplets = loadTriplets(path);
  SymmetricAdjacency adjacency(triplets.size());
  for (const AdjacencyTriplet& triplet : triplets) {
    adjacency.add(triplet.i, triplet.j, triplet.weight);
  }
  return adjacency;
}

}  // namespace chisimnet::sparse
