#include "chisimnet/sparse/adjacency_io.hpp"

#include <fstream>

#include "chisimnet/util/binary_io.hpp"
#include "chisimnet/util/error.hpp"

namespace chisimnet::sparse {

namespace {

constexpr char kMagic[4] = {'C', 'A', 'D', 'J'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kRowBytes = 4 + 4 + 8;

}  // namespace

void saveTriplets(std::span<const AdjacencyTriplet> triplets,
                  const std::filesystem::path& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  CHISIM_CHECK(out.good(), "cannot open adjacency file for writing: " +
                               path.string());
  out.write(kMagic, 4);
  util::writeU32(out, kVersion);
  util::writeU64(out, triplets.size());

  std::vector<std::byte> payload;
  payload.reserve(triplets.size() * kRowBytes);
  const auto put32 = [&payload](std::uint32_t value) {
    for (int shift = 0; shift < 32; shift += 8) {
      payload.push_back(static_cast<std::byte>(value >> shift));
    }
  };
  for (const AdjacencyTriplet& triplet : triplets) {
    CHISIM_REQUIRE(triplet.i < triplet.j,
                   "triplets must be upper-triangular (i < j)");
    put32(triplet.i);
    put32(triplet.j);
    put32(static_cast<std::uint32_t>(triplet.weight));
    put32(static_cast<std::uint32_t>(triplet.weight >> 32));
  }
  util::writeBytes(out, payload);
  util::writeU32(out, util::crc32(payload));
  out.flush();
  CHISIM_CHECK(out.good(), "adjacency write failed: " + path.string());
}

void saveAdjacency(const SymmetricAdjacency& adjacency,
                   const std::filesystem::path& path) {
  const std::vector<AdjacencyTriplet> triplets = adjacency.toTriplets();
  saveTriplets(triplets, path);
}

std::vector<AdjacencyTriplet> loadTriplets(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  CHISIM_CHECK(in.good(), "cannot open adjacency file: " + path.string());
  char magic[4];
  in.read(magic, 4);
  CHISIM_CHECK(in.gcount() == 4 && std::equal(magic, magic + 4, kMagic),
               "not a CADJ file: " + path.string());
  CHISIM_CHECK(util::readU32(in) == kVersion, "unsupported CADJ version");
  const std::uint64_t count = util::readU64(in);

  std::vector<std::byte> payload(count * kRowBytes);
  util::readBytes(in, payload);
  const std::uint32_t storedCrc = util::readU32(in);
  CHISIM_CHECK(storedCrc == util::crc32(payload),
               "adjacency CRC mismatch (corrupt or truncated): " +
                   path.string());

  std::vector<AdjacencyTriplet> triplets(count);
  std::size_t cursor = 0;
  const auto take32 = [&payload, &cursor]() {
    const std::uint32_t value =
        static_cast<std::uint32_t>(payload[cursor]) |
        (static_cast<std::uint32_t>(payload[cursor + 1]) << 8) |
        (static_cast<std::uint32_t>(payload[cursor + 2]) << 16) |
        (static_cast<std::uint32_t>(payload[cursor + 3]) << 24);
    cursor += 4;
    return value;
  };
  for (AdjacencyTriplet& triplet : triplets) {
    triplet.i = take32();
    triplet.j = take32();
    const std::uint64_t low = take32();
    const std::uint64_t high = take32();
    triplet.weight = low | (high << 32);
  }
  return triplets;
}

StreamingTripletWriter::StreamingTripletWriter(
    const std::filesystem::path& path)
    : path_(path), out_(path, std::ios::binary | std::ios::trunc) {
  CHISIM_CHECK(out_.good(),
               "cannot open adjacency file for writing: " + path.string());
  out_.write(kMagic, 4);
  util::writeU32(out_, kVersion);
  util::writeU64(out_, 0);  // edge count, patched by finish()
  buffer_.reserve(kRowBytes * 4096);
}

void StreamingTripletWriter::append(const AdjacencyTriplet& triplet) {
  CHISIM_REQUIRE(triplet.i < triplet.j,
                 "triplets must be upper-triangular (i < j)");
  const auto put32 = [this](std::uint32_t value) {
    for (int shift = 0; shift < 32; shift += 8) {
      buffer_.push_back(static_cast<std::byte>(value >> shift));
    }
  };
  put32(triplet.i);
  put32(triplet.j);
  put32(static_cast<std::uint32_t>(triplet.weight));
  put32(static_cast<std::uint32_t>(triplet.weight >> 32));
  ++count_;
  if (buffer_.size() >= kRowBytes * 4096) {
    flushBuffer();
  }
}

void StreamingTripletWriter::flushBuffer() {
  if (buffer_.empty()) {
    return;
  }
  crc_ = util::crc32(buffer_, crc_);  // chained: equals crc32(whole payload)
  util::writeBytes(out_, buffer_);
  buffer_.clear();
}

std::uint64_t StreamingTripletWriter::finish() {
  CHISIM_REQUIRE(!finished_, "adjacency stream already finished");
  flushBuffer();
  util::writeU32(out_, crc_);
  out_.seekp(8);
  util::writeU64(out_, count_);
  out_.flush();
  CHISIM_CHECK(out_.good(), "adjacency write failed: " + path_.string());
  finished_ = true;
  return count_;
}

SymmetricAdjacency loadAdjacency(const std::filesystem::path& path) {
  const std::vector<AdjacencyTriplet> triplets = loadTriplets(path);
  SymmetricAdjacency adjacency(triplets.size());
  for (const AdjacencyTriplet& triplet : triplets) {
    adjacency.add(triplet.i, triplet.j, triplet.weight);
  }
  return adjacency;
}

}  // namespace chisimnet::sparse
