#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "chisimnet/table/event.hpp"
#include "chisimnet/table/event_table.hpp"

/// Per-place sparse collocation matrices (paper §IV).
///
/// For one place l and a time slice of t hours, the collocation matrix x is
/// a binary p×t matrix whose (i, h) entry is 1 when person i was at l during
/// hour h. Since only persons who visit l have nonzero rows, x is stored in
/// local CSR form over the visiting persons only: a sorted person list plus,
/// per person, a sorted list of hour indices relative to the slice start.

namespace chisimnet::sparse {

class CollocationMatrix {
 public:
  CollocationMatrix() = default;

  /// Builds the matrix for one place from that place's log events, clipped
  /// to the window [windowStart, windowEnd). Hours outside the window are
  /// dropped; duplicate (person, hour) presences collapse to one.
  CollocationMatrix(table::PlaceId place, std::span<const table::Event> events,
                    table::Hour windowStart, table::Hour windowEnd);

  table::PlaceId place() const noexcept { return place_; }

  /// Number of distinct persons with at least one presence (local rows).
  std::size_t personCount() const noexcept { return persons_.size(); }

  /// Number of nonzero entries (person-hours). This is the weight used for
  /// load balancing the adjacency stage (paper §IV.A.3).
  std::uint64_t nnz() const noexcept { return hours_.size(); }

  /// Global person id for local row `row`.
  table::PersonId personAt(std::size_t row) const { return persons_[row]; }

  /// Sorted hour indices (relative to windowStart) for local row `row`.
  std::span<const std::uint32_t> hoursAt(std::size_t row) const {
    return {hours_.data() + offsets_[row], hours_.data() + offsets_[row + 1]};
  }

  /// Width of the time slice in hours.
  std::uint32_t sliceHours() const noexcept { return sliceHours_; }

  /// Number of distinct slice hours with at least one person present.
  /// nnz() / occupiedHours() is the mean simultaneous occupancy, the basis
  /// of the occupancy-scaled partition weight
  /// (SynthesisConfig::occupancyWeight).
  std::uint32_t occupiedHours() const noexcept;

  /// True when person `row` was present during relative hour `hour`.
  bool present(std::size_t row, std::uint32_t hour) const noexcept;

  /// Approximate heap bytes held.
  std::size_t memoryBytes() const noexcept;

  /// Compact binary serialization (for shipping matrices between ranks in
  /// the message-passing synthesis backend, mirroring the paper's
  /// return-to-root / re-scatter data flow).
  std::vector<std::byte> toBytes() const;
  static CollocationMatrix fromBytes(std::span<const std::byte> bytes);

 private:
  table::PlaceId place_ = 0;
  std::uint32_t sliceHours_ = 0;
  std::vector<table::PersonId> persons_;   ///< sorted distinct visitors
  std::vector<std::uint64_t> offsets_;     ///< persons_.size()+1 into hours_
  std::vector<std::uint32_t> hours_;       ///< per-person sorted hour indices
};

/// Builds one collocation matrix per place appearing in `table`, clipped to
/// the window. `table` rows need not be sorted. Matrices with zero nnz are
/// omitted. Returned in ascending place-id order.
std::vector<CollocationMatrix> buildCollocationMatrices(
    const table::EventTable& table, table::Hour windowStart,
    table::Hour windowEnd);

/// Builds the collocation matrix for a single place from the rows listed in
/// a PlaceIndex group.
CollocationMatrix buildCollocationMatrix(const table::EventTable& table,
                                         const table::PlaceIndex& index,
                                         std::size_t group,
                                         table::Hour windowStart,
                                         table::Hour windowEnd);

}  // namespace chisimnet::sparse
