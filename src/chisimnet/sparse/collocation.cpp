#include "chisimnet/sparse/collocation.hpp"

#include <algorithm>

#include "chisimnet/util/error.hpp"

namespace chisimnet::sparse {

namespace {

struct Presence {
  table::PersonId person;
  std::uint32_t hour;

  friend auto operator<=>(const Presence&, const Presence&) = default;
};

/// Expands events at one place into deduplicated (person, relative hour)
/// presences clipped to the window.
std::vector<Presence> expandPresences(std::span<const table::Event> events,
                                      table::Hour windowStart,
                                      table::Hour windowEnd) {
  std::vector<Presence> presences;
  for (const table::Event& event : events) {
    const table::Hour from = std::max(event.start, windowStart);
    const table::Hour to = std::min(event.end, windowEnd);
    for (table::Hour hour = from; hour < to; ++hour) {
      presences.push_back(Presence{event.person, hour - windowStart});
    }
  }
  std::sort(presences.begin(), presences.end());
  presences.erase(std::unique(presences.begin(), presences.end()),
                  presences.end());
  return presences;
}

}  // namespace

CollocationMatrix::CollocationMatrix(table::PlaceId place,
                                     std::span<const table::Event> events,
                                     table::Hour windowStart,
                                     table::Hour windowEnd)
    : place_(place) {
  CHISIM_REQUIRE(windowStart <= windowEnd, "window must be non-empty or empty");
  sliceHours_ = windowEnd - windowStart;

  const std::vector<Presence> presences =
      expandPresences(events, windowStart, windowEnd);

  offsets_.push_back(0);
  hours_.reserve(presences.size());
  for (const Presence& presence : presences) {
    if (persons_.empty() || persons_.back() != presence.person) {
      persons_.push_back(presence.person);
      offsets_.push_back(hours_.size());
    }
    hours_.push_back(presence.hour);
    offsets_.back() = hours_.size();
  }
  if (persons_.empty()) {
    offsets_.assign(1, 0);
  }
}

std::uint32_t CollocationMatrix::occupiedHours() const noexcept {
  std::vector<bool> seen(sliceHours_, false);
  std::uint32_t count = 0;
  for (std::uint32_t hour : hours_) {
    if (!seen[hour]) {
      seen[hour] = true;
      ++count;
    }
  }
  return count;
}

bool CollocationMatrix::present(std::size_t row, std::uint32_t hour) const noexcept {
  const auto span = hoursAt(row);
  return std::binary_search(span.begin(), span.end(), hour);
}

std::vector<std::byte> CollocationMatrix::toBytes() const {
  // Layout: place u32, sliceHours u32, personCount u64, nnz u64,
  //         persons (u32 each), offsets (u64 each), hours (u32 each).
  std::vector<std::byte> bytes;
  bytes.reserve(24 + persons_.size() * 4 + offsets_.size() * 8 +
                hours_.size() * 4);
  const auto put32 = [&bytes](std::uint32_t value) {
    for (int shift = 0; shift < 32; shift += 8) {
      bytes.push_back(static_cast<std::byte>(value >> shift));
    }
  };
  const auto put64 = [&put32](std::uint64_t value) {
    put32(static_cast<std::uint32_t>(value));
    put32(static_cast<std::uint32_t>(value >> 32));
  };
  put32(place_);
  put32(sliceHours_);
  put64(persons_.size());
  put64(hours_.size());
  for (table::PersonId person : persons_) {
    put32(person);
  }
  for (std::uint64_t offset : offsets_) {
    put64(offset);
  }
  for (std::uint32_t hour : hours_) {
    put32(hour);
  }
  return bytes;
}

CollocationMatrix CollocationMatrix::fromBytes(std::span<const std::byte> bytes) {
  std::size_t cursor = 0;
  const auto take32 = [&bytes, &cursor]() {
    CHISIM_CHECK(cursor + 4 <= bytes.size(), "truncated collocation matrix");
    const std::uint32_t value =
        static_cast<std::uint32_t>(bytes[cursor]) |
        (static_cast<std::uint32_t>(bytes[cursor + 1]) << 8) |
        (static_cast<std::uint32_t>(bytes[cursor + 2]) << 16) |
        (static_cast<std::uint32_t>(bytes[cursor + 3]) << 24);
    cursor += 4;
    return value;
  };
  const auto take64 = [&take32]() {
    const std::uint64_t low = take32();
    const std::uint64_t high = take32();
    return low | (high << 32);
  };

  CollocationMatrix matrix;
  matrix.place_ = take32();
  matrix.sliceHours_ = take32();
  const std::uint64_t personCount = take64();
  const std::uint64_t nnz = take64();
  matrix.persons_.resize(personCount);
  for (table::PersonId& person : matrix.persons_) {
    person = take32();
  }
  matrix.offsets_.resize(personCount + 1);
  for (std::uint64_t& offset : matrix.offsets_) {
    offset = take64();
  }
  matrix.hours_.resize(nnz);
  for (std::uint32_t& hour : matrix.hours_) {
    hour = take32();
  }
  CHISIM_CHECK(cursor == bytes.size(), "trailing bytes in collocation matrix");
  CHISIM_CHECK(matrix.offsets_.front() == 0 && matrix.offsets_.back() == nnz,
               "corrupt collocation matrix offsets");
  return matrix;
}

std::size_t CollocationMatrix::memoryBytes() const noexcept {
  return persons_.size() * sizeof(table::PersonId) +
         offsets_.size() * sizeof(std::uint64_t) +
         hours_.size() * sizeof(std::uint32_t);
}

std::vector<CollocationMatrix> buildCollocationMatrices(
    const table::EventTable& table, table::Hour windowStart,
    table::Hour windowEnd) {
  const table::PlaceIndex index = table.buildPlaceIndex();
  std::vector<CollocationMatrix> matrices;
  matrices.reserve(index.placeIds.size());
  for (std::size_t group = 0; group < index.placeIds.size(); ++group) {
    CollocationMatrix matrix =
        buildCollocationMatrix(table, index, group, windowStart, windowEnd);
    if (matrix.nnz() > 0) {
      matrices.push_back(std::move(matrix));
    }
  }
  return matrices;
}

CollocationMatrix buildCollocationMatrix(const table::EventTable& table,
                                         const table::PlaceIndex& index,
                                         std::size_t group,
                                         table::Hour windowStart,
                                         table::Hour windowEnd) {
  CHISIM_REQUIRE(group < index.placeIds.size(), "group out of range");
  std::vector<table::Event> events;
  const auto rows = index.groupRows(group);
  events.reserve(rows.size());
  for (table::RowIndex rowIndex : rows) {
    events.push_back(table.row(rowIndex));
  }
  return CollocationMatrix(index.placeIds[group], events, windowStart, windowEnd);
}

}  // namespace chisimnet::sparse
