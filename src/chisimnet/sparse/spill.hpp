#pragma once

#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "chisimnet/sparse/adjacency.hpp"
#include "chisimnet/sparse/adjacency_io.hpp"
#include "chisimnet/sparse/pair_count_map.hpp"

/// Memory-bounded adjacency accumulation: disk-spilled sorted runs and the
/// row-range-sharded accumulator that produces them (paper-scale unlock —
/// the full 2.9 M-person Chicago week needs more accumulator memory than a
/// single box has, so the accumulator spills CRC-framed sorted runs and
/// stage 6 finishes with an external k-way merge, sparse/adjacency.hpp's
/// TripletMerger).
///
/// Spill-run container (CSPL1):
///   header  magic "CSPL" | version u32 | tripletCount u64 (patched last)
///   frames  [count u32][crc32 u32][count × 16-byte triplet rows]*
/// Runs are written to `<path>.tmp` and renamed into place when complete —
/// the same crash-safe tmp+rename idiom as the checkpoint manifest — so a
/// run file that exists under its real name is always whole. Each frame
/// carries its own CRC, so the reader streams through one bounded buffer
/// and still rejects a torn or bit-flipped frame with the file and byte
/// offset in the error.
///
/// Fault sites: "spill.write" fires in SpillRunWriter::finish() before the
/// rename (a kThrow models a crash mid-spill, leaving the .tmp orphan);
/// "spill.merge" fires when SpillingAccumulator compacts its live runs.

namespace chisimnet::sparse {

/// A completed on-disk sorted run.
struct SpillRunInfo {
  std::filesystem::path file;
  std::uint64_t triplets = 0;
  std::uint64_t bytes = 0;  ///< file size, for budget/IO accounting
  /// Packed-key range the run covers, when known. Writer-produced runs
  /// always know it; runs restored from a pre-range checkpoint manifest do
  /// not (hasKeyRange = false) and are treated as potentially straddling
  /// every shard boundary.
  bool hasKeyRange = false;
  std::uint64_t firstKey = 0;
  std::uint64_t lastKey = 0;

  /// The row-range shard this run is confined to, or -1 when the range is
  /// unknown or crosses a shard boundary (such a run must be split before
  /// a per-shard merge can own it).
  std::int64_t shardOf(std::uint32_t rowsPerShard) const noexcept {
    if (!hasKeyRange || triplets == 0) {
      return -1;
    }
    const std::uint32_t first =
        static_cast<std::uint32_t>(firstKey >> 32) / rowsPerShard;
    const std::uint32_t last =
        static_cast<std::uint32_t>(lastKey >> 32) / rowsPerShard;
    return first == last ? static_cast<std::int64_t>(first) : -1;
  }
};

/// Read-side prefetch policy for SpillRunReader during external merges.
enum class SpillReadahead : std::uint32_t {
  /// Synchronous single-frame reads (the pre-readahead behavior).
  kNone = 0,
  /// Double-buffered: a background thread decodes and CRC-checks the next
  /// frame while the merge drains the current one, so merge wall-time
  /// tracks disk bandwidth instead of single-frame latency.
  kDoubleBuffer = 1,
  /// kDoubleBuffer plus kernel IO hints on a side fd: POSIX_FADV_SEQUENTIAL
  /// at open and POSIX_FADV_WILLNEED ahead of each frame read (no-op on
  /// platforms without posix_fadvise). An O_DIRECT page-cache-bypass flavor
  /// is the designed next plug point if merge IO ever dominates here.
  kFadvise = 2,
};

/// Triplets per CRC frame (64 Ki rows = 1 MiB payload): the unit of both
/// the writer's buffering and the reader's resident window.
inline constexpr std::size_t kSpillFrameTriplets = std::size_t{1} << 16;

/// Streams a strictly key-ascending triplet run into a CSPL1 file.
class SpillRunWriter {
 public:
  explicit SpillRunWriter(std::filesystem::path path);
  ~SpillRunWriter();

  SpillRunWriter(const SpillRunWriter&) = delete;
  SpillRunWriter& operator=(const SpillRunWriter&) = delete;

  void append(const AdjacencyTriplet& triplet);
  void append(std::span<const AdjacencyTriplet> sorted);

  /// Flushes, patches the header count, and renames the .tmp into place.
  SpillRunInfo finish();

 private:
  void flushFrame();

  std::filesystem::path path_;
  std::filesystem::path tmp_;
  std::ofstream out_;
  std::vector<AdjacencyTriplet> frame_;
  std::uint64_t total_ = 0;
  std::uint64_t firstKey_ = 0;
  std::uint64_t lastKey_ = 0;
  bool any_ = false;
  bool finished_ = false;
};

/// Streams a CSPL1 run back, one CRC-checked frame resident at a time.
/// With a readahead mode, a background prefetcher decodes the *next* frame
/// into a standby buffer while the consumer drains the current one (double
/// buffering: exactly one frame in flight), optionally backed by
/// posix_fadvise hints — so a k-way merge's per-run stalls overlap instead
/// of serializing.
class SpillRunReader final : public TripletSource {
 public:
  explicit SpillRunReader(std::filesystem::path path,
                          SpillReadahead readahead = SpillReadahead::kNone);
  ~SpillRunReader() override;

  bool next(AdjacencyTriplet& out) override;

  /// Total triplets the header declares.
  std::uint64_t tripletCount() const noexcept { return total_; }
  std::uint64_t sizeHint() const noexcept override { return total_; }

 private:
  /// Reads, CRC-checks and decodes one frame into `dest`; false on a clean
  /// end of file (after validating the header count). Called only by the
  /// owning read context: the consumer in kNone mode, the prefetcher
  /// thread otherwise.
  bool decodeFrame(std::vector<AdjacencyTriplet>& dest);
  void prefetchLoop();
  [[noreturn]] void fail(const std::string& what, std::uint64_t offset) const;

  std::filesystem::path path_;
  std::ifstream in_;
  std::vector<AdjacencyTriplet> frame_;
  std::size_t cursor_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t decoded_ = 0;
  bool exhausted_ = false;

  // Double-buffer machinery (readahead modes only).
  SpillReadahead readahead_ = SpillReadahead::kNone;
  std::thread prefetcher_;
  std::mutex mutex_;
  std::condition_variable frameReady_;
  std::condition_variable frameTaken_;
  std::vector<AdjacencyTriplet> staged_;
  bool stagedFull_ = false;
  bool producerDone_ = false;
  bool stop_ = false;
  std::exception_ptr producerError_;
  int hintFd_ = -1;
};

/// Spill activity counters, folded into SynthesisReport.
struct SpillStats {
  std::uint64_t runsWritten = 0;      ///< run files produced (incl. adopted)
  std::uint64_t spilledTriplets = 0;  ///< triplet rows that went to disk
  std::uint64_t spilledBytes = 0;     ///< run file bytes written
  std::uint64_t compactions = 0;      ///< live-run merges (spill.merge)
  /// Runs rewritten at shard boundaries because they straddled one (or had
  /// no recorded key range) when a per-shard merge plan was built.
  std::uint64_t runsSplit = 0;
  /// Max observed resident accumulator bytes: shard tables plus the sort
  /// transient during a spill. This is what the budget enforces
  /// (peakResidentBytes <= budgetBytes).
  std::uint64_t peakResidentBytes = 0;
  /// Max concurrent stage-5 worker bytes the caller reported via
  /// noteWorkerPeak(): a pessimistic sum of per-worker historical peaks,
  /// bounded by each worker's flush threshold plus the largest single
  /// place's pair block (per-place kernels cannot flush mid-place).
  std::uint64_t peakWorkerBytes = 0;

  void merge(const SpillStats& other) noexcept {
    runsWritten += other.runsWritten;
    spilledTriplets += other.spilledTriplets;
    spilledBytes += other.spilledBytes;
    compactions += other.compactions;
    runsSplit += other.runsSplit;
    peakResidentBytes = peakResidentBytes > other.peakResidentBytes
                            ? peakResidentBytes
                            : other.peakResidentBytes;
    peakWorkerBytes = peakWorkerBytes > other.peakWorkerBytes
                          ? peakWorkerBytes
                          : other.peakWorkerBytes;
  }
};

/// The memory-bounded cross-batch accumulator: pair counts are sharded by
/// global row range (shard = lowId / rowsPerShard), resident bytes are
/// tracked against the budget, and when the next insert would grow a shard
/// past the spill threshold every shard is sorted and spilled as one run
/// per shard. Spilled runs cover disjoint key ranges within one flush and
/// overlapping ranges across flushes; the final merge (TripletMerger over
/// SpillRunReaders) sums duplicates, so the drained stream equals the
/// unbounded accumulator's sorted triplets bit for bit.
class SpillingAccumulator {
 public:
  struct Options {
    std::filesystem::path dir;  ///< run-file directory (required)
    /// Total budget this accumulator enforces; resident bytes are kept
    /// under budgetBytes/2 so the spill-sort transient fits in the other
    /// half. 0 = never auto-spill (spillAll() on demand only). Enforcement
    /// granularity is one insert: a single shard-table doubling can
    /// overshoot the threshold by that shard's size, which the floor of
    /// kMinSpillThresholdBytes makes irrelevant for budgets ≥ a few MiB.
    std::uint64_t budgetBytes = 0;
    /// Global rows (low person ids) per shard.
    std::uint32_t rowsPerShard = std::uint32_t{1} << 18;
    /// Compact (k-way merge all live runs into one) above this many runs.
    std::size_t maxLiveRuns = 32;
    /// Run files are named <runPrefix><n>.spl; numbering resumes above any
    /// existing files with this prefix in dir.
    std::string runPrefix = "run.";
    /// true: superseded compaction inputs are retired (takeRetiredFiles)
    /// instead of deleted, so a checkpoint manifest that still references
    /// them stays valid until the next manifest rename.
    bool deferDeletes = false;
  };

  explicit SpillingAccumulator(Options options);

  SpillingAccumulator(const SpillingAccumulator&) = delete;
  SpillingAccumulator& operator=(const SpillingAccumulator&) = delete;

  void add(std::uint32_t i, std::uint32_t j, std::uint64_t weight);
  void addSortedRun(std::span<const AdjacencyTriplet> run);
  /// Takes ownership of an existing run file (a stage-5 worker spill) by
  /// renaming it into this accumulator's own <runPrefix><n>.spl namespace.
  /// The rename matters for checkpointing: worker file names restart from
  /// zero after a resume (batch counters, command tokens), so a
  /// manifest-referenced run left under its worker name would get
  /// overwritten by the next life's identically-named spill.
  void adoptRunFile(const SpillRunInfo& info);
  /// Re-registers a checkpointed run under its existing name. Unlike
  /// adoptRunFile this never renames: the current manifest references the
  /// file by that name, and a crash before the next manifest write must
  /// leave the old one resolvable.
  void restoreRunFile(const SpillRunInfo& info);

  void addKernelStats(const AdjacencyKernelStats& stats) noexcept {
    kernelStats_.merge(stats);
  }
  const AdjacencyKernelStats& kernelStats() const noexcept {
    return kernelStats_;
  }

  /// Records that `extraBytes` lived beside the resident shards (e.g. the
  /// sum of concurrent stage-5 worker peaks) for peak accounting. Worker
  /// bytes are tracked as stats().peakWorkerBytes, separate from the
  /// budget-enforced peakResidentBytes.
  void noteWorkerPeak(std::uint64_t extraBytes) noexcept;

  /// Spills every resident shard to disk (one sorted run per shard).
  /// Afterwards the full accumulated state is the live run files — what a
  /// checkpoint persists and what finishMerge() streams.
  void spillAll();

  /// Spills residual shards, then returns the external-memory k-way merge
  /// over all live runs: the final sorted, duplicate-summed stream. The
  /// accumulator must not be modified while the stream is being drained.
  std::unique_ptr<TripletSource> finishMerge();

  /// One row-range shard's slice of the merge plan: every live run whose
  /// keys fall in that shard. Groups come back in ascending shard order,
  /// so concatenating each group's merged stream reproduces the global
  /// sorted order.
  struct ShardRunGroup {
    std::uint32_t shard = 0;
    std::vector<SpillRunInfo> runs;
  };

  /// Spills residual shards, splits any live run that straddles a shard
  /// boundary (or whose key range is unknown — e.g. restored from an older
  /// manifest) into shard-pure runs, and returns the live set grouped per
  /// shard in ascending shard order. Afterwards liveRuns() reflects the
  /// split set, so a checkpoint manifest written mid-merge references
  /// exactly the files an owner will read; superseded originals are
  /// retired under deferDeletes as usual. Each group can then be merged
  /// independently (mergeShardRuns) by its owner.
  std::vector<ShardRunGroup> buildShardMergePlan();

  const std::vector<SpillRunInfo>& liveRuns() const noexcept { return runs_; }
  /// Compaction inputs superseded since the last call (deferDeletes mode);
  /// the caller deletes them once its manifest no longer references them.
  std::vector<std::filesystem::path> takeRetiredFiles();

  std::uint64_t residentBytes() const noexcept { return residentBytes_; }
  const SpillStats& stats() const noexcept { return stats_; }

 private:
  void spillShard(std::uint32_t shard, PairCountMap& pairs);
  void maybeCompact();
  /// Rewrites one run as shard-pure runs (appended to `out`); retires or
  /// deletes the original.
  void splitRun(const SpillRunInfo& run, std::vector<SpillRunInfo>& out);
  /// Deletes a superseded run file, or parks it in retired_ under
  /// deferDeletes.
  void retireRunFile(std::filesystem::path file);
  std::filesystem::path nextRunPath();
  /// Folds `extraBytes` beside the current resident shards into the
  /// budget-enforced peak (the spill-sort transient).
  void notePeak(std::uint64_t extraBytes) noexcept;

  Options options_;
  std::uint64_t spillThreshold_ = 0;  ///< 0 = unbounded
  std::map<std::uint32_t, PairCountMap> shards_;
  std::uint64_t residentBytes_ = 0;
  std::vector<SpillRunInfo> runs_;
  std::vector<std::filesystem::path> retired_;
  std::uint64_t nextRunIndex_ = 0;
  SpillStats stats_;
  AdjacencyKernelStats kernelStats_;
};

/// Stage-5 worker-local sum that bounds its own footprint: collocation
/// contributions accumulate into an in-memory map, and whenever the map
/// outgrows `flushThresholdBytes` it is sorted and flushed as a spill run.
/// Both backends' workers use this under a memory budget, so per-batch
/// stage-5 memory is capped at roughly the threshold per worker.
class SpillingSum {
 public:
  /// flushThresholdBytes 0 = never flush (plain in-memory sum).
  /// splitRows > 0 routes spills to their reduce-shard owners at flush
  /// time: each flush is partitioned at row-range boundaries (shard =
  /// low id / splitRows) and written as one shard-pure run per touched
  /// shard, so the sink can hand every run to its owner without a
  /// split-and-rewrite pass before the parallel merge.
  SpillingSum(std::filesystem::path dir, std::string filePrefix,
              std::uint64_t flushThresholdBytes, std::uint32_t splitRows = 0);

  void addCollocation(const CollocationMatrix& matrix, AdjacencyMethod method);

  const AdjacencyKernelStats& kernelStats() const noexcept;
  /// Max in-memory bytes observed (map plus flush-sort transient).
  std::uint64_t peakBytes() const noexcept { return peakBytes_; }
  std::uint64_t flushes() const noexcept { return flushes_; }

  const std::vector<SpillRunInfo>& runs() const noexcept { return runs_; }
  /// The not-yet-flushed remainder as a sorted run; resets the sum.
  std::vector<AdjacencyTriplet> drainInMemory();
  /// Flushes the remainder to disk too, leaving only run files.
  void flushAll();

 private:
  void flush();

  std::filesystem::path dir_;
  std::string filePrefix_;
  std::uint64_t flushThreshold_ = 0;
  std::uint32_t splitRows_ = 0;
  SymmetricAdjacency sum_;
  std::vector<SpillRunInfo> runs_;
  std::uint64_t nextRunIndex_ = 0;
  std::uint64_t peakBytes_ = 0;
  std::uint64_t flushes_ = 0;
};

/// One finished per-shard merge: the shard's duplicate-summed sorted
/// stream as a raw CADJ payload segment on disk (TripletSegmentWriter
/// format), plus the timing the shard-scaling bench and report aggregate.
struct ShardSegment {
  std::uint32_t shard = 0;
  std::filesystem::path file;
  std::uint64_t triplets = 0;
  std::uint64_t bytes = 0;
  std::uint32_t crc = 0;
  /// Thread-CPU seconds of this shard's merge. Per-owner sums of these
  /// model the parallel critical path on one-core hosts, the same way
  /// runtime::TreeReduceStats does for the stage-6 reduce tree.
  double mergeSeconds = 0.0;
  unsigned owner = 0;  ///< worker index / rank that ran the merge
};

/// Runs one shard's independent loser-tree merge over its (shard-pure)
/// runs, streaming the result into `segmentFile` (tmp+rename). This is
/// the unit of work a shard owner — worker thread or rank — executes; the
/// final CADJ is the byte-identical concatenation of the resulting
/// segments in ascending shard order.
ShardSegment mergeShardRuns(std::uint32_t shard,
                            std::span<const SpillRunInfo> runs,
                            const std::filesystem::path& segmentFile,
                            SpillReadahead readahead);

}  // namespace chisimnet::sparse
