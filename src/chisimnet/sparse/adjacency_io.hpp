#pragma once

#include <filesystem>

#include "chisimnet/sparse/adjacency.hpp"

/// Persistence for the synthesized sparse triangular adjacency matrix.
///
/// The paper synthesizes the network once on the cluster, then loads the
/// resulting ~10 GB sparse matrix on a workstation for analysis and
/// visualization (§V.A). CADJ1 is a compact binary container for the sorted
/// upper-triangular triplets: header (magic, version, edge count), payload
/// of (i, j, weight) rows with u32 ids and u64 weights, and a CRC32 footer
/// over the payload so a truncated transfer is detected at load.

namespace chisimnet::sparse {

/// Writes the adjacency as sorted triplets. Overwrites `path`.
void saveAdjacency(const SymmetricAdjacency& adjacency,
                   const std::filesystem::path& path);

/// Writes pre-sorted triplets directly (avoids re-extracting them when the
/// caller already has the sorted form).
void saveTriplets(std::span<const AdjacencyTriplet> triplets,
                  const std::filesystem::path& path);

/// Loads triplets; validates magic, version and CRC.
std::vector<AdjacencyTriplet> loadTriplets(const std::filesystem::path& path);

/// Loads into an accumulator (e.g. to sum stored partial matrices).
SymmetricAdjacency loadAdjacency(const std::filesystem::path& path);

}  // namespace chisimnet::sparse
