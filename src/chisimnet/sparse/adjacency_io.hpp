#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <vector>

#include "chisimnet/sparse/adjacency.hpp"

/// Persistence for the synthesized sparse triangular adjacency matrix.
///
/// The paper synthesizes the network once on the cluster, then loads the
/// resulting ~10 GB sparse matrix on a workstation for analysis and
/// visualization (§V.A). CADJ1 is a compact binary container for the sorted
/// upper-triangular triplets: header (magic, version, edge count), payload
/// of (i, j, weight) rows with u32 ids and u64 weights, and a CRC32 footer
/// over the payload so a truncated transfer is detected at load.

namespace chisimnet::sparse {

/// Writes the adjacency as sorted triplets. Overwrites `path`.
void saveAdjacency(const SymmetricAdjacency& adjacency,
                   const std::filesystem::path& path);

/// Writes pre-sorted triplets directly (avoids re-extracting them when the
/// caller already has the sorted form).
void saveTriplets(std::span<const AdjacencyTriplet> triplets,
                  const std::filesystem::path& path);

/// Loads triplets; validates magic, version and CRC.
std::vector<AdjacencyTriplet> loadTriplets(const std::filesystem::path& path);

/// Loads into an accumulator (e.g. to sum stored partial matrices).
SymmetricAdjacency loadAdjacency(const std::filesystem::path& path);

/// Streams triplets into a CADJ1 file without materializing them: the
/// header count is patched and the payload CRC chained incrementally at
/// finish(), producing bytes identical to saveTriplets() on the same
/// sequence. This is how a memory-budgeted synthesis writes its final
/// external-merge stream straight to disk.
class StreamingTripletWriter {
 public:
  explicit StreamingTripletWriter(const std::filesystem::path& path);

  /// Rows must arrive upper-triangular (i < j) and in the final order.
  void append(const AdjacencyTriplet& triplet);

  /// Writes the CRC footer, patches the header count; returns the count.
  std::uint64_t finish();

 private:
  void flushBuffer();

  std::filesystem::path path_;
  std::ofstream out_;
  std::vector<std::byte> buffer_;
  std::uint32_t crc_ = 0;
  std::uint64_t count_ = 0;
  bool finished_ = false;
};

}  // namespace chisimnet::sparse
