#pragma once

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <vector>

#include "chisimnet/sparse/adjacency.hpp"

/// Persistence for the synthesized sparse triangular adjacency matrix.
///
/// The paper synthesizes the network once on the cluster, then loads the
/// resulting ~10 GB sparse matrix on a workstation for analysis and
/// visualization (§V.A). CADJ1 is a compact binary container for the sorted
/// upper-triangular triplets: header (magic, version, edge count), payload
/// of (i, j, weight) rows with u32 ids and u64 weights, and a CRC32 footer
/// over the payload so a truncated transfer is detected at load.

namespace chisimnet::sparse {

/// Writes the adjacency as sorted triplets. Overwrites `path`.
void saveAdjacency(const SymmetricAdjacency& adjacency,
                   const std::filesystem::path& path);

/// Writes pre-sorted triplets directly (avoids re-extracting them when the
/// caller already has the sorted form).
void saveTriplets(std::span<const AdjacencyTriplet> triplets,
                  const std::filesystem::path& path);

/// Loads triplets; validates magic, version and CRC.
std::vector<AdjacencyTriplet> loadTriplets(const std::filesystem::path& path);

/// Loads into an accumulator (e.g. to sum stored partial matrices).
SymmetricAdjacency loadAdjacency(const std::filesystem::path& path);

/// Identity of a finished CADJ payload segment: a headerless file of
/// LE-encoded (i, j, weight) rows covering one sorted key range, produced
/// by a per-shard external merge and later concatenated into the final
/// CADJ via StreamingTripletWriter::appendSegmentFile.
struct TripletSegmentInfo {
  std::uint64_t triplets = 0;
  std::uint64_t bytes = 0;  ///< file size = 16 × triplets
  std::uint32_t crc = 0;    ///< crc32 over the segment's bytes
};

/// Streams sorted triplets into a raw payload-segment file (tmp+rename, so
/// a segment that exists under its real name is always whole). The byte
/// encoding is exactly StreamingTripletWriter's payload encoding, which is
/// what makes a shard-ordered concatenation of segments reproduce the
/// serial writer's payload bit for bit.
class TripletSegmentWriter {
 public:
  explicit TripletSegmentWriter(std::filesystem::path path);
  ~TripletSegmentWriter();

  TripletSegmentWriter(const TripletSegmentWriter&) = delete;
  TripletSegmentWriter& operator=(const TripletSegmentWriter&) = delete;

  /// Rows must arrive upper-triangular (i < j) and in final sorted order.
  void append(const AdjacencyTriplet& triplet);

  /// Flushes and renames the .tmp into place.
  TripletSegmentInfo finish();

 private:
  void flushBuffer();

  std::filesystem::path path_;
  std::filesystem::path tmp_;
  std::ofstream out_;
  std::vector<std::byte> buffer_;
  std::uint32_t crc_ = 0;
  std::uint64_t count_ = 0;
  std::uint64_t bytes_ = 0;
  bool finished_ = false;
};

/// Streams triplets into a CADJ1 file without materializing them: the
/// header count is patched and the payload CRC chained incrementally at
/// finish(), producing bytes identical to saveTriplets() on the same
/// sequence. This is how a memory-budgeted synthesis writes its final
/// external-merge stream straight to disk.
class StreamingTripletWriter {
 public:
  explicit StreamingTripletWriter(const std::filesystem::path& path);

  /// Rows must arrive upper-triangular (i < j) and in the final order.
  void append(const AdjacencyTriplet& triplet);

  /// Splices a finished payload segment (TripletSegmentWriter output) into
  /// the stream by raw byte copy: no decode, no re-encode. The chained
  /// payload CRC composes across the copy, and the copied bytes are
  /// re-CRCed against `info.crc` so a segment corrupted at rest (or a
  /// stale resume artifact) fails loudly instead of poisoning the output.
  /// Segments must be appended in ascending key order relative to every
  /// other append.
  void appendSegmentFile(const std::filesystem::path& segment,
                         const TripletSegmentInfo& info);

  /// Writes the CRC footer, patches the header count; returns the count.
  std::uint64_t finish();

 private:
  void flushBuffer();

  std::filesystem::path path_;
  std::ofstream out_;
  std::vector<std::byte> buffer_;
  std::uint32_t crc_ = 0;
  std::uint64_t count_ = 0;
  bool finished_ = false;
};

}  // namespace chisimnet::sparse
