#include "chisimnet/sparse/pair_count_map.hpp"

#include <bit>

namespace chisimnet::sparse {

namespace {

std::size_t nextPowerOfTwo(std::size_t value) {
  return std::bit_ceil(value < 16 ? std::size_t{16} : value);
}

}  // namespace

PairCountMap::PairCountMap(std::size_t expectedEntries) {
  const std::size_t capacity = nextPowerOfTwo(expectedEntries * 2);
  slots_.assign(capacity, Slot{});
  mask_ = capacity - 1;
}

std::uint64_t PairCountMap::mixHash(std::uint64_t key) noexcept {
  // splitmix64 finalizer: full-avalanche mix of the packed pair.
  key ^= key >> 30;
  key *= 0xbf58476d1ce4e5b9ULL;
  key ^= key >> 27;
  key *= 0x94d049bb133111ebULL;
  key ^= key >> 31;
  return key;
}

void PairCountMap::add(std::uint64_t key, std::uint64_t weight) {
  CHISIM_REQUIRE(key != kEmpty, "key 2^64-1 is reserved");
  if ((size_ + 1) * 10 > slots_.size() * 7) {  // load factor 0.7
    rehash(slots_.size() * 2);
  }
  std::size_t index = mixHash(key) & mask_;
  while (true) {
    Slot& slot = slots_[index];
    if (slot.key == key) {
      slot.count += weight;
      return;
    }
    if (slot.key == kEmpty) {
      slot.key = key;
      slot.count = weight;
      ++size_;
      return;
    }
    index = (index + 1) & mask_;
  }
}

std::uint64_t PairCountMap::get(std::uint64_t key) const noexcept {
  std::size_t index = mixHash(key) & mask_;
  while (true) {
    const Slot& slot = slots_[index];
    if (slot.key == key) {
      return slot.count;
    }
    if (slot.key == kEmpty) {
      return 0;
    }
    index = (index + 1) & mask_;
  }
}

void PairCountMap::reserve(std::size_t expectedEntries) {
  // Invert the load-factor-0.7 growth trigger used by add().
  const std::size_t needed =
      nextPowerOfTwo((expectedEntries * 10 + 6) / 7);
  if (needed > slots_.size()) {
    rehash(needed);
  }
}

void PairCountMap::merge(const PairCountMap& other) {
  reserve(size_ + other.size_);
  for (const Slot& slot : other.slots_) {
    if (slot.key != kEmpty) {
      add(slot.key, slot.count);
    }
  }
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> PairCountMap::entries()
    const {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> result;
  result.reserve(size_);
  for (const Slot& slot : slots_) {
    if (slot.key != kEmpty) {
      result.emplace_back(slot.key, slot.count);
    }
  }
  return result;
}

void PairCountMap::rehash(std::size_t newCapacity) {
  std::vector<Slot> old = std::move(slots_);
  slots_.assign(newCapacity, Slot{});
  mask_ = newCapacity - 1;
  size_ = 0;
  for (const Slot& slot : old) {
    if (slot.key != kEmpty) {
      add(slot.key, slot.count);
    }
  }
}

}  // namespace chisimnet::sparse
