#include "chisimnet/sparse/adjacency.hpp"

#include <algorithm>

#include "chisimnet/util/error.hpp"

namespace chisimnet::sparse {

void SymmetricAdjacency::add(std::uint32_t i, std::uint32_t j,
                             std::uint64_t weight) {
  CHISIM_REQUIRE(i != j, "self-collocation is not an edge");
  if (weight == 0) {
    return;
  }
  pairs_.add(packPair(i, j), weight);
}

std::uint64_t SymmetricAdjacency::weight(std::uint32_t i,
                                         std::uint32_t j) const noexcept {
  if (i == j) {
    return 0;
  }
  return pairs_.get(packPair(i, j));
}

namespace {

/// SpGEMM path: transpose the per-person CSR into per-hour person lists,
/// then accumulate one outer product per time column.
void addViaSpGemm(const CollocationMatrix& matrix, PairCountMap& pairs) {
  const std::size_t personCount = matrix.personCount();
  if (personCount < 2) {
    return;
  }
  // Column (hour) -> local rows present. Counting sort keeps this linear in
  // nnz.
  std::vector<std::uint64_t> columnSizes(matrix.sliceHours() + 1, 0);
  for (std::size_t row = 0; row < personCount; ++row) {
    for (std::uint32_t hour : matrix.hoursAt(row)) {
      ++columnSizes[hour + 1];
    }
  }
  for (std::size_t h = 1; h < columnSizes.size(); ++h) {
    columnSizes[h] += columnSizes[h - 1];
  }
  std::vector<std::uint32_t> columnRows(matrix.nnz());
  std::vector<std::uint64_t> cursor(columnSizes.begin(), columnSizes.end() - 1);
  for (std::size_t row = 0; row < personCount; ++row) {
    for (std::uint32_t hour : matrix.hoursAt(row)) {
      columnRows[cursor[hour]++] = static_cast<std::uint32_t>(row);
    }
  }

  for (std::uint32_t hour = 0; hour < matrix.sliceHours(); ++hour) {
    const std::uint64_t begin = columnSizes[hour];
    const std::uint64_t end = columnSizes[hour + 1];
    for (std::uint64_t a = begin; a < end; ++a) {
      const table::PersonId personA = matrix.personAt(columnRows[a]);
      for (std::uint64_t b = a + 1; b < end; ++b) {
        const table::PersonId personB = matrix.personAt(columnRows[b]);
        pairs.add(packPair(personA, personB), 1);
      }
    }
  }
}

std::uint64_t sortedIntersectionSize(std::span<const std::uint32_t> a,
                                     std::span<const std::uint32_t> b) noexcept {
  std::uint64_t count = 0;
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < a.size() && ib < b.size()) {
    if (a[ia] < b[ib]) {
      ++ia;
    } else if (b[ib] < a[ia]) {
      ++ib;
    } else {
      ++count;
      ++ia;
      ++ib;
    }
  }
  return count;
}

/// Pairwise path: weight(i,j) = |hours_i ∩ hours_j| for each visitor pair.
void addViaIntersection(const CollocationMatrix& matrix, PairCountMap& pairs) {
  const std::size_t personCount = matrix.personCount();
  for (std::size_t a = 0; a < personCount; ++a) {
    const auto hoursA = matrix.hoursAt(a);
    for (std::size_t b = a + 1; b < personCount; ++b) {
      const std::uint64_t shared =
          sortedIntersectionSize(hoursA, matrix.hoursAt(b));
      if (shared > 0) {
        pairs.add(packPair(matrix.personAt(a), matrix.personAt(b)), shared);
      }
    }
  }
}

}  // namespace

void SymmetricAdjacency::addCollocation(const CollocationMatrix& matrix,
                                        AdjacencyMethod method) {
  switch (method) {
    case AdjacencyMethod::kSpGemm:
      addViaSpGemm(matrix, pairs_);
      return;
    case AdjacencyMethod::kIntervalIntersection:
      addViaIntersection(matrix, pairs_);
      return;
  }
  CHISIM_CHECK(false, "unknown adjacency method");
}

std::vector<AdjacencyTriplet> SymmetricAdjacency::toTriplets() const {
  std::vector<AdjacencyTriplet> triplets;
  triplets.reserve(pairs_.size());
  for (const auto& [key, count] : pairs_.entries()) {
    triplets.push_back(AdjacencyTriplet{pairLow(key), pairHigh(key), count});
  }
  std::sort(triplets.begin(), triplets.end());
  return triplets;
}

SymmetricAdjacency adjacencyFromCollocations(
    std::span<const CollocationMatrix> matrices, AdjacencyMethod method) {
  std::uint64_t expected = 0;
  for (const CollocationMatrix& matrix : matrices) {
    expected += matrix.nnz();
  }
  SymmetricAdjacency adjacency(static_cast<std::size_t>(expected));
  for (const CollocationMatrix& matrix : matrices) {
    adjacency.addCollocation(matrix, method);
  }
  return adjacency;
}

}  // namespace chisimnet::sparse
