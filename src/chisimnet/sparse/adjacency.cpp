#include "chisimnet/sparse/adjacency.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "chisimnet/util/error.hpp"

namespace chisimnet::sparse {

void SymmetricAdjacency::add(std::uint32_t i, std::uint32_t j,
                             std::uint64_t weight) {
  CHISIM_REQUIRE(i != j, "self-collocation is not an edge");
  if (weight == 0) {
    return;
  }
  pairs_.add(packPair(i, j), weight);
}

std::uint64_t SymmetricAdjacency::weight(std::uint32_t i,
                                         std::uint32_t j) const noexcept {
  if (i == j) {
    return 0;
  }
  return pairs_.get(packPair(i, j));
}

namespace {

/// Counting-sort transpose of the per-person CSR into per-hour row lists.
/// Rows within a column come out ascending (rows are visited in order),
/// which the local-coordinate kernel relies on to keep pairs (a,b) with
/// a < b without re-sorting.
struct ColumnIndex {
  std::vector<std::uint64_t> offsets;  ///< sliceHours+1 prefix sums
  std::vector<std::uint32_t> rows;     ///< local rows, ascending per column
  std::uint64_t pairHours = 0;         ///< Σ_h c_h(c_h-1)/2, exact
};

ColumnIndex buildColumnIndex(const CollocationMatrix& matrix) {
  ColumnIndex index;
  const std::size_t personCount = matrix.personCount();
  index.offsets.assign(matrix.sliceHours() + 1, 0);
  for (std::size_t row = 0; row < personCount; ++row) {
    for (std::uint32_t hour : matrix.hoursAt(row)) {
      ++index.offsets[hour + 1];
    }
  }
  for (std::size_t h = 1; h < index.offsets.size(); ++h) {
    const std::uint64_t columnSize = index.offsets[h];
    index.pairHours += columnSize * (columnSize - 1) / 2;
    index.offsets[h] += index.offsets[h - 1];
  }
  index.rows.resize(matrix.nnz());
  std::vector<std::uint64_t> cursor(index.offsets.begin(),
                                    index.offsets.end() - 1);
  for (std::size_t row = 0; row < personCount; ++row) {
    for (std::uint32_t hour : matrix.hoursAt(row)) {
      index.rows[cursor[hour]++] = static_cast<std::uint32_t>(row);
    }
  }
  return index;
}

/// SpGEMM path: one global hash insert per pair-hour.
void addViaSpGemm(const CollocationMatrix& matrix, PairCountMap& pairs) {
  const std::size_t personCount = matrix.personCount();
  if (personCount < 2) {
    return;
  }
  const ColumnIndex index = buildColumnIndex(matrix);
  for (std::uint32_t hour = 0; hour < matrix.sliceHours(); ++hour) {
    const std::uint64_t begin = index.offsets[hour];
    const std::uint64_t end = index.offsets[hour + 1];
    for (std::uint64_t a = begin; a < end; ++a) {
      const table::PersonId personA = matrix.personAt(index.rows[a]);
      for (std::uint64_t b = a + 1; b < end; ++b) {
        const table::PersonId personB = matrix.personAt(index.rows[b]);
        pairs.add(packPair(personA, personB), 1);
      }
    }
  }
}

// Dense/hash crossover for the local-coordinate kernel. The flat triangular
// array is used only when it fits the thread-local scratch buffer AND the
// emit scan over every slot is bounded by a small multiple of the update
// work actually done (pairSlots can dwarf pairHours at short slices).
// The choice is a pure function of the matrix, so results stay
// deterministic across partitions, workers and backends.
constexpr std::uint64_t kDenseMaxPairs = std::uint64_t{1} << 22;
constexpr std::uint64_t kDenseScanFactor = 8;
constexpr std::size_t kLocalHashMaxReserve = std::size_t{1} << 20;

bool useDenseLocalPath(std::uint64_t pairSlots,
                       std::uint64_t pairHours) noexcept {
  return pairSlots <= kDenseMaxPairs &&
         pairSlots <= kDenseScanFactor * pairHours;
}

/// Local-coordinate path: accumulate this place's pairs keyed by local row
/// indices, then emit each distinct pair into the global map exactly once.
/// The inner loop becomes an array increment (dense) or a probe of a
/// cache-resident local table (hash) instead of a global hash insert per
/// pair-hour.
void addViaLocalAccumulate(const CollocationMatrix& matrix,
                           PairCountMap& pairs, AdjacencyKernelStats& stats) {
  const std::uint64_t p = matrix.personCount();
  if (p < 2) {
    return;
  }
  const ColumnIndex index = buildColumnIndex(matrix);
  if (index.pairHours == 0) {
    return;
  }
  stats.pairHourUpdates += index.pairHours;
  const std::uint64_t pairSlots = p * (p - 1) / 2;
  if (useDenseLocalPath(pairSlots, index.pairHours)) {
    ++stats.densePlaces;
    // Scratch persists across places; invariant: all-zero outside this
    // scope (the emit loop clears every slot it touched, and assign()
    // zero-fills on growth).
    thread_local std::vector<std::uint32_t> scratch;
    if (scratch.size() < pairSlots) {
      scratch.assign(static_cast<std::size_t>(pairSlots), 0);
    }
    for (std::uint32_t hour = 0; hour < matrix.sliceHours(); ++hour) {
      const std::uint64_t begin = index.offsets[hour];
      const std::uint64_t end = index.offsets[hour + 1];
      for (std::uint64_t a = begin; a < end; ++a) {
        const std::uint64_t ra = index.rows[a];
        // Upper-triangular flattening: slot(ra,rb) = rowBase + rb for
        // ra < rb, with rows ascending within the column. Counts cannot
        // overflow uint32: each hour contributes at most 1 and the slice
        // hour count is itself a uint32.
        const std::uint64_t rowBase = ra * (2 * p - ra - 1) / 2 - ra - 1;
        for (std::uint64_t b = a + 1; b < end; ++b) {
          ++scratch[static_cast<std::size_t>(rowBase + index.rows[b])];
        }
      }
    }
    for (std::uint64_t ra = 0; ra + 1 < p; ++ra) {
      const std::uint64_t rowBase = ra * (2 * p - ra - 1) / 2 - ra - 1;
      const table::PersonId personA =
          matrix.personAt(static_cast<std::size_t>(ra));
      for (std::uint64_t rb = ra + 1; rb < p; ++rb) {
        std::uint32_t& slot = scratch[static_cast<std::size_t>(rowBase + rb)];
        if (slot != 0) {
          pairs.add(packPair(personA,
                             matrix.personAt(static_cast<std::size_t>(rb))),
                    slot);
          slot = 0;
          ++stats.globalEmits;
        }
      }
    }
  } else {
    ++stats.hashPlaces;
    PairCountMap local(static_cast<std::size_t>(
        std::min({index.pairHours, pairSlots,
                  static_cast<std::uint64_t>(kLocalHashMaxReserve)})));
    for (std::uint32_t hour = 0; hour < matrix.sliceHours(); ++hour) {
      const std::uint64_t begin = index.offsets[hour];
      const std::uint64_t end = index.offsets[hour + 1];
      for (std::uint64_t a = begin; a < end; ++a) {
        const std::uint64_t ra = index.rows[a];
        for (std::uint64_t b = a + 1; b < end; ++b) {
          // ra < rows[b] within a column, so the key is already canonical.
          local.add((ra << 32) | index.rows[b], 1);
        }
      }
    }
    for (const auto& [key, count] : local.entries()) {
      pairs.add(packPair(matrix.personAt(pairLow(key)),
                         matrix.personAt(pairHigh(key))),
                count);
    }
    stats.globalEmits += local.size();
  }
}

std::uint64_t sortedIntersectionSize(std::span<const std::uint32_t> a,
                                     std::span<const std::uint32_t> b) noexcept {
  std::uint64_t count = 0;
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < a.size() && ib < b.size()) {
    if (a[ia] < b[ib]) {
      ++ia;
    } else if (b[ib] < a[ia]) {
      ++ib;
    } else {
      ++count;
      ++ia;
      ++ib;
    }
  }
  return count;
}

/// Pairwise path: weight(i,j) = |hours_i ∩ hours_j| for each visitor pair.
void addViaIntersection(const CollocationMatrix& matrix, PairCountMap& pairs) {
  const std::size_t personCount = matrix.personCount();
  for (std::size_t a = 0; a < personCount; ++a) {
    const auto hoursA = matrix.hoursAt(a);
    for (std::size_t b = a + 1; b < personCount; ++b) {
      const std::uint64_t shared =
          sortedIntersectionSize(hoursA, matrix.hoursAt(b));
      if (shared > 0) {
        pairs.add(packPair(matrix.personAt(a), matrix.personAt(b)), shared);
      }
    }
  }
}

}  // namespace

void SymmetricAdjacency::addCollocation(const CollocationMatrix& matrix,
                                        AdjacencyMethod method) {
  switch (method) {
    case AdjacencyMethod::kSpGemm:
      addViaSpGemm(matrix, pairs_);
      return;
    case AdjacencyMethod::kIntervalIntersection:
      addViaIntersection(matrix, pairs_);
      return;
    case AdjacencyMethod::kLocalAccumulate:
      addViaLocalAccumulate(matrix, pairs_, kernelStats_);
      return;
  }
  CHISIM_CHECK(false, "unknown adjacency method");
}

std::vector<AdjacencyTriplet> SymmetricAdjacency::toTriplets() const {
  std::vector<AdjacencyTriplet> triplets;
  triplets.reserve(pairs_.size());
  for (const auto& [key, count] : pairs_.entries()) {
    triplets.push_back(AdjacencyTriplet{pairLow(key), pairHigh(key), count});
  }
  std::sort(triplets.begin(), triplets.end());
  return triplets;
}

std::vector<AdjacencyTriplet> mergeSortedTriplets(
    std::span<const AdjacencyTriplet> a, std::span<const AdjacencyTriplet> b) {
  std::vector<AdjacencyTriplet> merged;
  merged.reserve(a.size() + b.size());
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < a.size() && ib < b.size()) {
    const std::uint64_t keyA = packPair(a[ia].i, a[ia].j);
    const std::uint64_t keyB = packPair(b[ib].i, b[ib].j);
    if (keyA < keyB) {
      merged.push_back(a[ia++]);
    } else if (keyB < keyA) {
      merged.push_back(b[ib++]);
    } else {
      merged.push_back(
          AdjacencyTriplet{a[ia].i, a[ia].j, a[ia].weight + b[ib].weight});
      ++ia;
      ++ib;
    }
  }
  merged.insert(merged.end(), a.begin() + ia, a.end());
  merged.insert(merged.end(), b.begin() + ib, b.end());
  return merged;
}

namespace {

/// Exhausted-leaf sentinel. Real packed keys satisfy i < j, so the key of a
/// legitimate triplet is at most ((2^32-2) << 32) | (2^32-1) < ~0.
constexpr std::uint64_t kExhaustedKey = ~std::uint64_t{0};

}  // namespace

TripletMerger::TripletMerger(std::vector<TripletSource*> sources)
    : sources_(std::move(sources)) {
  for (const TripletSource* source : sources_) {
    expected_ += source->sizeHint();
  }
  start(sources_.size());
}

TripletMerger::TripletMerger(
    std::vector<std::unique_ptr<TripletSource>> sources)
    : owned_(std::move(sources)) {
  sources_.reserve(owned_.size());
  for (const std::unique_ptr<TripletSource>& source : owned_) {
    sources_.push_back(source.get());
    expected_ += source->sizeHint();
  }
  start(sources_.size());
}

void TripletMerger::start(std::size_t sourceCount) {
  if (sourceCount == 0) {
    leafCount_ = 0;
    return;
  }
  leafCount_ = std::bit_ceil(sourceCount);
  heads_.resize(leafCount_);
  keys_.assign(leafCount_, kExhaustedKey);
  for (std::size_t leaf = 0; leaf < sourceCount; ++leaf) {
    if (sources_[leaf]->next(heads_[leaf])) {
      keys_[leaf] = packPair(heads_[leaf].i, heads_[leaf].j);
    }
  }
  // Initial tournament, bottom-up: internal node n holds the LOSER of the
  // match between its subtrees; the winner carries upward. Leaf `l` sits at
  // tree position leafCount_ + l; internal nodes are 1..leafCount_-1.
  losers_.assign(leafCount_, 0);
  std::vector<std::size_t> winners(2 * leafCount_);
  for (std::size_t leaf = 0; leaf < leafCount_; ++leaf) {
    winners[leafCount_ + leaf] = leaf;
  }
  for (std::size_t node = leafCount_ - 1; node >= 1; --node) {
    const std::size_t a = winners[2 * node];
    const std::size_t b = winners[2 * node + 1];
    if (keyOf(a) <= keyOf(b)) {
      winners[node] = a;
      losers_[node] = b;
    } else {
      winners[node] = b;
      losers_[node] = a;
    }
  }
  winner_ = winners[1];
}

void TripletMerger::advance(std::size_t leaf) {
  const std::uint64_t previous = keys_[leaf];
  if (sources_[leaf]->next(heads_[leaf])) {
    keys_[leaf] = packPair(heads_[leaf].i, heads_[leaf].j);
    CHISIM_CHECK(keys_[leaf] > previous,
                 "merge source is not strictly key-ascending (corrupt or "
                 "unsorted run)");
  } else {
    keys_[leaf] = kExhaustedKey;
  }
}

void TripletMerger::replay(std::size_t leaf) {
  // Replay the matches on the path from `leaf` to the root: at each node
  // the stored loser challenges the carried winner.
  std::size_t current = leaf;
  for (std::size_t node = (leafCount_ + leaf) / 2; node >= 1; node /= 2) {
    if (keyOf(losers_[node]) < keyOf(current)) {
      std::swap(losers_[node], current);
    }
  }
  winner_ = current;
}

bool TripletMerger::next(AdjacencyTriplet& out) {
  if (leafCount_ == 0 || keys_[winner_] == kExhaustedKey) {
    return false;
  }
  const std::uint64_t key = keys_[winner_];
  out = heads_[winner_];
  advance(winner_);
  replay(winner_);
  // Sources are strictly ascending individually, so every further head with
  // the same key is a duplicate pair from another source: sum it in.
  while (keys_[winner_] == key) {
    out.weight += heads_[winner_].weight;
    advance(winner_);
    replay(winner_);
  }
  return true;
}

std::vector<AdjacencyTriplet> mergeKSortedTriplets(
    std::span<const std::span<const AdjacencyTriplet>> runs) {
  std::vector<SpanTripletSource> spanSources;
  spanSources.reserve(runs.size());
  std::size_t total = 0;
  for (const std::span<const AdjacencyTriplet> run : runs) {
    spanSources.emplace_back(run);
    total += run.size();
  }
  std::vector<TripletSource*> sources;
  sources.reserve(spanSources.size());
  for (SpanTripletSource& source : spanSources) {
    sources.push_back(&source);
  }
  TripletMerger merger(std::move(sources));
  std::vector<AdjacencyTriplet> merged;
  merged.reserve(total);
  AdjacencyTriplet triplet;
  while (merger.next(triplet)) {
    merged.push_back(triplet);
  }
  return merged;
}

SymmetricAdjacency adjacencyFromCollocations(
    std::span<const CollocationMatrix> matrices, AdjacencyMethod method) {
  std::uint64_t expected = 0;
  for (const CollocationMatrix& matrix : matrices) {
    expected += matrix.nnz();
  }
  SymmetricAdjacency adjacency(static_cast<std::size_t>(expected));
  for (const CollocationMatrix& matrix : matrices) {
    adjacency.addCollocation(matrix, method);
  }
  return adjacency;
}

}  // namespace chisimnet::sparse
