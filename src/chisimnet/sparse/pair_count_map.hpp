#pragma once

#include <cstdint>
#include <vector>

#include "chisimnet/util/error.hpp"

/// Open-addressing hash map from a packed (i,j) vertex pair to an
/// accumulated collocation weight.
///
/// This is the workhorse behind the sparse symmetric adjacency matrix
/// (paper §IV): each worker accumulates A_l = x·xᵀ contributions into one of
/// these, then maps are merged pairwise during the reduction to the root.
/// Linear probing over a power-of-two table keeps the accumulate path to a
/// hash, a probe loop and an add — no allocation unless a rehash is due.

namespace chisimnet::sparse {

class PairCountMap {
 public:
  explicit PairCountMap(std::size_t expectedEntries = 64);

  /// Adds `weight` to the count for `key` (inserting if absent).
  void add(std::uint64_t key, std::uint64_t weight);

  /// The accumulated count for `key`, or 0 when absent.
  std::uint64_t get(std::uint64_t key) const noexcept;

  /// Grows the table so `expectedEntries` total entries fit without a
  /// rehash. No-op if the table is already big enough; never shrinks.
  void reserve(std::size_t expectedEntries);

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Merges all entries of `other` into this map. Reserves room for the
  /// worst-case union up front so the insert loop never rehashes mid-merge.
  void merge(const PairCountMap& other);

  /// All (key, count) entries in unspecified order.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> entries() const;

  /// Visits every entry without materializing the entries() vector — the
  /// spill path extracts sorted runs through this so the only transient is
  /// the run buffer itself.
  template <typename Visitor>
  void forEach(Visitor&& visit) const {
    for (const Slot& slot : slots_) {
      if (slot.key != kEmpty) {
        visit(slot.key, slot.count);
      }
    }
  }

  /// True when the next insert of a new key would rehash (double) the
  /// table — a budgeted accumulator checks this to spill BEFORE the growth
  /// instead of discovering the overshoot after it.
  bool growthImminent() const noexcept {
    return (size_ + 1) * 10 > slots_.size() * 7;
  }

  /// Approximate heap bytes held by the table.
  std::size_t memoryBytes() const noexcept {
    return slots_.size() * sizeof(Slot);
  }

 private:
  struct Slot {
    std::uint64_t key = kEmpty;
    std::uint64_t count = 0;
  };
  static constexpr std::uint64_t kEmpty = ~std::uint64_t{0};

  void rehash(std::size_t newCapacity);
  static std::uint64_t mixHash(std::uint64_t key) noexcept;

  std::vector<Slot> slots_;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
};

/// Packs an unordered vertex pair into a canonical (min,max) 64-bit key.
/// Requires i != j.
inline std::uint64_t packPair(std::uint32_t i, std::uint32_t j) noexcept {
  const std::uint32_t lo = i < j ? i : j;
  const std::uint32_t hi = i < j ? j : i;
  return (static_cast<std::uint64_t>(lo) << 32) | hi;
}

inline std::uint32_t pairLow(std::uint64_t key) noexcept {
  return static_cast<std::uint32_t>(key >> 32);
}

inline std::uint32_t pairHigh(std::uint64_t key) noexcept {
  return static_cast<std::uint32_t>(key);
}

}  // namespace chisimnet::sparse
