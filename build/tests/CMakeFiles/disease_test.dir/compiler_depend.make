# Empty compiler generated dependencies file for disease_test.
# This may be replaced when dependencies are built.
