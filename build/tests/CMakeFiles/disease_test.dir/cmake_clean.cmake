file(REMOVE_RECURSE
  "CMakeFiles/disease_test.dir/disease_test.cpp.o"
  "CMakeFiles/disease_test.dir/disease_test.cpp.o.d"
  "disease_test"
  "disease_test.pdb"
  "disease_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/disease_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
