file(REMOVE_RECURSE
  "CMakeFiles/mixing_test.dir/mixing_test.cpp.o"
  "CMakeFiles/mixing_test.dir/mixing_test.cpp.o.d"
  "mixing_test"
  "mixing_test.pdb"
  "mixing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
