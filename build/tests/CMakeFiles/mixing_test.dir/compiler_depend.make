# Empty compiler generated dependencies file for mixing_test.
# This may be replaced when dependencies are built.
