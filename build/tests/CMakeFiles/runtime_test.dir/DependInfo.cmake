
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/runtime_test.cpp" "tests/CMakeFiles/runtime_test.dir/runtime_test.cpp.o" "gcc" "tests/CMakeFiles/runtime_test.dir/runtime_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/chisimnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chisimnet_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chisimnet_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chisimnet_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chisimnet_abm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chisimnet_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chisimnet_elog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chisimnet_table.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chisimnet_pop.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chisimnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
