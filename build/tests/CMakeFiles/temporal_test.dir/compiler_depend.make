# Empty compiler generated dependencies file for temporal_test.
# This may be replaced when dependencies are built.
