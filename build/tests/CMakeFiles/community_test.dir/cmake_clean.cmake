file(REMOVE_RECURSE
  "CMakeFiles/community_test.dir/community_test.cpp.o"
  "CMakeFiles/community_test.dir/community_test.cpp.o.d"
  "community_test"
  "community_test.pdb"
  "community_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/community_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
