# Empty dependencies file for net_distributed_test.
# This may be replaced when dependencies are built.
