file(REMOVE_RECURSE
  "CMakeFiles/net_distributed_test.dir/net_distributed_test.cpp.o"
  "CMakeFiles/net_distributed_test.dir/net_distributed_test.cpp.o.d"
  "net_distributed_test"
  "net_distributed_test.pdb"
  "net_distributed_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_distributed_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
