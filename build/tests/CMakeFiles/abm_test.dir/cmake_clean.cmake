file(REMOVE_RECURSE
  "CMakeFiles/abm_test.dir/abm_test.cpp.o"
  "CMakeFiles/abm_test.dir/abm_test.cpp.o.d"
  "abm_test"
  "abm_test.pdb"
  "abm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
