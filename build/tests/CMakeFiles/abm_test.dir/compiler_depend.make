# Empty compiler generated dependencies file for abm_test.
# This may be replaced when dependencies are built.
