# Empty dependencies file for plot_test.
# This may be replaced when dependencies are built.
