file(REMOVE_RECURSE
  "CMakeFiles/graph_ext_test.dir/graph_ext_test.cpp.o"
  "CMakeFiles/graph_ext_test.dir/graph_ext_test.cpp.o.d"
  "graph_ext_test"
  "graph_ext_test.pdb"
  "graph_ext_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_ext_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
