# Empty dependencies file for graph_ext_test.
# This may be replaced when dependencies are built.
