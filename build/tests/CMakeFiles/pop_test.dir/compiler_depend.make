# Empty compiler generated dependencies file for pop_test.
# This may be replaced when dependencies are built.
