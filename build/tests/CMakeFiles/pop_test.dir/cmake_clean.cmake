file(REMOVE_RECURSE
  "CMakeFiles/pop_test.dir/pop_test.cpp.o"
  "CMakeFiles/pop_test.dir/pop_test.cpp.o.d"
  "pop_test"
  "pop_test.pdb"
  "pop_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
