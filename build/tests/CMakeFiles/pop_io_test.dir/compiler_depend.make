# Empty compiler generated dependencies file for pop_io_test.
# This may be replaced when dependencies are built.
