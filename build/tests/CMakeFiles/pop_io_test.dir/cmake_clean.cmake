file(REMOVE_RECURSE
  "CMakeFiles/pop_io_test.dir/pop_io_test.cpp.o"
  "CMakeFiles/pop_io_test.dir/pop_io_test.cpp.o.d"
  "pop_io_test"
  "pop_io_test.pdb"
  "pop_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pop_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
