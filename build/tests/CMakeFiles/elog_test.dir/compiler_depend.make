# Empty compiler generated dependencies file for elog_test.
# This may be replaced when dependencies are built.
