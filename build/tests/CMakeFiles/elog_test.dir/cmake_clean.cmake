file(REMOVE_RECURSE
  "CMakeFiles/elog_test.dir/elog_test.cpp.o"
  "CMakeFiles/elog_test.dir/elog_test.cpp.o.d"
  "elog_test"
  "elog_test.pdb"
  "elog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
