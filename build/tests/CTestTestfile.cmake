# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/table_test[1]_include.cmake")
include("/root/repo/build/tests/sparse_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/elog_test[1]_include.cmake")
include("/root/repo/build/tests/graph_test[1]_include.cmake")
include("/root/repo/build/tests/pop_test[1]_include.cmake")
include("/root/repo/build/tests/schedule_test[1]_include.cmake")
include("/root/repo/build/tests/abm_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/disease_test[1]_include.cmake")
include("/root/repo/build/tests/community_test[1]_include.cmake")
include("/root/repo/build/tests/graph_ext_test[1]_include.cmake")
include("/root/repo/build/tests/pop_io_test[1]_include.cmake")
include("/root/repo/build/tests/net_distributed_test[1]_include.cmake")
include("/root/repo/build/tests/mixing_test[1]_include.cmake")
include("/root/repo/build/tests/temporal_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/table_io_test[1]_include.cmake")
include("/root/repo/build/tests/plot_test[1]_include.cmake")
