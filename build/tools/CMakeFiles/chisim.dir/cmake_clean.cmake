file(REMOVE_RECURSE
  "CMakeFiles/chisim.dir/chisim_cli.cpp.o"
  "CMakeFiles/chisim.dir/chisim_cli.cpp.o.d"
  "chisim"
  "chisim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chisim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
