# Empty dependencies file for chisim.
# This may be replaced when dependencies are built.
