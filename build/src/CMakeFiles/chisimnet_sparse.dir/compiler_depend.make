# Empty compiler generated dependencies file for chisimnet_sparse.
# This may be replaced when dependencies are built.
