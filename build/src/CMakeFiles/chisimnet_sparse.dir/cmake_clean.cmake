file(REMOVE_RECURSE
  "CMakeFiles/chisimnet_sparse.dir/chisimnet/sparse/adjacency.cpp.o"
  "CMakeFiles/chisimnet_sparse.dir/chisimnet/sparse/adjacency.cpp.o.d"
  "CMakeFiles/chisimnet_sparse.dir/chisimnet/sparse/adjacency_io.cpp.o"
  "CMakeFiles/chisimnet_sparse.dir/chisimnet/sparse/adjacency_io.cpp.o.d"
  "CMakeFiles/chisimnet_sparse.dir/chisimnet/sparse/collocation.cpp.o"
  "CMakeFiles/chisimnet_sparse.dir/chisimnet/sparse/collocation.cpp.o.d"
  "CMakeFiles/chisimnet_sparse.dir/chisimnet/sparse/pair_count_map.cpp.o"
  "CMakeFiles/chisimnet_sparse.dir/chisimnet/sparse/pair_count_map.cpp.o.d"
  "libchisimnet_sparse.a"
  "libchisimnet_sparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chisimnet_sparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
