file(REMOVE_RECURSE
  "libchisimnet_sparse.a"
)
