# Empty dependencies file for chisimnet_pop.
# This may be replaced when dependencies are built.
