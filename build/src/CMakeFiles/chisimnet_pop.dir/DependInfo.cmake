
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chisimnet/pop/io.cpp" "src/CMakeFiles/chisimnet_pop.dir/chisimnet/pop/io.cpp.o" "gcc" "src/CMakeFiles/chisimnet_pop.dir/chisimnet/pop/io.cpp.o.d"
  "/root/repo/src/chisimnet/pop/population.cpp" "src/CMakeFiles/chisimnet_pop.dir/chisimnet/pop/population.cpp.o" "gcc" "src/CMakeFiles/chisimnet_pop.dir/chisimnet/pop/population.cpp.o.d"
  "/root/repo/src/chisimnet/pop/schedule.cpp" "src/CMakeFiles/chisimnet_pop.dir/chisimnet/pop/schedule.cpp.o" "gcc" "src/CMakeFiles/chisimnet_pop.dir/chisimnet/pop/schedule.cpp.o.d"
  "/root/repo/src/chisimnet/pop/types.cpp" "src/CMakeFiles/chisimnet_pop.dir/chisimnet/pop/types.cpp.o" "gcc" "src/CMakeFiles/chisimnet_pop.dir/chisimnet/pop/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/chisimnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
