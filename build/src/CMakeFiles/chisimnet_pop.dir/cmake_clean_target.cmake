file(REMOVE_RECURSE
  "libchisimnet_pop.a"
)
