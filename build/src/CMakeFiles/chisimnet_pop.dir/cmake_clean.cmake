file(REMOVE_RECURSE
  "CMakeFiles/chisimnet_pop.dir/chisimnet/pop/io.cpp.o"
  "CMakeFiles/chisimnet_pop.dir/chisimnet/pop/io.cpp.o.d"
  "CMakeFiles/chisimnet_pop.dir/chisimnet/pop/population.cpp.o"
  "CMakeFiles/chisimnet_pop.dir/chisimnet/pop/population.cpp.o.d"
  "CMakeFiles/chisimnet_pop.dir/chisimnet/pop/schedule.cpp.o"
  "CMakeFiles/chisimnet_pop.dir/chisimnet/pop/schedule.cpp.o.d"
  "CMakeFiles/chisimnet_pop.dir/chisimnet/pop/types.cpp.o"
  "CMakeFiles/chisimnet_pop.dir/chisimnet/pop/types.cpp.o.d"
  "libchisimnet_pop.a"
  "libchisimnet_pop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chisimnet_pop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
