# Empty compiler generated dependencies file for chisimnet_stats.
# This may be replaced when dependencies are built.
