file(REMOVE_RECURSE
  "CMakeFiles/chisimnet_stats.dir/chisimnet/stats/fit.cpp.o"
  "CMakeFiles/chisimnet_stats.dir/chisimnet/stats/fit.cpp.o.d"
  "CMakeFiles/chisimnet_stats.dir/chisimnet/stats/histogram.cpp.o"
  "CMakeFiles/chisimnet_stats.dir/chisimnet/stats/histogram.cpp.o.d"
  "CMakeFiles/chisimnet_stats.dir/chisimnet/stats/plot.cpp.o"
  "CMakeFiles/chisimnet_stats.dir/chisimnet/stats/plot.cpp.o.d"
  "libchisimnet_stats.a"
  "libchisimnet_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chisimnet_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
