
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chisimnet/stats/fit.cpp" "src/CMakeFiles/chisimnet_stats.dir/chisimnet/stats/fit.cpp.o" "gcc" "src/CMakeFiles/chisimnet_stats.dir/chisimnet/stats/fit.cpp.o.d"
  "/root/repo/src/chisimnet/stats/histogram.cpp" "src/CMakeFiles/chisimnet_stats.dir/chisimnet/stats/histogram.cpp.o" "gcc" "src/CMakeFiles/chisimnet_stats.dir/chisimnet/stats/histogram.cpp.o.d"
  "/root/repo/src/chisimnet/stats/plot.cpp" "src/CMakeFiles/chisimnet_stats.dir/chisimnet/stats/plot.cpp.o" "gcc" "src/CMakeFiles/chisimnet_stats.dir/chisimnet/stats/plot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/chisimnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
