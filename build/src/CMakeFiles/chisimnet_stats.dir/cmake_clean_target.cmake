file(REMOVE_RECURSE
  "libchisimnet_stats.a"
)
