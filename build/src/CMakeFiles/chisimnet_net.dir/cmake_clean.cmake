file(REMOVE_RECURSE
  "CMakeFiles/chisimnet_net.dir/chisimnet/net/demography.cpp.o"
  "CMakeFiles/chisimnet_net.dir/chisimnet/net/demography.cpp.o.d"
  "CMakeFiles/chisimnet_net.dir/chisimnet/net/distributed.cpp.o"
  "CMakeFiles/chisimnet_net.dir/chisimnet/net/distributed.cpp.o.d"
  "CMakeFiles/chisimnet_net.dir/chisimnet/net/synthesis.cpp.o"
  "CMakeFiles/chisimnet_net.dir/chisimnet/net/synthesis.cpp.o.d"
  "CMakeFiles/chisimnet_net.dir/chisimnet/net/temporal.cpp.o"
  "CMakeFiles/chisimnet_net.dir/chisimnet/net/temporal.cpp.o.d"
  "libchisimnet_net.a"
  "libchisimnet_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chisimnet_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
