file(REMOVE_RECURSE
  "libchisimnet_net.a"
)
