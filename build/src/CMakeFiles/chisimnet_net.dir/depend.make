# Empty dependencies file for chisimnet_net.
# This may be replaced when dependencies are built.
