# Empty compiler generated dependencies file for chisimnet_elog.
# This may be replaced when dependencies are built.
