file(REMOVE_RECURSE
  "CMakeFiles/chisimnet_elog.dir/chisimnet/elog/clg5.cpp.o"
  "CMakeFiles/chisimnet_elog.dir/chisimnet/elog/clg5.cpp.o.d"
  "CMakeFiles/chisimnet_elog.dir/chisimnet/elog/event_logger.cpp.o"
  "CMakeFiles/chisimnet_elog.dir/chisimnet/elog/event_logger.cpp.o.d"
  "CMakeFiles/chisimnet_elog.dir/chisimnet/elog/extended.cpp.o"
  "CMakeFiles/chisimnet_elog.dir/chisimnet/elog/extended.cpp.o.d"
  "CMakeFiles/chisimnet_elog.dir/chisimnet/elog/log_directory.cpp.o"
  "CMakeFiles/chisimnet_elog.dir/chisimnet/elog/log_directory.cpp.o.d"
  "libchisimnet_elog.a"
  "libchisimnet_elog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chisimnet_elog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
