file(REMOVE_RECURSE
  "libchisimnet_elog.a"
)
