
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chisimnet/elog/clg5.cpp" "src/CMakeFiles/chisimnet_elog.dir/chisimnet/elog/clg5.cpp.o" "gcc" "src/CMakeFiles/chisimnet_elog.dir/chisimnet/elog/clg5.cpp.o.d"
  "/root/repo/src/chisimnet/elog/event_logger.cpp" "src/CMakeFiles/chisimnet_elog.dir/chisimnet/elog/event_logger.cpp.o" "gcc" "src/CMakeFiles/chisimnet_elog.dir/chisimnet/elog/event_logger.cpp.o.d"
  "/root/repo/src/chisimnet/elog/extended.cpp" "src/CMakeFiles/chisimnet_elog.dir/chisimnet/elog/extended.cpp.o" "gcc" "src/CMakeFiles/chisimnet_elog.dir/chisimnet/elog/extended.cpp.o.d"
  "/root/repo/src/chisimnet/elog/log_directory.cpp" "src/CMakeFiles/chisimnet_elog.dir/chisimnet/elog/log_directory.cpp.o" "gcc" "src/CMakeFiles/chisimnet_elog.dir/chisimnet/elog/log_directory.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/chisimnet_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chisimnet_table.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
