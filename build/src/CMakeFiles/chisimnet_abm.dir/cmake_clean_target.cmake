file(REMOVE_RECURSE
  "libchisimnet_abm.a"
)
