file(REMOVE_RECURSE
  "CMakeFiles/chisimnet_abm.dir/chisimnet/abm/disease.cpp.o"
  "CMakeFiles/chisimnet_abm.dir/chisimnet/abm/disease.cpp.o.d"
  "CMakeFiles/chisimnet_abm.dir/chisimnet/abm/model.cpp.o"
  "CMakeFiles/chisimnet_abm.dir/chisimnet/abm/model.cpp.o.d"
  "CMakeFiles/chisimnet_abm.dir/chisimnet/abm/place_partition.cpp.o"
  "CMakeFiles/chisimnet_abm.dir/chisimnet/abm/place_partition.cpp.o.d"
  "libchisimnet_abm.a"
  "libchisimnet_abm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chisimnet_abm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
