# Empty dependencies file for chisimnet_abm.
# This may be replaced when dependencies are built.
