file(REMOVE_RECURSE
  "CMakeFiles/chisimnet_table.dir/chisimnet/table/event_table.cpp.o"
  "CMakeFiles/chisimnet_table.dir/chisimnet/table/event_table.cpp.o.d"
  "CMakeFiles/chisimnet_table.dir/chisimnet/table/io.cpp.o"
  "CMakeFiles/chisimnet_table.dir/chisimnet/table/io.cpp.o.d"
  "libchisimnet_table.a"
  "libchisimnet_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chisimnet_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
