file(REMOVE_RECURSE
  "libchisimnet_table.a"
)
