# Empty dependencies file for chisimnet_table.
# This may be replaced when dependencies are built.
