file(REMOVE_RECURSE
  "libchisimnet_runtime.a"
)
