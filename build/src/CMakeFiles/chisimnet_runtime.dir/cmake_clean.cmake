file(REMOVE_RECURSE
  "CMakeFiles/chisimnet_runtime.dir/chisimnet/runtime/cluster.cpp.o"
  "CMakeFiles/chisimnet_runtime.dir/chisimnet/runtime/cluster.cpp.o.d"
  "CMakeFiles/chisimnet_runtime.dir/chisimnet/runtime/comm.cpp.o"
  "CMakeFiles/chisimnet_runtime.dir/chisimnet/runtime/comm.cpp.o.d"
  "CMakeFiles/chisimnet_runtime.dir/chisimnet/runtime/partition.cpp.o"
  "CMakeFiles/chisimnet_runtime.dir/chisimnet/runtime/partition.cpp.o.d"
  "CMakeFiles/chisimnet_runtime.dir/chisimnet/runtime/scheduler.cpp.o"
  "CMakeFiles/chisimnet_runtime.dir/chisimnet/runtime/scheduler.cpp.o.d"
  "CMakeFiles/chisimnet_runtime.dir/chisimnet/runtime/thread_pool.cpp.o"
  "CMakeFiles/chisimnet_runtime.dir/chisimnet/runtime/thread_pool.cpp.o.d"
  "libchisimnet_runtime.a"
  "libchisimnet_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chisimnet_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
