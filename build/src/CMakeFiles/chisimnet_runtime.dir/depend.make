# Empty dependencies file for chisimnet_runtime.
# This may be replaced when dependencies are built.
