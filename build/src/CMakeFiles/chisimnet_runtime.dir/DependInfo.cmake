
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chisimnet/runtime/cluster.cpp" "src/CMakeFiles/chisimnet_runtime.dir/chisimnet/runtime/cluster.cpp.o" "gcc" "src/CMakeFiles/chisimnet_runtime.dir/chisimnet/runtime/cluster.cpp.o.d"
  "/root/repo/src/chisimnet/runtime/comm.cpp" "src/CMakeFiles/chisimnet_runtime.dir/chisimnet/runtime/comm.cpp.o" "gcc" "src/CMakeFiles/chisimnet_runtime.dir/chisimnet/runtime/comm.cpp.o.d"
  "/root/repo/src/chisimnet/runtime/partition.cpp" "src/CMakeFiles/chisimnet_runtime.dir/chisimnet/runtime/partition.cpp.o" "gcc" "src/CMakeFiles/chisimnet_runtime.dir/chisimnet/runtime/partition.cpp.o.d"
  "/root/repo/src/chisimnet/runtime/scheduler.cpp" "src/CMakeFiles/chisimnet_runtime.dir/chisimnet/runtime/scheduler.cpp.o" "gcc" "src/CMakeFiles/chisimnet_runtime.dir/chisimnet/runtime/scheduler.cpp.o.d"
  "/root/repo/src/chisimnet/runtime/thread_pool.cpp" "src/CMakeFiles/chisimnet_runtime.dir/chisimnet/runtime/thread_pool.cpp.o" "gcc" "src/CMakeFiles/chisimnet_runtime.dir/chisimnet/runtime/thread_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/chisimnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
