
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chisimnet/graph/algorithms.cpp" "src/CMakeFiles/chisimnet_graph.dir/chisimnet/graph/algorithms.cpp.o" "gcc" "src/CMakeFiles/chisimnet_graph.dir/chisimnet/graph/algorithms.cpp.o.d"
  "/root/repo/src/chisimnet/graph/community.cpp" "src/CMakeFiles/chisimnet_graph.dir/chisimnet/graph/community.cpp.o" "gcc" "src/CMakeFiles/chisimnet_graph.dir/chisimnet/graph/community.cpp.o.d"
  "/root/repo/src/chisimnet/graph/generators.cpp" "src/CMakeFiles/chisimnet_graph.dir/chisimnet/graph/generators.cpp.o" "gcc" "src/CMakeFiles/chisimnet_graph.dir/chisimnet/graph/generators.cpp.o.d"
  "/root/repo/src/chisimnet/graph/graph.cpp" "src/CMakeFiles/chisimnet_graph.dir/chisimnet/graph/graph.cpp.o" "gcc" "src/CMakeFiles/chisimnet_graph.dir/chisimnet/graph/graph.cpp.o.d"
  "/root/repo/src/chisimnet/graph/io.cpp" "src/CMakeFiles/chisimnet_graph.dir/chisimnet/graph/io.cpp.o" "gcc" "src/CMakeFiles/chisimnet_graph.dir/chisimnet/graph/io.cpp.o.d"
  "/root/repo/src/chisimnet/graph/layout.cpp" "src/CMakeFiles/chisimnet_graph.dir/chisimnet/graph/layout.cpp.o" "gcc" "src/CMakeFiles/chisimnet_graph.dir/chisimnet/graph/layout.cpp.o.d"
  "/root/repo/src/chisimnet/graph/mixing.cpp" "src/CMakeFiles/chisimnet_graph.dir/chisimnet/graph/mixing.cpp.o" "gcc" "src/CMakeFiles/chisimnet_graph.dir/chisimnet/graph/mixing.cpp.o.d"
  "/root/repo/src/chisimnet/graph/weighted_stats.cpp" "src/CMakeFiles/chisimnet_graph.dir/chisimnet/graph/weighted_stats.cpp.o" "gcc" "src/CMakeFiles/chisimnet_graph.dir/chisimnet/graph/weighted_stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/chisimnet_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chisimnet_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chisimnet_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
