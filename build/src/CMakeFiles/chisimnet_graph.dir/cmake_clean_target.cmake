file(REMOVE_RECURSE
  "libchisimnet_graph.a"
)
