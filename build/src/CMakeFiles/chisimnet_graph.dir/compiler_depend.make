# Empty compiler generated dependencies file for chisimnet_graph.
# This may be replaced when dependencies are built.
