file(REMOVE_RECURSE
  "CMakeFiles/chisimnet_graph.dir/chisimnet/graph/algorithms.cpp.o"
  "CMakeFiles/chisimnet_graph.dir/chisimnet/graph/algorithms.cpp.o.d"
  "CMakeFiles/chisimnet_graph.dir/chisimnet/graph/community.cpp.o"
  "CMakeFiles/chisimnet_graph.dir/chisimnet/graph/community.cpp.o.d"
  "CMakeFiles/chisimnet_graph.dir/chisimnet/graph/generators.cpp.o"
  "CMakeFiles/chisimnet_graph.dir/chisimnet/graph/generators.cpp.o.d"
  "CMakeFiles/chisimnet_graph.dir/chisimnet/graph/graph.cpp.o"
  "CMakeFiles/chisimnet_graph.dir/chisimnet/graph/graph.cpp.o.d"
  "CMakeFiles/chisimnet_graph.dir/chisimnet/graph/io.cpp.o"
  "CMakeFiles/chisimnet_graph.dir/chisimnet/graph/io.cpp.o.d"
  "CMakeFiles/chisimnet_graph.dir/chisimnet/graph/layout.cpp.o"
  "CMakeFiles/chisimnet_graph.dir/chisimnet/graph/layout.cpp.o.d"
  "CMakeFiles/chisimnet_graph.dir/chisimnet/graph/mixing.cpp.o"
  "CMakeFiles/chisimnet_graph.dir/chisimnet/graph/mixing.cpp.o.d"
  "CMakeFiles/chisimnet_graph.dir/chisimnet/graph/weighted_stats.cpp.o"
  "CMakeFiles/chisimnet_graph.dir/chisimnet/graph/weighted_stats.cpp.o.d"
  "libchisimnet_graph.a"
  "libchisimnet_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chisimnet_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
