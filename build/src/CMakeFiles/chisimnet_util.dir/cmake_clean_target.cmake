file(REMOVE_RECURSE
  "libchisimnet_util.a"
)
