
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/chisimnet/util/binary_io.cpp" "src/CMakeFiles/chisimnet_util.dir/chisimnet/util/binary_io.cpp.o" "gcc" "src/CMakeFiles/chisimnet_util.dir/chisimnet/util/binary_io.cpp.o.d"
  "/root/repo/src/chisimnet/util/env.cpp" "src/CMakeFiles/chisimnet_util.dir/chisimnet/util/env.cpp.o" "gcc" "src/CMakeFiles/chisimnet_util.dir/chisimnet/util/env.cpp.o.d"
  "/root/repo/src/chisimnet/util/error.cpp" "src/CMakeFiles/chisimnet_util.dir/chisimnet/util/error.cpp.o" "gcc" "src/CMakeFiles/chisimnet_util.dir/chisimnet/util/error.cpp.o.d"
  "/root/repo/src/chisimnet/util/rng.cpp" "src/CMakeFiles/chisimnet_util.dir/chisimnet/util/rng.cpp.o" "gcc" "src/CMakeFiles/chisimnet_util.dir/chisimnet/util/rng.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
