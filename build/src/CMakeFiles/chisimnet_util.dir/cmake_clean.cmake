file(REMOVE_RECURSE
  "CMakeFiles/chisimnet_util.dir/chisimnet/util/binary_io.cpp.o"
  "CMakeFiles/chisimnet_util.dir/chisimnet/util/binary_io.cpp.o.d"
  "CMakeFiles/chisimnet_util.dir/chisimnet/util/env.cpp.o"
  "CMakeFiles/chisimnet_util.dir/chisimnet/util/env.cpp.o.d"
  "CMakeFiles/chisimnet_util.dir/chisimnet/util/error.cpp.o"
  "CMakeFiles/chisimnet_util.dir/chisimnet/util/error.cpp.o.d"
  "CMakeFiles/chisimnet_util.dir/chisimnet/util/rng.cpp.o"
  "CMakeFiles/chisimnet_util.dir/chisimnet/util/rng.cpp.o.d"
  "libchisimnet_util.a"
  "libchisimnet_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chisimnet_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
