# Empty compiler generated dependencies file for chisimnet_util.
# This may be replaced when dependencies are built.
