# Empty compiler generated dependencies file for bench_random_net_compare.
# This may be replaced when dependencies are built.
