file(REMOVE_RECURSE
  "CMakeFiles/bench_random_net_compare.dir/bench_random_net_compare.cpp.o"
  "CMakeFiles/bench_random_net_compare.dir/bench_random_net_compare.cpp.o.d"
  "bench_random_net_compare"
  "bench_random_net_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_random_net_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
