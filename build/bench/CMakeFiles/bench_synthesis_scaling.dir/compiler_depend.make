# Empty compiler generated dependencies file for bench_synthesis_scaling.
# This may be replaced when dependencies are built.
