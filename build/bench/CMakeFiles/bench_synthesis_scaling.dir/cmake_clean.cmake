file(REMOVE_RECURSE
  "CMakeFiles/bench_synthesis_scaling.dir/bench_synthesis_scaling.cpp.o"
  "CMakeFiles/bench_synthesis_scaling.dir/bench_synthesis_scaling.cpp.o.d"
  "bench_synthesis_scaling"
  "bench_synthesis_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_synthesis_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
