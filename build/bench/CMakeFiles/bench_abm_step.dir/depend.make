# Empty dependencies file for bench_abm_step.
# This may be replaced when dependencies are built.
