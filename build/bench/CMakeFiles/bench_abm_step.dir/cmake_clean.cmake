file(REMOVE_RECURSE
  "CMakeFiles/bench_abm_step.dir/bench_abm_step.cpp.o"
  "CMakeFiles/bench_abm_step.dir/bench_abm_step.cpp.o.d"
  "bench_abm_step"
  "bench_abm_step.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abm_step.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
