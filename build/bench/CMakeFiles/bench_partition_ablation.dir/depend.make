# Empty dependencies file for bench_partition_ablation.
# This may be replaced when dependencies are built.
