file(REMOVE_RECURSE
  "CMakeFiles/bench_partition_ablation.dir/bench_partition_ablation.cpp.o"
  "CMakeFiles/bench_partition_ablation.dir/bench_partition_ablation.cpp.o.d"
  "bench_partition_ablation"
  "bench_partition_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partition_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
