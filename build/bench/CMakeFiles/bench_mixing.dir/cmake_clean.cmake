file(REMOVE_RECURSE
  "CMakeFiles/bench_mixing.dir/bench_mixing.cpp.o"
  "CMakeFiles/bench_mixing.dir/bench_mixing.cpp.o.d"
  "bench_mixing"
  "bench_mixing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mixing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
