# Empty dependencies file for bench_mixing.
# This may be replaced when dependencies are built.
