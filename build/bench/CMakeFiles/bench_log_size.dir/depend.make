# Empty dependencies file for bench_log_size.
# This may be replaced when dependencies are built.
