file(REMOVE_RECURSE
  "CMakeFiles/bench_log_size.dir/bench_log_size.cpp.o"
  "CMakeFiles/bench_log_size.dir/bench_log_size.cpp.o.d"
  "bench_log_size"
  "bench_log_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_log_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
