file(REMOVE_RECURSE
  "CMakeFiles/bench_network_size.dir/bench_network_size.cpp.o"
  "CMakeFiles/bench_network_size.dir/bench_network_size.cpp.o.d"
  "bench_network_size"
  "bench_network_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_network_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
