# Empty dependencies file for bench_network_size.
# This may be replaced when dependencies are built.
