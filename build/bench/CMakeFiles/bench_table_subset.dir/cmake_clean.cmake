file(REMOVE_RECURSE
  "CMakeFiles/bench_table_subset.dir/bench_table_subset.cpp.o"
  "CMakeFiles/bench_table_subset.dir/bench_table_subset.cpp.o.d"
  "bench_table_subset"
  "bench_table_subset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table_subset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
