# Empty compiler generated dependencies file for bench_table_subset.
# This may be replaced when dependencies are built.
