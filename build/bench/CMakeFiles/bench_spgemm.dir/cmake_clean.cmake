file(REMOVE_RECURSE
  "CMakeFiles/bench_spgemm.dir/bench_spgemm.cpp.o"
  "CMakeFiles/bench_spgemm.dir/bench_spgemm.cpp.o.d"
  "bench_spgemm"
  "bench_spgemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_spgemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
