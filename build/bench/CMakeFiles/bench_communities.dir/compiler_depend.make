# Empty compiler generated dependencies file for bench_communities.
# This may be replaced when dependencies are built.
