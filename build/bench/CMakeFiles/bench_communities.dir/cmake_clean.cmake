file(REMOVE_RECURSE
  "CMakeFiles/bench_communities.dir/bench_communities.cpp.o"
  "CMakeFiles/bench_communities.dir/bench_communities.cpp.o.d"
  "bench_communities"
  "bench_communities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_communities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
