file(REMOVE_RECURSE
  "CMakeFiles/bench_log_cache.dir/bench_log_cache.cpp.o"
  "CMakeFiles/bench_log_cache.dir/bench_log_cache.cpp.o.d"
  "bench_log_cache"
  "bench_log_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_log_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
