# Empty compiler generated dependencies file for bench_log_cache.
# This may be replaced when dependencies are built.
