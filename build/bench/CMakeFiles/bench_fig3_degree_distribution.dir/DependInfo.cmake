
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig3_degree_distribution.cpp" "bench/CMakeFiles/bench_fig3_degree_distribution.dir/bench_fig3_degree_distribution.cpp.o" "gcc" "bench/CMakeFiles/bench_fig3_degree_distribution.dir/bench_fig3_degree_distribution.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/chisimnet_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chisimnet_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chisimnet_sparse.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chisimnet_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chisimnet_abm.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chisimnet_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chisimnet_elog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chisimnet_table.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chisimnet_pop.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/chisimnet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
