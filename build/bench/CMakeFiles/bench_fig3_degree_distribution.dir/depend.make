# Empty dependencies file for bench_fig3_degree_distribution.
# This may be replaced when dependencies are built.
