file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_degree_distribution.dir/bench_fig3_degree_distribution.cpp.o"
  "CMakeFiles/bench_fig3_degree_distribution.dir/bench_fig3_degree_distribution.cpp.o.d"
  "bench_fig3_degree_distribution"
  "bench_fig3_degree_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_degree_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
