file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_fig2_ego.dir/bench_fig1_fig2_ego.cpp.o"
  "CMakeFiles/bench_fig1_fig2_ego.dir/bench_fig1_fig2_ego.cpp.o.d"
  "bench_fig1_fig2_ego"
  "bench_fig1_fig2_ego.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_fig2_ego.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
