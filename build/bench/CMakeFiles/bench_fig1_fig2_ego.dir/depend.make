# Empty dependencies file for bench_fig1_fig2_ego.
# This may be replaced when dependencies are built.
