file(REMOVE_RECURSE
  "CMakeFiles/bench_temporal.dir/bench_temporal.cpp.o"
  "CMakeFiles/bench_temporal.dir/bench_temporal.cpp.o.d"
  "bench_temporal"
  "bench_temporal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_temporal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
