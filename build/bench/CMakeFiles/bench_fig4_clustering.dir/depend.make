# Empty dependencies file for bench_fig4_clustering.
# This may be replaced when dependencies are built.
