file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_clustering.dir/bench_fig4_clustering.cpp.o"
  "CMakeFiles/bench_fig4_clustering.dir/bench_fig4_clustering.cpp.o.d"
  "bench_fig4_clustering"
  "bench_fig4_clustering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_clustering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
