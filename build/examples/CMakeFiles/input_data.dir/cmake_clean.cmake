file(REMOVE_RECURSE
  "CMakeFiles/input_data.dir/input_data.cpp.o"
  "CMakeFiles/input_data.dir/input_data.cpp.o.d"
  "input_data"
  "input_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/input_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
