# Empty dependencies file for input_data.
# This may be replaced when dependencies are built.
