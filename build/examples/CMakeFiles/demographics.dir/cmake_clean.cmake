file(REMOVE_RECURSE
  "CMakeFiles/demographics.dir/demographics.cpp.o"
  "CMakeFiles/demographics.dir/demographics.cpp.o.d"
  "demographics"
  "demographics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/demographics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
