# Empty dependencies file for demographics.
# This may be replaced when dependencies are built.
