file(REMOVE_RECURSE
  "CMakeFiles/epidemic_trace.dir/epidemic_trace.cpp.o"
  "CMakeFiles/epidemic_trace.dir/epidemic_trace.cpp.o.d"
  "epidemic_trace"
  "epidemic_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/epidemic_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
