# Empty dependencies file for epidemic_trace.
# This may be replaced when dependencies are built.
