file(REMOVE_RECURSE
  "CMakeFiles/ego_viz.dir/ego_viz.cpp.o"
  "CMakeFiles/ego_viz.dir/ego_viz.cpp.o.d"
  "ego_viz"
  "ego_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ego_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
