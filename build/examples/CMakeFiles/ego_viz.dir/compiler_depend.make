# Empty compiler generated dependencies file for ego_viz.
# This may be replaced when dependencies are built.
