#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "chisimnet/graph/algorithms.hpp"
#include "chisimnet/graph/generators.hpp"
#include "chisimnet/graph/graph.hpp"
#include "chisimnet/graph/io.hpp"
#include "chisimnet/graph/layout.hpp"
#include "chisimnet/util/rng.hpp"

namespace chisimnet::graph {
namespace {

Graph triangleWithTail() {
  // 0-1-2 triangle plus 2-3 tail (labels are identity).
  const std::vector<Edge> edges{{0, 1, 1}, {1, 2, 2}, {0, 2, 3}, {2, 3, 4}};
  return Graph::fromEdges(edges, 4);
}

TEST(Graph, BasicAccessors) {
  const Graph graph = triangleWithTail();
  EXPECT_EQ(graph.vertexCount(), 4u);
  EXPECT_EQ(graph.edgeCount(), 4u);
  EXPECT_EQ(graph.degree(2), 3u);
  EXPECT_EQ(graph.degree(3), 1u);
  EXPECT_TRUE(graph.hasEdge(0, 1));
  EXPECT_TRUE(graph.hasEdge(1, 0));
  EXPECT_FALSE(graph.hasEdge(0, 3));
  EXPECT_EQ(graph.weightBetween(2, 3), 4u);
  EXPECT_EQ(graph.weightBetween(0, 3), 0u);
  EXPECT_EQ(graph.totalWeight(), 10u);
}

TEST(Graph, NeighborsSorted) {
  const Graph graph = triangleWithTail();
  for (Vertex v = 0; v < graph.vertexCount(); ++v) {
    const auto row = graph.neighbors(v);
    EXPECT_TRUE(std::is_sorted(row.begin(), row.end()));
  }
}

TEST(Graph, ParallelEdgesMergedBySummingWeights) {
  const std::vector<Edge> edges{{0, 1, 2}, {1, 0, 3}};
  const Graph graph = Graph::fromEdges(edges, 2);
  EXPECT_EQ(graph.edgeCount(), 1u);
  EXPECT_EQ(graph.weightBetween(0, 1), 5u);
}

TEST(Graph, SelfLoopRejected) {
  const std::vector<Edge> loop{{1, 1, 1}};
  EXPECT_THROW(Graph::fromEdges(loop, 2), std::invalid_argument);
}

TEST(Graph, FromTripletsCompactsLabels) {
  const std::vector<sparse::AdjacencyTriplet> triplets{
      {100, 500, 2}, {100, 900, 1}};
  const Graph graph = Graph::fromTriplets(triplets);
  EXPECT_EQ(graph.vertexCount(), 3u);
  EXPECT_EQ(graph.label(0), 100u);
  EXPECT_EQ(graph.label(1), 500u);
  EXPECT_EQ(graph.label(2), 900u);
  ASSERT_TRUE(graph.vertexForLabel(500).has_value());
  EXPECT_EQ(*graph.vertexForLabel(500), 1u);
  EXPECT_FALSE(graph.vertexForLabel(123).has_value());
  EXPECT_EQ(graph.weightBetween(0, 1), 2u);
}

TEST(Graph, FromTripletsWithUniverseKeepsIsolated) {
  const std::vector<sparse::AdjacencyTriplet> triplets{{10, 20, 1}};
  const std::vector<std::uint32_t> universe{10, 20, 30};
  const Graph graph = Graph::fromTriplets(triplets, universe);
  EXPECT_EQ(graph.vertexCount(), 3u);
  EXPECT_EQ(graph.degree(*graph.vertexForLabel(30)), 0u);
}

TEST(Graph, FromTripletsMissingLabelRejected) {
  const std::vector<sparse::AdjacencyTriplet> triplets{{10, 99, 1}};
  const std::vector<std::uint32_t> universe{10, 20};
  EXPECT_THROW(Graph::fromTriplets(triplets, universe), std::invalid_argument);
}

TEST(Algorithms, DegreeSequence) {
  const Graph graph = triangleWithTail();
  EXPECT_EQ(degreeSequence(graph),
            (std::vector<std::uint64_t>{2, 2, 3, 1}));
  EXPECT_DOUBLE_EQ(meanDegree(graph), 2.0);
}

TEST(Algorithms, ClusteringOnKnownGraph) {
  const Graph graph = triangleWithTail();
  const auto coefficients = localClusteringCoefficients(graph);
  EXPECT_DOUBLE_EQ(coefficients[0], 1.0);  // both neighbors connected
  EXPECT_DOUBLE_EQ(coefficients[1], 1.0);
  EXPECT_DOUBLE_EQ(coefficients[2], 1.0 / 3.0);  // one of three pairs closed
  EXPECT_DOUBLE_EQ(coefficients[3], 0.0);        // degree 1
}

TEST(Algorithms, CompleteGraphFullyClustered) {
  std::vector<Edge> edges;
  const Vertex n = 8;
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v = u + 1; v < n; ++v) {
      edges.push_back(Edge{u, v, 1});
    }
  }
  const Graph complete = Graph::fromEdges(edges, n);
  EXPECT_EQ(triangleCount(complete), 56u);  // C(8,3)
  EXPECT_DOUBLE_EQ(globalTransitivity(complete), 1.0);
  for (double c : localClusteringCoefficients(complete)) {
    EXPECT_DOUBLE_EQ(c, 1.0);
  }
}

/// O(n^3) reference clustering for the property sweep.
std::vector<double> bruteForceClustering(const Graph& graph) {
  std::vector<double> coefficients(graph.vertexCount(), 0.0);
  for (Vertex v = 0; v < graph.vertexCount(); ++v) {
    const auto row = graph.neighbors(v);
    if (row.size() < 2) {
      continue;
    }
    std::uint64_t closed = 0;
    for (std::size_t a = 0; a < row.size(); ++a) {
      for (std::size_t b = a + 1; b < row.size(); ++b) {
        closed += graph.hasEdge(row[a], row[b]) ? 1 : 0;
      }
    }
    coefficients[v] = static_cast<double>(closed) /
                      (static_cast<double>(row.size()) *
                       static_cast<double>(row.size() - 1) / 2.0);
  }
  return coefficients;
}

class ClusteringProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClusteringProperty, MatchesBruteForceOnRandomGraphs) {
  util::Rng rng(GetParam());
  const Graph graph = erdosRenyi(60, 240, rng);
  const auto fast = localClusteringCoefficients(graph);
  const auto reference = bruteForceClustering(graph);
  ASSERT_EQ(fast.size(), reference.size());
  for (std::size_t v = 0; v < fast.size(); ++v) {
    EXPECT_NEAR(fast[v], reference[v], 1e-12) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusteringProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(Algorithms, VerticesWithinRadius) {
  // Path 0-1-2-3-4.
  std::vector<Edge> edges;
  for (Vertex v = 0; v + 1 < 5; ++v) {
    edges.push_back(Edge{v, static_cast<Vertex>(v + 1), 1});
  }
  const Graph path = Graph::fromEdges(edges, 5);
  EXPECT_EQ(verticesWithinRadius(path, 0, 0), (std::vector<Vertex>{0}));
  EXPECT_EQ(verticesWithinRadius(path, 0, 2), (std::vector<Vertex>{0, 1, 2}));
  EXPECT_EQ(verticesWithinRadius(path, 2, 2),
            (std::vector<Vertex>{0, 1, 2, 3, 4}));
}

TEST(Algorithms, EgoNetworkPreservesInternalEdges) {
  const Graph graph = triangleWithTail();
  const Graph ego = egoNetwork(graph, 0, 1);  // 0 + neighbors {1, 2}
  EXPECT_EQ(ego.vertexCount(), 3u);
  EXPECT_EQ(ego.edgeCount(), 3u);  // the full triangle, incl. edge 1-2
  EXPECT_EQ(ego.weightBetween(*ego.vertexForLabel(1), *ego.vertexForLabel(2)),
            2u);
}

TEST(Algorithms, InducedSubgraphKeepsIsolatedVertices) {
  const Graph graph = triangleWithTail();
  const std::vector<Vertex> pick{0, 3};  // no edge between them
  const Graph sub = inducedSubgraph(graph, pick);
  EXPECT_EQ(sub.vertexCount(), 2u);
  EXPECT_EQ(sub.edgeCount(), 0u);
}

TEST(Algorithms, ConnectedComponents) {
  // Two components: triangle {0,1,2} and edge {3,4}; isolated 5.
  const std::vector<Edge> edges{{0, 1, 1}, {1, 2, 1}, {0, 2, 1}, {3, 4, 1}};
  const Graph graph = Graph::fromEdges(edges, 6);
  const Components components = connectedComponents(graph);
  EXPECT_EQ(components.count(), 3u);
  EXPECT_EQ(components.giantSize(), 3u);
  EXPECT_EQ(components.componentOf[0], components.componentOf[2]);
  EXPECT_NE(components.componentOf[0], components.componentOf[3]);
}

TEST(Generators, ErdosRenyiExactEdgeCount) {
  util::Rng rng(11);
  const Graph graph = erdosRenyi(100, 350, rng);
  EXPECT_EQ(graph.vertexCount(), 100u);
  EXPECT_EQ(graph.edgeCount(), 350u);
}

TEST(Generators, ErdosRenyiRejectsImpossible) {
  util::Rng rng(1);
  EXPECT_THROW(erdosRenyi(3, 10, rng), std::invalid_argument);
}

TEST(Generators, BarabasiAlbertDegreesAndTail) {
  util::Rng rng(13);
  const Graph graph = barabasiAlbert(2000, 3, rng);
  EXPECT_EQ(graph.vertexCount(), 2000u);
  // Every non-seed vertex attaches with >= 3 edges.
  std::uint64_t maxDegree = 0;
  for (Vertex v = 0; v < graph.vertexCount(); ++v) {
    EXPECT_GE(graph.degree(v), 3u);
    maxDegree = std::max(maxDegree, graph.degree(v));
  }
  // Preferential attachment grows hubs far beyond the minimum.
  EXPECT_GT(maxDegree, 30u);
}

TEST(Generators, WattsStrogatzZeroBetaIsLattice) {
  util::Rng rng(17);
  const Graph graph = wattsStrogatz(50, 2, 0.0, rng);
  for (Vertex v = 0; v < graph.vertexCount(); ++v) {
    EXPECT_EQ(graph.degree(v), 4u);
  }
  // Ring lattice with k=2 has transitivity 0.5.
  EXPECT_NEAR(globalTransitivity(graph), 0.5, 1e-9);
}

TEST(Generators, WattsStrogatzRewiringLowersClustering) {
  util::Rng rng(19);
  const Graph ordered = wattsStrogatz(400, 3, 0.0, rng);
  const Graph rewired = wattsStrogatz(400, 3, 0.9, rng);
  EXPECT_EQ(ordered.edgeCount(), rewired.edgeCount());
  EXPECT_GT(globalTransitivity(ordered), globalTransitivity(rewired) + 0.1);
}

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "chisimnet_graph_io";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST_F(IoTest, EdgeListHasOneLinePerEdge) {
  const Graph graph = triangleWithTail();
  const auto path = dir_ / "g.tsv";
  writeEdgeListTsv(graph, path);
  const std::string content = slurp(path);
  EXPECT_EQ(std::count(content.begin(), content.end(), '\n'), 4);
  EXPECT_NE(content.find("2\t3\t4"), std::string::npos);
}

TEST_F(IoTest, GraphMlContainsNodesEdgesAndDegrees) {
  const Graph graph = triangleWithTail();
  const auto path = dir_ / "g.graphml";
  writeGraphMl(graph, path);
  const std::string content = slurp(path);
  EXPECT_NE(content.find("<graphml"), std::string::npos);
  EXPECT_NE(content.find("<node id=\"n0\">"), std::string::npos);
  EXPECT_NE(content.find("attr.name=\"degree\""), std::string::npos);
  // 5 header lines + 4 nodes + 4 edges + 2 closing lines.
  EXPECT_EQ(std::count(content.begin(), content.end(), '\n'), 5 + 4 + 4 + 2);
}

TEST_F(IoTest, DotOutputParses) {
  const Graph graph = triangleWithTail();
  const auto path = dir_ / "g.dot";
  writeDot(graph, path);
  const std::string content = slurp(path);
  EXPECT_NE(content.find("graph G {"), std::string::npos);
  EXPECT_NE(content.find("0 -- 1"), std::string::npos);
}

TEST(Layout, PositionsFiniteAndClustersCloser) {
  // Two triangles joined by one bridge edge: layout should place
  // intra-triangle pairs closer than the triangles' centroids.
  const std::vector<Edge> edges{{0, 1, 5}, {1, 2, 5}, {0, 2, 5},
                                {3, 4, 5}, {4, 5, 5}, {3, 5, 5},
                                {2, 3, 1}};
  const Graph graph = Graph::fromEdges(edges, 6);
  util::Rng rng(23);
  LayoutOptions options;
  options.iterations = 300;
  const auto positions = forceAtlas2Layout(graph, options, rng);
  ASSERT_EQ(positions.size(), 6u);
  for (const Point& point : positions) {
    EXPECT_TRUE(std::isfinite(point.x));
    EXPECT_TRUE(std::isfinite(point.y));
  }
  const auto distance = [&positions](Vertex a, Vertex b) {
    const double dx = positions[a].x - positions[b].x;
    const double dy = positions[a].y - positions[b].y;
    return std::sqrt(dx * dx + dy * dy);
  };
  EXPECT_LT(distance(0, 1), distance(0, 4));
  EXPECT_LT(distance(3, 5), distance(1, 5));
}

TEST_F(IoTest, SvgRendererWritesValidFile) {
  const Graph graph = triangleWithTail();
  util::Rng rng(29);
  const auto positions = forceAtlas2Layout(graph, LayoutOptions{}, rng);
  const auto path = dir_ / "g.svg";
  writeSvg(graph, positions, path);
  const std::string content = slurp(path);
  EXPECT_NE(content.find("<svg"), std::string::npos);
  EXPECT_EQ(std::count(content.begin(), content.end(), '\n'),
            // header+rect+2 group opens+4 edges+4 nodes+2 group closes+close
            2 + 2 + 4 + 4 + 2 + 1);
}

TEST(Layout, EmptyGraph) {
  const Graph graph;
  util::Rng rng(1);
  EXPECT_TRUE(forceAtlas2Layout(graph, LayoutOptions{}, rng).empty());
}

}  // namespace
}  // namespace chisimnet::graph
