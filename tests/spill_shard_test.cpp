#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "chisimnet/elog/clg5.hpp"
#include "chisimnet/elog/log_directory.hpp"
#include "chisimnet/net/checkpoint.hpp"
#include "chisimnet/net/synthesis.hpp"
#include "chisimnet/runtime/fault.hpp"
#include "chisimnet/sparse/adjacency_io.hpp"
#include "chisimnet/sparse/spill.hpp"
#include "chisimnet/util/rng.hpp"

/// Sharded external-merge suite: the shard merge plan (straddler splitting,
/// empty and single-row shards, unknown-range runs), per-shard segment
/// merges whose concatenation must be byte-identical to the serial
/// loser-tree CADJ across readahead modes, the orphaned-.tmp fresh-start
/// sweep, end-to-end byte identity across shard counts and backends, the
/// extended checkpoint manifest (key ranges + merge segments), cross-mode
/// resume under a sharded merge, and kill-during-merge resume that re-merges
/// only the unfinished shards.

namespace chisimnet::sparse {
namespace {

class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : dir_(std::filesystem::temp_directory_path() / name) {
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  ~ScratchDir() {
    std::error_code ignored;
    std::filesystem::remove_all(dir_, ignored);
  }
  const std::filesystem::path& path() const { return dir_; }

 private:
  std::filesystem::path dir_;
};

/// A strictly key-ascending random run: distinct (i, j) pairs, sorted.
std::vector<AdjacencyTriplet> makeRun(util::Rng& rng, std::size_t size,
                                      std::uint32_t personSpace) {
  std::map<std::uint64_t, std::uint64_t> byKey;
  while (byKey.size() < size) {
    const auto a = static_cast<std::uint32_t>(rng.uniformBelow(personSpace));
    const auto b = static_cast<std::uint32_t>(rng.uniformBelow(personSpace));
    if (a == b) {
      continue;
    }
    byKey[packPair(a, b)] += 1 + rng.uniformBelow(100);
  }
  std::vector<AdjacencyTriplet> run;
  run.reserve(byKey.size());
  for (const auto& [key, weight] : byKey) {
    run.push_back(AdjacencyTriplet{pairLow(key), pairHigh(key), weight});
  }
  return run;
}

std::vector<AdjacencyTriplet> bruteForceSum(
    const std::vector<std::vector<AdjacencyTriplet>>& runs) {
  std::map<std::uint64_t, std::uint64_t> sum;
  for (const auto& run : runs) {
    for (const AdjacencyTriplet& triplet : run) {
      sum[packPair(triplet.i, triplet.j)] += triplet.weight;
    }
  }
  std::vector<AdjacencyTriplet> merged;
  merged.reserve(sum.size());
  for (const auto& [key, weight] : sum) {
    merged.push_back(AdjacencyTriplet{pairLow(key), pairHigh(key), weight});
  }
  return merged;
}

std::vector<AdjacencyTriplet> drain(TripletSource& source) {
  std::vector<AdjacencyTriplet> out;
  AdjacencyTriplet triplet;
  while (source.next(triplet)) {
    out.push_back(triplet);
  }
  return out;
}

std::string fileBytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

/// Merges every group serially through mergeShardRuns and splices the
/// segments ascending — the driver's sharded tail, minus the executor.
std::vector<AdjacencyTriplet> mergePlanToTriplets(
    const std::vector<SpillingAccumulator::ShardRunGroup>& plan,
    const std::filesystem::path& dir, SpillReadahead readahead) {
  std::vector<AdjacencyTriplet> out;
  for (const auto& group : plan) {
    const ShardSegment segment = mergeShardRuns(
        group.shard, group.runs,
        dir / ("seg." + std::to_string(group.shard) + ".cseg"), readahead);
    // A segment is a raw CADJ payload, not a CSPL1 run — read it directly.
    std::ifstream in(segment.file, std::ios::binary);
    std::vector<char> bytes(static_cast<std::size_t>(segment.bytes));
    in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    EXPECT_EQ(static_cast<std::uint64_t>(in.gcount()), segment.bytes);
    for (std::uint64_t row = 0; row < segment.triplets; ++row) {
      const char* base = bytes.data() + row * 16;
      auto load32 = [&](std::size_t at) {
        std::uint32_t v = 0;
        std::memcpy(&v, base + at, 4);
        return v;
      };
      std::uint64_t weight = 0;
      std::memcpy(&weight, base + 8, 8);
      out.push_back(AdjacencyTriplet{load32(0), load32(4), weight});
    }
  }
  return out;
}

// ---- shard merge plan ----

TEST(ShardMergePlanTest, StraddlingRunsAreSplitShardPure) {
  ScratchDir scratch("chisimnet_shard_plan_straddle");
  util::Rng rng(101);
  // Row space 64 over 4-row shards: runs from whole-space spills straddle
  // many shard boundaries. (64 persons cap out at C(64,2) = 2016 distinct
  // pairs; stay well below so makeRun terminates.)
  const std::vector<AdjacencyTriplet> adds = makeRun(rng, 1500, 64);

  SpillingAccumulator::Options options;
  options.dir = scratch.path();
  options.rowsPerShard = 4;
  SpillingAccumulator accumulator(options);
  // Adopted whole-space runs (the shape a stage-5 worker produces without
  // splitRows routing) straddle many 4-row shards; plain add()+spillAll
  // runs are shard-pure by construction. Mix both so the plan has to split
  // and regroup.
  const std::size_t slice = adds.size() / 5;
  for (std::size_t begin = 0; begin < adds.size(); begin += slice) {
    const std::size_t end = std::min(adds.size(), begin + slice);
    if ((begin / slice) % 2 == 0) {
      SpillRunWriter writer(scratch.path() /
                            ("w0.x" + std::to_string(begin) + ".spl"));
      writer.append(std::span<const AdjacencyTriplet>(adds.data() + begin,
                                                      end - begin));
      accumulator.adoptRunFile(writer.finish());
    } else {
      for (std::size_t i = begin; i < end; ++i) {
        accumulator.add(adds[i].i, adds[i].j, adds[i].weight);
      }
      accumulator.spillAll();
    }
  }
  const auto plan = accumulator.buildShardMergePlan();
  ASSERT_FALSE(plan.empty());
  std::uint32_t previousShard = 0;
  bool first = true;
  for (const auto& group : plan) {
    EXPECT_TRUE(first || group.shard > previousShard) << "ascending shards";
    previousShard = group.shard;
    first = false;
    for (const SpillRunInfo& run : group.runs) {
      EXPECT_EQ(run.shardOf(options.rowsPerShard),
                static_cast<std::int64_t>(group.shard))
          << run.file;
    }
  }
  // liveRuns() reflects the split set the plan references.
  EXPECT_GT(accumulator.stats().runsSplit, 0u);
  std::size_t planned = 0;
  for (const auto& group : plan) {
    planned += group.runs.size();
  }
  EXPECT_EQ(planned, accumulator.liveRuns().size());

  EXPECT_EQ(
      mergePlanToTriplets(plan, scratch.path(), SpillReadahead::kNone),
      bruteForceSum({adds}));
}

TEST(ShardMergePlanTest, EmptyAndSingleRowShards) {
  ScratchDir scratch("chisimnet_shard_plan_sparse_rows");
  SpillingAccumulator::Options options;
  options.dir = scratch.path();
  options.rowsPerShard = 1;  // every row its own shard
  SpillingAccumulator accumulator(options);
  // Rows 2, 7 and 40 only: shards in between stay empty and absent.
  accumulator.add(2, 90, 1);
  accumulator.add(7, 8, 2);
  accumulator.add(7, 9, 3);
  accumulator.add(40, 41, 4);
  accumulator.spillAll();
  const auto plan = accumulator.buildShardMergePlan();
  ASSERT_EQ(plan.size(), 3u);
  EXPECT_EQ(plan[0].shard, 2u);
  EXPECT_EQ(plan[1].shard, 7u);
  EXPECT_EQ(plan[2].shard, 40u);
  const std::vector<AdjacencyTriplet> want = {
      AdjacencyTriplet{2, 90, 1}, AdjacencyTriplet{7, 8, 2},
      AdjacencyTriplet{7, 9, 3}, AdjacencyTriplet{40, 41, 4}};
  EXPECT_EQ(
      mergePlanToTriplets(plan, scratch.path(), SpillReadahead::kNone), want);
}

TEST(ShardMergePlanTest, EmptyAccumulatorYieldsEmptyPlan) {
  ScratchDir scratch("chisimnet_shard_plan_empty");
  SpillingAccumulator::Options options;
  options.dir = scratch.path();
  SpillingAccumulator accumulator(options);
  EXPECT_TRUE(accumulator.buildShardMergePlan().empty());
}

TEST(ShardMergePlanTest, UnknownRangeRunIsSplit) {
  ScratchDir scratch("chisimnet_shard_plan_unknown_range");
  util::Rng rng(103);
  // C(32,2) = 496 distinct pairs max; stay below so makeRun terminates.
  const std::vector<AdjacencyTriplet> run = makeRun(rng, 400, 32);
  SpillRunInfo info;
  {
    SpillRunWriter writer(scratch.path() / "run.0.spl");
    writer.append(std::span<const AdjacencyTriplet>(run));
    info = writer.finish();
  }
  // Model a pre-range manifest: the restored run has no recorded key range
  // and must be treated as a potential straddler.
  info.hasKeyRange = false;
  info.firstKey = 0;
  info.lastKey = 0;
  SpillingAccumulator::Options options;
  options.dir = scratch.path();
  options.rowsPerShard = 8;
  SpillingAccumulator accumulator(options);
  accumulator.restoreRunFile(info);
  const auto plan = accumulator.buildShardMergePlan();
  EXPECT_GT(accumulator.stats().runsSplit, 0u);
  EXPECT_EQ(
      mergePlanToTriplets(plan, scratch.path(), SpillReadahead::kNone), run);
}

// ---- segment concatenation vs the serial merge ----

TEST(ShardMergeTest, SegmentsConcatenateByteIdenticalToSerialCadj) {
  ScratchDir scratch("chisimnet_shard_concat");
  util::Rng rng(107);
  // 96 persons allow C(96,2) = 4560 distinct pairs; stay below that.
  const std::vector<AdjacencyTriplet> adds = makeRun(rng, 3000, 96);

  const auto feed = [&](SpillingAccumulator& accumulator) {
    const std::size_t slice = adds.size() / 7;
    for (std::size_t begin = 0; begin < adds.size(); begin += slice) {
      const std::size_t end = std::min(adds.size(), begin + slice);
      for (std::size_t i = begin; i < end; ++i) {
        accumulator.add(adds[i].i, adds[i].j, adds[i].weight);
      }
      accumulator.spillAll();
    }
  };

  // Serial reference: one loser tree over all runs into a CADJ.
  const std::filesystem::path serialOut = scratch.path() / "serial.cadj";
  {
    SpillingAccumulator::Options options;
    options.dir = scratch.path() / "serial";
    SpillingAccumulator accumulator(options);
    feed(accumulator);
    const auto merged = accumulator.finishMerge();
    StreamingTripletWriter writer(serialOut);
    AdjacencyTriplet triplet;
    while (merged->next(triplet)) {
      writer.append(triplet);
    }
    writer.finish();
  }
  const std::string serialBytes = fileBytes(serialOut);

  for (const SpillReadahead readahead :
       {SpillReadahead::kNone, SpillReadahead::kDoubleBuffer,
        SpillReadahead::kFadvise}) {
    const std::string label =
        "readahead " + std::to_string(static_cast<std::uint32_t>(readahead));
    SpillingAccumulator::Options options;
    options.dir =
        scratch.path() /
        ("sharded" + std::to_string(static_cast<std::uint32_t>(readahead)));
    options.rowsPerShard = 16;  // 96-row space -> several shards
    SpillingAccumulator accumulator(options);
    feed(accumulator);
    const auto plan = accumulator.buildShardMergePlan();
    ASSERT_GT(plan.size(), 1u) << label;
    const std::filesystem::path out =
        scratch.path() / (label + ".cadj");
    StreamingTripletWriter writer(out);
    for (const auto& group : plan) {
      const ShardSegment segment = mergeShardRuns(
          group.shard, group.runs,
          options.dir / ("seg." + std::to_string(group.shard) + ".cseg"),
          readahead);
      writer.appendSegmentFile(segment.file,
                               TripletSegmentInfo{segment.triplets,
                                                  segment.bytes, segment.crc});
    }
    writer.finish();
    EXPECT_EQ(fileBytes(out), serialBytes) << label;
  }
}

TEST(ShardMergeTest, ReadaheadReaderDetectsTruncation) {
  ScratchDir scratch("chisimnet_shard_readahead_trunc");
  util::Rng rng(109);
  const std::vector<AdjacencyTriplet> run = makeRun(rng, 5000, 1u << 16);
  const std::filesystem::path path = scratch.path() / "run.0.spl";
  {
    SpillRunWriter writer(path);
    writer.append(std::span<const AdjacencyTriplet>(run));
    writer.finish();
  }
  std::filesystem::resize_file(path, std::filesystem::file_size(path) / 2);
  // The corruption is found on the prefetcher thread; the error must
  // surface on the consumer with the same file-and-offset context.
  SpillRunReader reader(path, SpillReadahead::kDoubleBuffer);
  try {
    drain(reader);
    FAIL() << "truncated run should be rejected through the prefetcher";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find(path.string()), std::string::npos) << what;
    EXPECT_NE(what.find("truncated"), std::string::npos) << what;
  }
}

// ---- fresh-start GC of orphaned .tmp run files ----

TEST(SpillGcTest, FreshStartSweepsOrphanedTmpRuns) {
  ScratchDir scratch("chisimnet_shard_tmp_sweep");
  // A SIGKILL during spill-write leaves a complete-but-unrenamed .tmp; a
  // fresh (non-checkpoint) accumulator over the same directory must sweep
  // it instead of letting husks accumulate across restarts.
  const std::filesystem::path orphan = scratch.path() / "run.3.spl.tmp";
  {
    std::ofstream husk(orphan, std::ios::binary);
    husk << "torn spill write";
  }
  // Foreign prefixes are not ours to clean.
  const std::filesystem::path foreign = scratch.path() / "other.1.spl.tmp";
  {
    std::ofstream keep(foreign, std::ios::binary);
    keep << "different prefix";
  }
  SpillingAccumulator::Options options;
  options.dir = scratch.path();
  SpillingAccumulator accumulator(options);
  EXPECT_FALSE(std::filesystem::exists(orphan));
  EXPECT_TRUE(std::filesystem::exists(foreign));
  // The sweep must not disturb numbering of real runs.
  accumulator.add(1, 2, 3);
  accumulator.spillAll();
  ASSERT_EQ(accumulator.liveRuns().size(), 1u);
  EXPECT_EQ(drain(*accumulator.finishMerge()),
            (std::vector<AdjacencyTriplet>{AdjacencyTriplet{1, 2, 3}}));
}

}  // namespace
}  // namespace chisimnet::sparse

namespace chisimnet::net {
namespace {

using runtime::FaultAction;
using runtime::FaultInjected;
using runtime::FaultPlan;
using runtime::FaultSpec;
using table::Event;
using table::Hour;

struct FuzzCase {
  table::EventTable events;
  Hour windowStart = 0;
  Hour windowEnd = 0;
};

FuzzCase makeCase(std::uint64_t seed) {
  util::Rng rng(seed * 2654435761u + 17);
  FuzzCase out;
  const auto persons = static_cast<std::uint32_t>(40 + rng.uniformBelow(80));
  const auto places = static_cast<std::uint32_t>(4 + rng.uniformBelow(10));
  out.windowStart = static_cast<Hour>(rng.uniformBelow(8));
  out.windowEnd =
      out.windowStart + 24 + static_cast<Hour>(rng.uniformBelow(48));
  const std::size_t count = 200 + rng.uniformBelow(200);
  for (std::size_t i = 0; i < count; ++i) {
    const Hour start = static_cast<Hour>(rng.uniformBelow(out.windowEnd + 8));
    const Hour end = start + 1 + static_cast<Hour>(rng.uniformBelow(9));
    out.events.append(Event{
        start, end, static_cast<table::PersonId>(rng.uniformBelow(persons)),
        static_cast<table::ActivityId>(rng.uniformBelow(5)),
        static_cast<table::PlaceId>(rng.uniformBelow(places))});
  }
  return out;
}

std::vector<std::filesystem::path> writePlacePartitionedFiles(
    const table::EventTable& events, const std::filesystem::path& dir,
    int fileCount) {
  std::vector<std::vector<Event>> buffers(
      static_cast<std::size_t>(fileCount));
  for (std::uint64_t row = 0; row < events.size(); ++row) {
    const Event event = events.row(row);
    buffers[event.place % static_cast<std::uint32_t>(fileCount)].push_back(
        event);
  }
  std::vector<std::filesystem::path> files;
  for (int i = 0; i < fileCount; ++i) {
    const auto path = elog::logFilePath(dir, i);
    elog::ChunkedLogWriter writer(path);
    auto& buffer = buffers[static_cast<std::size_t>(i)];
    std::sort(buffer.begin(), buffer.end());
    for (std::size_t begin = 0; begin < buffer.size(); begin += 32) {
      const std::size_t end = std::min(buffer.size(), begin + 32);
      writer.writeChunk(
          std::span<const Event>(buffer.data() + begin, end - begin));
    }
    writer.close();
    files.push_back(path);
  }
  return files;
}

class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : dir_(std::filesystem::temp_directory_path() / name) {
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  ~ScratchDir() {
    std::error_code ignored;
    std::filesystem::remove_all(dir_, ignored);
  }
  const std::filesystem::path& path() const { return dir_; }

 private:
  std::filesystem::path dir_;
};

std::string fileBytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// ---- byte identity across shard counts and backends ----

/// Acceptance: the final CADJ must be byte-identical across reduce-shard
/// counts, both backends and the serial baseline — and identical to
/// saveAdjacency of the unbudgeted dense result.
TEST(ShardedSynthesisTest, ByteIdenticalAcrossShardCountsAndBackends) {
  const FuzzCase fuzz = makeCase(301);
  ScratchDir scratch("chisimnet_shard_synth_identity");
  const auto files =
      writePlacePartitionedFiles(fuzz.events, scratch.path(), 4);

  SynthesisConfig config;
  config.windowStart = fuzz.windowStart;
  config.windowEnd = fuzz.windowEnd;
  config.workers = 3;

  // Reference bytes: the unbudgeted dense result through saveAdjacency.
  const std::filesystem::path densePath = scratch.path() / "dense.cadj";
  {
    NetworkSynthesizer dense(config);
    sparse::saveAdjacency(dense.synthesizeAdjacency(files), densePath);
  }
  const std::string want = fileBytes(densePath);

  config.memoryBudgetBytes = std::uint64_t{32} << 20;
  config.mergeRowsPerShard = 8;  // small rows force a multi-shard layout
  int variant = 0;
  for (const SynthesisBackend backend :
       {SynthesisBackend::kSharedMemory, SynthesisBackend::kMessagePassing}) {
    for (const unsigned reduceShards : {1u, 3u, 5u}) {
      const std::string label = std::string(backendName(backend)) +
                                " shards " + std::to_string(reduceShards);
      config.backend = backend;
      config.reduceShards = reduceShards;
      ScratchDir spill("chisimnet_shard_synth_identity_spill_" +
                       std::to_string(variant));
      config.spillDir = spill.path();
      const std::filesystem::path out =
          scratch.path() / ("v" + std::to_string(variant) + ".cadj");
      ++variant;
      NetworkSynthesizer synthesizer(config);
      synthesizer.synthesizeToFile(files, out);
      EXPECT_EQ(fileBytes(out), want) << label;
      const SynthesisReport& report = synthesizer.report();
      EXPECT_EQ(report.reduceShardsUsed, reduceShards) << label;
      if (reduceShards > 1) {
        EXPECT_GT(report.mergeSegmentsWritten, 0u) << label;
        EXPECT_GE(report.mergeSeconds, report.mergeCriticalSeconds) << label;
      }
    }
  }
}

// ---- checkpoint manifest: key ranges + merge segments ----

TEST(ShardedCheckpointTest, ManifestRoundTripsRangesAndMergeSegments) {
  ScratchDir scratch("chisimnet_shard_manifest");
  const auto spillDir = scratch.path() / "spill";
  std::filesystem::create_directories(spillDir);
  sparse::SpillRunInfo run;
  {
    sparse::SpillRunWriter writer(spillDir / "run.0.spl");
    writer.append(sparse::AdjacencyTriplet{3, 9, 5});
    writer.append(sparse::AdjacencyTriplet{7, 8, 2});
    run = writer.finish();
  }
  ASSERT_TRUE(run.hasKeyRange);
  // A fake segment file the manifest references; only identity fields are
  // round-tripped here, content is irrelevant.
  {
    std::ofstream segment(spillDir / "seg.0.cseg", std::ios::binary);
    segment << "payload";
  }
  std::ofstream(spillDir / "seg.9.cseg") << "orphan";      // GC target
  std::ofstream(spillDir / "seg.4.cseg.tmp") << "husk";    // GC target

  CheckpointManifest manifest;
  manifest.spillMode = true;
  manifest.filesConsumed = 2;
  manifest.batchesDone = 1;
  manifest.configHash = 0xC0FFEE;
  manifest.spillRuns.push_back(SpillRunEntry{run.file.filename().string(),
                                             run.triplets, run.bytes,
                                             run.hasKeyRange, run.firstKey,
                                             run.lastKey});
  manifest.mergeSegments.push_back(
      MergeSegmentEntry{0, "seg.0.cseg", 2, 32, 0xABCD1234});
  saveSpillCheckpoint(scratch.path(), manifest, spillDir);

  const auto loaded = loadCheckpointManifest(scratch.path());
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->spillRuns.size(), 1u);
  EXPECT_TRUE(loaded->spillRuns[0].hasKeyRange);
  EXPECT_EQ(loaded->spillRuns[0].firstKey, run.firstKey);
  EXPECT_EQ(loaded->spillRuns[0].lastKey, run.lastKey);
  ASSERT_EQ(loaded->mergeSegments.size(), 1u);
  EXPECT_EQ(loaded->mergeSegments[0].shard, 0u);
  EXPECT_EQ(loaded->mergeSegments[0].file, "seg.0.cseg");
  EXPECT_EQ(loaded->mergeSegments[0].triplets, 2u);
  EXPECT_EQ(loaded->mergeSegments[0].bytes, 32u);
  EXPECT_EQ(loaded->mergeSegments[0].crc, 0xABCD1234u);
  // GC: the referenced segment survives; the orphan and .tmp husk go.
  EXPECT_TRUE(std::filesystem::exists(spillDir / "seg.0.cseg"));
  EXPECT_FALSE(std::filesystem::exists(spillDir / "seg.9.cseg"));
  EXPECT_FALSE(std::filesystem::exists(spillDir / "seg.4.cseg.tmp"));
}

// ---- kill during the sharded merge ----

/// Acceptance: kill the run between per-shard segments (spill.shard site),
/// resume, and require (a) byte-identical output and (b) that only the
/// unfinished shards were re-merged — the checkpointed segments splice in.
TEST(ShardedSynthesisTest, KillDuringMergeResumesOnlyUnfinishedShards) {
  const FuzzCase fuzz = makeCase(303);
  ScratchDir scratch("chisimnet_shard_kill_merge");
  const auto files =
      writePlacePartitionedFiles(fuzz.events, scratch.path(), 4);
  ScratchDir checkpoints("chisimnet_shard_kill_merge_ckpt");

  SynthesisConfig config;
  config.windowStart = fuzz.windowStart;
  config.windowEnd = fuzz.windowEnd;
  config.workers = 2;
  config.filesPerBatch = 2;
  config.memoryBudgetBytes = std::uint64_t{32} << 20;
  config.reduceShards = 3;
  config.mergeRowsPerShard = 8;

  // Reference: uninterrupted sharded run, no checkpointing.
  const std::filesystem::path referencePath = scratch.path() / "ref.cadj";
  std::uint64_t totalSegments = 0;
  {
    NetworkSynthesizer reference(config);
    reference.synthesizeToFile(files, referencePath);
    totalSegments = reference.report().mergeSegmentsWritten;
  }
  const std::string want = fileBytes(referencePath);

  ASSERT_GE(totalSegments, 4u) << "case must leave unfinished shards after "
                                  "every owner dies";

  config.checkpointDir = checkpoints.path();
  {
    // Arm every hit from 2 on: the executor keeps surviving owners merging
    // after one throws, so a single-hit fault would let them finish the
    // whole plan before the exception surfaces. With all later hits armed,
    // each owner dies right after its next checkpointed segment — at most
    // one extra segment per concurrently-running owner completes.
    FaultPlan plan;
    for (std::uint64_t hit = 2; hit <= 64; ++hit) {
      plan.at("spill.shard",
              FaultSpec{.action = FaultAction::kThrow, .hit = hit});
    }
    runtime::fault::ScopedFaultPlan scoped(plan);
    NetworkSynthesizer interrupted(config);
    EXPECT_THROW(
        interrupted.synthesizeToFile(files, scratch.path() / "dead.cadj"),
        FaultInjected);
  }
  // The manifest names the finished segments: at least the two that
  // checkpointed before the first throw, but not the full plan.
  const auto manifest = loadCheckpointManifest(checkpoints.path());
  ASSERT_TRUE(manifest.has_value());
  EXPECT_TRUE(manifest->spillMode);
  const std::size_t finished = manifest->mergeSegments.size();
  ASSERT_GE(finished, 2u);
  ASSERT_LT(finished, totalSegments);
  for (const MergeSegmentEntry& segment : manifest->mergeSegments) {
    EXPECT_TRUE(std::filesystem::exists(checkpoints.path() / "spill" /
                                        segment.file))
        << segment.file;
  }

  config.resume = true;
  const std::filesystem::path resumedPath = scratch.path() / "resumed.cadj";
  NetworkSynthesizer resumed(config);
  resumed.synthesizeToFile(files, resumedPath);
  EXPECT_EQ(fileBytes(resumedPath), want);
  const SynthesisReport& report = resumed.report();
  EXPECT_TRUE(report.resumed);
  EXPECT_EQ(report.mergeSegmentsReused, finished);
  EXPECT_GT(report.mergeSegmentsWritten, 0u);
  EXPECT_EQ(report.mergeSegmentsWritten + report.mergeSegmentsReused,
            totalSegments);
}

// ---- cross-mode resume under the sharded merge ----

/// A dense (unbudgeted) checkpoint resumed into a budgeted sharded-merge
/// run, and a sharded spill checkpoint resumed into a dense run: both must
/// reproduce the uninterrupted bytes. The budget and shard knobs stay
/// outside the config hash, so the cross-mode switch is legal.
TEST(ShardedSynthesisTest, CrossModeResumeUnderShardedMerge) {
  const FuzzCase fuzz = makeCase(307);
  ScratchDir scratch("chisimnet_shard_cross_mode");
  const auto files =
      writePlacePartitionedFiles(fuzz.events, scratch.path(), 6);

  SynthesisConfig base;
  base.windowStart = fuzz.windowStart;
  base.windowEnd = fuzz.windowEnd;
  base.workers = 2;
  base.filesPerBatch = 2;

  // Reference bytes from the unbudgeted dense path.
  const std::filesystem::path densePath = scratch.path() / "dense.cadj";
  {
    NetworkSynthesizer dense(base);
    sparse::saveAdjacency(dense.synthesizeAdjacency(files), densePath);
  }
  const std::string want = fileBytes(densePath);

  // dense checkpoint -> sharded budgeted resume.
  {
    ScratchDir checkpoints("chisimnet_shard_cross_mode_d2s");
    SynthesisConfig config = base;
    config.checkpointDir = checkpoints.path();
    {
      FaultPlan plan;
      plan.at("driver.batch",
              FaultSpec{.action = FaultAction::kThrow, .hit = 2});
      runtime::fault::ScopedFaultPlan scoped(plan);
      NetworkSynthesizer interrupted(config);
      EXPECT_THROW(interrupted.synthesizeAdjacency(files), FaultInjected);
    }
    config.resume = true;
    config.memoryBudgetBytes = std::uint64_t{32} << 20;
    config.reduceShards = 3;
    config.mergeRowsPerShard = 8;
    const std::filesystem::path out = scratch.path() / "d2s.cadj";
    NetworkSynthesizer resumed(config);
    resumed.synthesizeToFile(files, out);
    EXPECT_EQ(fileBytes(out), want) << "dense -> sharded spill";
    EXPECT_GT(resumed.report().mergeSegmentsWritten, 0u);
  }

  // sharded spill checkpoint -> dense resume (the 6-field manifest entries
  // must parse and fold into the dense map).
  {
    ScratchDir checkpoints("chisimnet_shard_cross_mode_s2d");
    SynthesisConfig config = base;
    config.checkpointDir = checkpoints.path();
    config.memoryBudgetBytes = std::uint64_t{32} << 20;
    config.reduceShards = 3;
    config.mergeRowsPerShard = 8;
    {
      FaultPlan plan;
      plan.at("driver.batch",
              FaultSpec{.action = FaultAction::kThrow, .hit = 2});
      runtime::fault::ScopedFaultPlan scoped(plan);
      NetworkSynthesizer interrupted(config);
      EXPECT_THROW(
          interrupted.synthesizeToFile(files, scratch.path() / "dead.cadj"),
          FaultInjected);
    }
    config.resume = true;
    config.memoryBudgetBytes = 0;
    config.reduceShards = 0;
    config.mergeRowsPerShard = 0;
    const std::filesystem::path out = scratch.path() / "s2d.cadj";
    NetworkSynthesizer resumed(config);
    sparse::saveAdjacency(resumed.synthesizeAdjacency(files), out);
    EXPECT_EQ(fileBytes(out), want) << "sharded spill -> dense";
  }
}

}  // namespace
}  // namespace chisimnet::net
