#include <gtest/gtest.h>

#include <algorithm>

#include "chisimnet/table/event_table.hpp"
#include "chisimnet/util/rng.hpp"

namespace chisimnet::table {
namespace {

Event makeEvent(Hour start, Hour end, PersonId person, PlaceId place,
                ActivityId activity = 0) {
  return Event{start, end, person, activity, place};
}

/// Random table for property sweeps.
EventTable randomTable(std::uint64_t seed, std::size_t rows, Hour horizon,
                       PersonId persons, PlaceId places) {
  util::Rng rng(seed);
  EventTable table;
  for (std::size_t i = 0; i < rows; ++i) {
    const Hour start = static_cast<Hour>(rng.uniformBelow(horizon));
    const Hour end =
        start + 1 + static_cast<Hour>(rng.uniformBelow(12));
    table.append(makeEvent(start, end,
                           static_cast<PersonId>(rng.uniformBelow(persons)),
                           static_cast<PlaceId>(rng.uniformBelow(places)),
                           static_cast<ActivityId>(rng.uniformBelow(5))));
  }
  return table;
}

TEST(Event, SchemaIs20Bytes) { EXPECT_EQ(sizeof(Event), 20u); }

TEST(Event, OverlapsWindowSemantics) {
  const Event event = makeEvent(10, 14, 0, 0);
  EXPECT_TRUE(overlapsWindow(event, 10, 14));
  EXPECT_TRUE(overlapsWindow(event, 13, 20));
  EXPECT_TRUE(overlapsWindow(event, 0, 11));
  EXPECT_FALSE(overlapsWindow(event, 14, 20));  // half-open: end excluded
  EXPECT_FALSE(overlapsWindow(event, 0, 10));   // half-open: start excluded
  EXPECT_TRUE(overlapsWindow(event, 0, 100));
}

TEST(EventTable, AppendAndRowRoundTrip) {
  EventTable table;
  const Event event = makeEvent(1, 5, 42, 7, 3);
  table.append(event);
  ASSERT_EQ(table.size(), 1u);
  EXPECT_EQ(table.row(0), event);
}

TEST(EventTable, RowOutOfRangeThrows) {
  EventTable table;
  EXPECT_THROW(table.row(0), std::invalid_argument);
}

TEST(EventTable, BulkConstructionMatchesAppend) {
  const std::vector<Event> events{makeEvent(0, 2, 1, 1), makeEvent(3, 4, 2, 2)};
  const EventTable table{std::span<const Event>(events)};
  ASSERT_EQ(table.size(), 2u);
  EXPECT_EQ(table.row(0), events[0]);
  EXPECT_EQ(table.row(1), events[1]);
}

TEST(EventTable, SortByStartOrdersRows) {
  EventTable table = randomTable(1, 500, 100, 50, 20);
  table.sortByStart();
  ASSERT_TRUE(table.isSortedByStart());
  const auto starts = table.startColumn();
  EXPECT_TRUE(std::is_sorted(starts.begin(), starts.end()));
}

TEST(EventTable, SortKeepsRowIntegrity) {
  EventTable table;
  table.append(makeEvent(5, 6, 100, 200, 1));
  table.append(makeEvent(1, 9, 101, 201, 2));
  table.sortByStart();
  EXPECT_EQ(table.row(0), makeEvent(1, 9, 101, 201, 2));
  EXPECT_EQ(table.row(1), makeEvent(5, 6, 100, 200, 1));
}

TEST(EventTable, SortIsIdempotent) {
  EventTable table = randomTable(2, 100, 50, 10, 5);
  table.sortByStart();
  const Event first = table.row(0);
  table.sortByStart();
  EXPECT_EQ(table.row(0), first);
}

TEST(EventTable, SubsetQueriesRequireSort) {
  EventTable table = randomTable(3, 10, 50, 5, 5);
  EXPECT_THROW(table.rowsStartingIn(0, 10), std::invalid_argument);
  EXPECT_THROW(table.rowsOverlapping(0, 10), std::invalid_argument);
}

TEST(EventTable, RowsStartingInMatchesLinearScan) {
  EventTable table = randomTable(4, 2000, 200, 100, 40);
  table.sortByStart();
  for (Hour lo : {0u, 10u, 77u, 150u}) {
    const Hour hi = lo + 25;
    const auto rows = table.rowsStartingIn(lo, hi);
    std::uint64_t expected = 0;
    for (std::uint64_t i = 0; i < table.size(); ++i) {
      const Event event = table.row(i);
      if (event.start >= lo && event.start < hi) {
        ++expected;
      }
    }
    EXPECT_EQ(rows.size(), expected) << "window [" << lo << "," << hi << ")";
    for (RowIndex row : rows) {
      const Event event = table.row(row);
      EXPECT_GE(event.start, lo);
      EXPECT_LT(event.start, hi);
    }
  }
}

class OverlapProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OverlapProperty, RowsOverlappingMatchesLinearScan) {
  const std::uint64_t seed = GetParam();
  EventTable table = randomTable(seed, 1500, 300, 80, 30);
  table.sortByStart();
  util::Rng rng(seed + 1000);
  for (int trial = 0; trial < 10; ++trial) {
    const Hour lo = static_cast<Hour>(rng.uniformBelow(300));
    const Hour hi = lo + 1 + static_cast<Hour>(rng.uniformBelow(60));
    auto rows = table.rowsOverlapping(lo, hi);
    std::vector<RowIndex> expected;
    for (std::uint64_t i = 0; i < table.size(); ++i) {
      if (overlapsWindow(table.row(i), lo, hi)) {
        expected.push_back(i);
      }
    }
    std::sort(rows.begin(), rows.end());
    EXPECT_EQ(rows, expected) << "seed=" << seed << " window=[" << lo << ","
                              << hi << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OverlapProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(EventTable, RowsOverlappingEmptyWindow) {
  EventTable table = randomTable(6, 100, 50, 10, 5);
  table.sortByStart();
  EXPECT_TRUE(table.rowsOverlapping(10, 10).empty());
  EXPECT_TRUE(table.rowsOverlapping(20, 10).empty());
}

TEST(EventTable, RowsOverlappingCatchesLongStraddlers) {
  EventTable table;
  table.append(makeEvent(0, 100, 1, 1));   // long event straddling everything
  for (Hour h = 1; h < 50; ++h) {
    table.append(makeEvent(h, h + 1, 2, 2));
  }
  table.sortByStart();
  const auto rows = table.rowsOverlapping(80, 90);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(table.row(rows[0]).person, 1u);
}

TEST(EventTable, SelectRowsPreservesOrder) {
  EventTable table = randomTable(7, 50, 30, 10, 5);
  const std::vector<RowIndex> picks{9, 3, 27};
  const EventTable subset = table.selectRows(picks);
  ASSERT_EQ(subset.size(), 3u);
  EXPECT_EQ(subset.row(0), table.row(9));
  EXPECT_EQ(subset.row(1), table.row(3));
  EXPECT_EQ(subset.row(2), table.row(27));
}

TEST(EventTable, FilterKeepsMatching) {
  EventTable table = randomTable(8, 400, 100, 20, 10);
  const EventTable filtered =
      table.filter([](const Event& event) { return event.person < 5; });
  std::uint64_t expected = 0;
  for (std::uint64_t i = 0; i < table.size(); ++i) {
    expected += table.row(i).person < 5 ? 1 : 0;
  }
  EXPECT_EQ(filtered.size(), expected);
  for (std::uint64_t i = 0; i < filtered.size(); ++i) {
    EXPECT_LT(filtered.row(i).person, 5u);
  }
}

TEST(EventTable, UniquePlacesAndPersonsSortedDistinct) {
  EventTable table;
  table.append(makeEvent(0, 1, 5, 9));
  table.append(makeEvent(1, 2, 5, 3));
  table.append(makeEvent(2, 3, 2, 9));
  const auto places = table.uniquePlaces();
  const auto persons = table.uniquePersons();
  EXPECT_EQ(places, (std::vector<PlaceId>{3, 9}));
  EXPECT_EQ(persons, (std::vector<PersonId>{2, 5}));
}

TEST(EventTable, PlaceIndexGroupsAllRows) {
  EventTable table = randomTable(9, 800, 100, 40, 15);
  const PlaceIndex index = table.buildPlaceIndex();
  EXPECT_EQ(index.placeIds.size() + 1, index.offsets.size());
  EXPECT_EQ(index.rows.size(), table.size());

  std::uint64_t total = 0;
  for (std::size_t group = 0; group < index.placeIds.size(); ++group) {
    const PlaceId place = index.placeIds[group];
    for (RowIndex row : index.groupRows(group)) {
      EXPECT_EQ(table.row(row).place, place);
      ++total;
    }
  }
  EXPECT_EQ(total, table.size());
}

TEST(EventTable, PlaceIndexFind) {
  EventTable table;
  table.append(makeEvent(0, 1, 0, 10));
  table.append(makeEvent(0, 1, 0, 30));
  const PlaceIndex index = table.buildPlaceIndex();
  EXPECT_EQ(index.find(10), 0u);
  EXPECT_EQ(index.find(30), 1u);
  EXPECT_EQ(index.find(20), PlaceIndex::npos);
}

TEST(EventTable, MaxEnd) {
  EventTable table;
  EXPECT_EQ(table.maxEnd(), 0u);
  table.append(makeEvent(0, 7, 0, 0));
  table.append(makeEvent(2, 3, 0, 0));
  EXPECT_EQ(table.maxEnd(), 7u);
}

TEST(EventTable, ClearResets) {
  EventTable table = randomTable(10, 10, 10, 5, 5);
  table.sortByStart();
  table.clear();
  EXPECT_TRUE(table.empty());
  EXPECT_FALSE(table.isSortedByStart());
}

}  // namespace
}  // namespace chisimnet::table
