#include <gtest/gtest.h>

#include <map>
#include <set>

#include "chisimnet/pop/population.hpp"
#include "chisimnet/pop/types.hpp"

namespace chisimnet::pop {
namespace {

PopulationConfig smallConfig(std::uint32_t persons = 5000,
                             std::uint64_t seed = 42) {
  PopulationConfig config;
  config.personCount = persons;
  config.seed = seed;
  return config;
}

TEST(Types, AgeGroupBoundaries) {
  EXPECT_EQ(ageGroupForAge(0), AgeGroup::kChild0to14);
  EXPECT_EQ(ageGroupForAge(14), AgeGroup::kChild0to14);
  EXPECT_EQ(ageGroupForAge(15), AgeGroup::kTeen15to18);
  EXPECT_EQ(ageGroupForAge(18), AgeGroup::kTeen15to18);
  EXPECT_EQ(ageGroupForAge(19), AgeGroup::kAdult19to44);
  EXPECT_EQ(ageGroupForAge(44), AgeGroup::kAdult19to44);
  EXPECT_EQ(ageGroupForAge(45), AgeGroup::kAdult45to64);
  EXPECT_EQ(ageGroupForAge(64), AgeGroup::kAdult45to64);
  EXPECT_EQ(ageGroupForAge(65), AgeGroup::kSenior65plus);
  EXPECT_EQ(ageGroupForAge(99), AgeGroup::kSenior65plus);
}

TEST(Types, Names) {
  EXPECT_EQ(ageGroupName(AgeGroup::kChild0to14), "0-14");
  EXPECT_EQ(ageGroupName(AgeGroup::kSenior65plus), "65+");
  EXPECT_EQ(placeTypeName(PlaceType::kClassroom), "classroom");
  EXPECT_EQ(activity::name(activity::kSchoolLunch), "school-lunch");
}

TEST(Population, DeterministicForSameSeed) {
  const auto a = SyntheticPopulation::generate(smallConfig(2000, 7));
  const auto b = SyntheticPopulation::generate(smallConfig(2000, 7));
  ASSERT_EQ(a.persons().size(), b.persons().size());
  ASSERT_EQ(a.places().size(), b.places().size());
  for (std::size_t i = 0; i < a.persons().size(); ++i) {
    EXPECT_EQ(a.persons()[i].home, b.persons()[i].home);
    EXPECT_EQ(a.persons()[i].age, b.persons()[i].age);
    EXPECT_EQ(a.persons()[i].workplace, b.persons()[i].workplace);
  }
}

TEST(Population, DifferentSeedsDiffer) {
  const auto a = SyntheticPopulation::generate(smallConfig(2000, 1));
  const auto b = SyntheticPopulation::generate(smallConfig(2000, 2));
  int differences = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    differences += a.persons()[i].age != b.persons()[i].age ? 1 : 0;
  }
  EXPECT_GT(differences, 10);
}

TEST(Population, AgeGroupFractionsMatchConfig) {
  const auto population = SyntheticPopulation::generate(smallConfig(50000));
  const auto counts = population.ageGroupCounts();
  const auto& fractions = population.config().ageFractions;
  for (std::size_t g = 0; g < kAgeGroupCount; ++g) {
    const double observed =
        static_cast<double>(counts[g]) / population.persons().size();
    EXPECT_NEAR(observed, fractions[g], 0.02)
        << ageGroupName(static_cast<AgeGroup>(g));
  }
}

TEST(Population, AgesConsistentWithGroups) {
  const auto population = SyntheticPopulation::generate(smallConfig());
  for (const Person& person : population.persons()) {
    EXPECT_EQ(ageGroupForAge(person.age), person.group);
  }
}

TEST(Population, EveryPersonHasAHousehold) {
  const auto population = SyntheticPopulation::generate(smallConfig());
  for (const Person& person : population.persons()) {
    ASSERT_NE(person.home, kNoPlace);
    const Place& home = population.place(person.home);
    EXPECT_EQ(home.type, PlaceType::kHousehold);
    EXPECT_EQ(home.neighborhood, person.neighborhood);
  }
}

TEST(Population, HouseholdSizesWithinConfiguredRange) {
  const auto population = SyntheticPopulation::generate(smallConfig());
  std::map<PlaceId, int> members;
  for (const Person& person : population.persons()) {
    ++members[person.home];
  }
  for (const auto& [home, count] : members) {
    EXPECT_GE(count, 1);
    EXPECT_LE(count, 6);
    EXPECT_EQ(population.place(home).capacity, static_cast<unsigned>(count));
  }
}

TEST(Population, SchoolAssignmentsRespectConstraints) {
  const auto population = SyntheticPopulation::generate(smallConfig(20000));
  std::map<PlaceId, int> classroomSize;
  std::map<PlaceId, std::set<PlaceId>> schoolClassrooms;
  for (const Person& person : population.persons()) {
    if (!person.isStudent()) {
      continue;
    }
    EXPECT_GE(person.age, 5);
    EXPECT_LE(person.age, 18);
    EXPECT_NE(person.schoolCommon, kNoPlace);
    const Place& classroom = population.place(person.classroom);
    EXPECT_EQ(classroom.type, PlaceType::kClassroom);
    EXPECT_EQ(classroom.neighborhood, person.neighborhood);
    ++classroomSize[person.classroom];
    schoolClassrooms[person.schoolCommon].insert(person.classroom);
  }
  ASSERT_FALSE(classroomSize.empty());
  for (const auto& [classroom, size] : classroomSize) {
    EXPECT_LE(size,
              static_cast<int>(population.config().classroomSize));
    EXPECT_EQ(population.place(classroom).capacity,
              static_cast<unsigned>(size));
  }
  // Schools hold at most schoolSize students.
  for (const auto& [common, rooms] : schoolClassrooms) {
    int total = 0;
    for (PlaceId room : rooms) {
      total += classroomSize[room];
    }
    EXPECT_LE(total, static_cast<int>(population.config().schoolSize));
  }
}

TEST(Population, SchoolAgeChildrenAreStudentsUnlessInstitutionalized) {
  const auto population = SyntheticPopulation::generate(smallConfig(20000));
  for (const Person& person : population.persons()) {
    if (person.age >= 5 && person.age <= 18 && !person.isInstitutionalized()) {
      EXPECT_TRUE(person.isStudent()) << "person " << person.id;
    }
    if (person.age < 5) {
      EXPECT_FALSE(person.isStudent());
    }
  }
}

TEST(Population, WorkersAreWorkingAgeAndPlacesTyped) {
  const auto population = SyntheticPopulation::generate(smallConfig(20000));
  std::map<PlaceId, unsigned> workplaceSize;
  for (const Person& person : population.persons()) {
    if (!person.isEmployed()) {
      continue;
    }
    EXPECT_GE(person.age, 19);
    EXPECT_LE(person.age, 64);
    EXPECT_EQ(population.place(person.workplace).type, PlaceType::kWorkplace);
    ++workplaceSize[person.workplace];
  }
  ASSERT_FALSE(workplaceSize.empty());
  for (const auto& [workplace, size] : workplaceSize) {
    EXPECT_LE(size, population.config().workplaceMaxSize);
    EXPECT_EQ(population.place(workplace).capacity, size);
  }
}

TEST(Population, EmploymentRateApproximatelyHonored) {
  const auto population = SyntheticPopulation::generate(smallConfig(50000));
  std::uint64_t eligible = 0;
  std::uint64_t employed = 0;
  for (const Person& person : population.persons()) {
    if (person.age >= 19 && person.age <= 64 &&
        !person.isInstitutionalized() && person.university == kNoPlace) {
      ++eligible;
      employed += person.isEmployed() ? 1 : 0;
    }
  }
  EXPECT_NEAR(static_cast<double>(employed) / eligible,
              population.config().employmentRate, 0.02);
}

TEST(Population, InstitutionsHoldExpectedDemographics) {
  const auto population = SyntheticPopulation::generate(smallConfig(50000));
  std::uint64_t retirementResidents = 0;
  for (const Person& person : population.persons()) {
    if (!person.isInstitutionalized()) {
      continue;
    }
    const Place& institution = population.place(person.institution);
    if (institution.type == PlaceType::kRetirementHome) {
      EXPECT_EQ(person.group, AgeGroup::kSenior65plus);
      ++retirementResidents;
      EXPECT_LE(institution.capacity,
                population.config().retirementHomeSize + 1);
    } else {
      EXPECT_EQ(institution.type, PlaceType::kPrison);
      EXPECT_GE(person.age, 19);
      EXPECT_LE(person.age, 64);
    }
    // Institutionalized persons have no school/work commitments.
    EXPECT_FALSE(person.isStudent());
    EXPECT_FALSE(person.isEmployed());
    EXPECT_EQ(person.university, kNoPlace);
  }
  EXPECT_GT(retirementResidents, 0u);
}

TEST(Population, UniversityStudentsAreYoungAdults) {
  const auto population = SyntheticPopulation::generate(smallConfig(50000));
  std::uint64_t students = 0;
  for (const Person& person : population.persons()) {
    if (person.university != kNoPlace) {
      EXPECT_GE(person.age, 19);
      EXPECT_LE(person.age, 22);
      EXPECT_FALSE(person.isEmployed());
      ++students;
    }
  }
  EXPECT_GT(students, 0u);
}

TEST(Population, EveryNeighborhoodHasVenues) {
  const auto population = SyntheticPopulation::generate(smallConfig(20000));
  EXPECT_GE(population.neighborhoodCount(), 1u);
  for (std::uint32_t hood = 0; hood < population.neighborhoodCount(); ++hood) {
    const NeighborhoodVenues& venues = population.venues(hood);
    EXPECT_GE(venues.shops.size(), 3u);
    EXPECT_GE(venues.leisure.size(), 2u);
    EXPECT_EQ(venues.shops.size(), venues.shopWeights.size());
    for (PlaceId shop : venues.shops) {
      EXPECT_EQ(population.place(shop).type, PlaceType::kShop);
      EXPECT_EQ(population.place(shop).neighborhood, hood);
    }
  }
}

TEST(Population, PlaceIdsAreDense) {
  const auto population = SyntheticPopulation::generate(smallConfig());
  for (std::size_t i = 0; i < population.places().size(); ++i) {
    EXPECT_EQ(population.places()[i].id, i);
  }
}

TEST(Population, PlaceTypeCountsConsistent) {
  const auto population = SyntheticPopulation::generate(smallConfig(20000));
  const auto counts = population.placeTypeCounts();
  std::uint64_t total = 0;
  for (std::uint64_t count : counts) {
    total += count;
  }
  EXPECT_EQ(total, population.places().size());
  EXPECT_GT(counts[static_cast<std::size_t>(PlaceType::kHousehold)], 0u);
  EXPECT_GT(counts[static_cast<std::size_t>(PlaceType::kClassroom)], 0u);
  EXPECT_GT(counts[static_cast<std::size_t>(PlaceType::kWorkplace)], 0u);
  EXPECT_GE(counts[static_cast<std::size_t>(PlaceType::kHospital)], 1u);
}

TEST(Population, RejectsDegenerateConfig) {
  PopulationConfig config = smallConfig();
  config.personCount = 5;
  EXPECT_THROW(SyntheticPopulation::generate(config), std::invalid_argument);
}

TEST(Population, ScalesToLargerSizes) {
  const auto population = SyntheticPopulation::generate(smallConfig(100000));
  EXPECT_EQ(population.persons().size(), 100000u);
  // Place-to-person ratio should be census-like (paper: 1.2M places for
  // 2.9M persons, ~0.41); households dominate so anywhere in [0.3, 0.7].
  const double ratio = static_cast<double>(population.places().size()) /
                       static_cast<double>(population.persons().size());
  EXPECT_GT(ratio, 0.3);
  EXPECT_LT(ratio, 0.7);
}

}  // namespace
}  // namespace chisimnet::pop
