#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "chisimnet/sparse/adjacency.hpp"
#include "chisimnet/sparse/collocation.hpp"
#include "chisimnet/sparse/pair_count_map.hpp"
#include "chisimnet/util/rng.hpp"

namespace chisimnet::sparse {
namespace {

using table::Event;

TEST(PackPair, CanonicalOrdering) {
  EXPECT_EQ(packPair(3, 7), packPair(7, 3));
  EXPECT_EQ(pairLow(packPair(3, 7)), 3u);
  EXPECT_EQ(pairHigh(packPair(3, 7)), 7u);
}

TEST(PairCountMap, AddAndGet) {
  PairCountMap map;
  EXPECT_EQ(map.get(42), 0u);
  map.add(42, 3);
  map.add(42, 2);
  EXPECT_EQ(map.get(42), 5u);
  EXPECT_EQ(map.size(), 1u);
}

TEST(PairCountMap, GrowsPastInitialCapacity) {
  PairCountMap map(4);
  for (std::uint64_t key = 0; key < 10000; ++key) {
    map.add(key, key + 1);
  }
  EXPECT_EQ(map.size(), 10000u);
  for (std::uint64_t key = 0; key < 10000; key += 997) {
    EXPECT_EQ(map.get(key), key + 1);
  }
}

TEST(PairCountMap, MergeSumsCounts) {
  PairCountMap a;
  PairCountMap b;
  a.add(1, 10);
  a.add(2, 20);
  b.add(2, 5);
  b.add(3, 7);
  a.merge(b);
  EXPECT_EQ(a.get(1), 10u);
  EXPECT_EQ(a.get(2), 25u);
  EXPECT_EQ(a.get(3), 7u);
  EXPECT_EQ(a.size(), 3u);
}

TEST(PairCountMap, EntriesReturnsEverything) {
  PairCountMap map;
  map.add(5, 1);
  map.add(9, 2);
  auto entries = map.entries();
  std::sort(entries.begin(), entries.end());
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0], (std::pair<std::uint64_t, std::uint64_t>{5, 1}));
  EXPECT_EQ(entries[1], (std::pair<std::uint64_t, std::uint64_t>{9, 2}));
}

TEST(PairCountMap, ReservedKeyRejected) {
  PairCountMap map;
  EXPECT_THROW(map.add(~std::uint64_t{0}, 1), std::invalid_argument);
}

TEST(PairCountMap, ReservePreventsRehash) {
  PairCountMap map;
  map.reserve(5000);
  const std::size_t bytesAfterReserve = map.memoryBytes();
  for (std::uint64_t key = 0; key < 5000; ++key) {
    map.add(key, key + 1);
  }
  // Reserve sized the table for 5000 entries under the load-factor-0.7
  // trigger, so none of the adds grew it.
  EXPECT_EQ(map.memoryBytes(), bytesAfterReserve);
  EXPECT_EQ(map.size(), 5000u);
  EXPECT_EQ(map.get(4999), 5000u);
}

TEST(PairCountMap, MergePreReservesForTheUnion) {
  PairCountMap a;
  PairCountMap b;
  for (std::uint64_t key = 0; key < 3000; ++key) {
    a.add(key, 1);
    b.add(key + 1500, 2);  // half overlapping
  }
  a.merge(b);
  EXPECT_EQ(a.size(), 4500u);
  EXPECT_EQ(a.get(0), 1u);
  EXPECT_EQ(a.get(2000), 3u);
  EXPECT_EQ(a.get(4000), 2u);
  // The merge reserved for the worst-case union (6000 entries) up front,
  // which needs a bigger table than the actual 4500-entry union would —
  // evidence the pre-reserve ran instead of incremental growth.
  PairCountMap sizedForUnion;
  sizedForUnion.reserve(6000);
  EXPECT_GE(a.memoryBytes(), sizedForUnion.memoryBytes());
}

TEST(CollocationMatrix, BuildsFromEventsWithClipping) {
  // Person 1 at place during [0, 5); window is [2, 4) -> hours {0,1} rel.
  const std::vector<Event> events{{0, 5, 1, 0, 9}};
  const CollocationMatrix matrix(9, events, 2, 4);
  EXPECT_EQ(matrix.place(), 9u);
  EXPECT_EQ(matrix.personCount(), 1u);
  EXPECT_EQ(matrix.nnz(), 2u);
  EXPECT_EQ(matrix.sliceHours(), 2u);
  EXPECT_TRUE(matrix.present(0, 0));
  EXPECT_TRUE(matrix.present(0, 1));
  EXPECT_FALSE(matrix.present(0, 2));
}

TEST(CollocationMatrix, DeduplicatesPresence) {
  // Two overlapping events for the same person collapse per hour.
  const std::vector<Event> events{{0, 3, 1, 0, 9}, {2, 5, 1, 1, 9}};
  const CollocationMatrix matrix(9, events, 0, 5);
  EXPECT_EQ(matrix.personCount(), 1u);
  EXPECT_EQ(matrix.nnz(), 5u);
}

TEST(CollocationMatrix, MultiplePersonsSortedRows) {
  const std::vector<Event> events{{0, 2, 7, 0, 1}, {1, 3, 3, 0, 1}};
  const CollocationMatrix matrix(1, events, 0, 4);
  ASSERT_EQ(matrix.personCount(), 2u);
  EXPECT_EQ(matrix.personAt(0), 3u);
  EXPECT_EQ(matrix.personAt(1), 7u);
  EXPECT_EQ(matrix.hoursAt(0).size(), 2u);
  EXPECT_EQ(matrix.hoursAt(1).size(), 2u);
}

TEST(CollocationMatrix, EmptyWindowYieldsEmptyMatrix) {
  const std::vector<Event> events{{0, 2, 1, 0, 1}};
  const CollocationMatrix matrix(1, events, 5, 5);
  EXPECT_EQ(matrix.nnz(), 0u);
  EXPECT_EQ(matrix.personCount(), 0u);
}

TEST(SymmetricAdjacency, AddAndWeightSymmetric) {
  SymmetricAdjacency adjacency;
  adjacency.add(3, 8, 4);
  adjacency.add(8, 3, 1);
  EXPECT_EQ(adjacency.weight(3, 8), 5u);
  EXPECT_EQ(adjacency.weight(8, 3), 5u);
  EXPECT_EQ(adjacency.edgeCount(), 1u);
}

TEST(SymmetricAdjacency, SelfEdgeRejected) {
  SymmetricAdjacency adjacency;
  EXPECT_THROW(adjacency.add(2, 2, 1), std::invalid_argument);
  EXPECT_EQ(adjacency.weight(2, 2), 0u);
}

TEST(SymmetricAdjacency, ZeroWeightIgnored) {
  SymmetricAdjacency adjacency;
  adjacency.add(1, 2, 0);
  EXPECT_EQ(adjacency.edgeCount(), 0u);
}

TEST(SymmetricAdjacency, TripletsSortedUpperTriangular) {
  SymmetricAdjacency adjacency;
  adjacency.add(9, 2, 1);
  adjacency.add(1, 5, 2);
  adjacency.add(1, 3, 3);
  const auto triplets = adjacency.toTriplets();
  ASSERT_EQ(triplets.size(), 3u);
  EXPECT_TRUE(std::is_sorted(triplets.begin(), triplets.end()));
  for (const AdjacencyTriplet& triplet : triplets) {
    EXPECT_LT(triplet.i, triplet.j);
  }
}

TEST(SymmetricAdjacency, MergeIsMatrixSum) {
  SymmetricAdjacency a;
  SymmetricAdjacency b;
  a.add(1, 2, 3);
  b.add(1, 2, 4);
  b.add(2, 5, 1);
  a.merge(b);
  EXPECT_EQ(a.weight(1, 2), 7u);
  EXPECT_EQ(a.weight(2, 5), 1u);
}

/// Brute-force x·xᵀ over the dense per-hour presence of one place.
std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t>
bruteForcePairs(const CollocationMatrix& matrix) {
  std::map<std::pair<std::uint32_t, std::uint32_t>, std::uint64_t> pairs;
  for (std::uint32_t hour = 0; hour < matrix.sliceHours(); ++hour) {
    std::vector<std::uint32_t> present;
    for (std::size_t row = 0; row < matrix.personCount(); ++row) {
      if (matrix.present(row, hour)) {
        present.push_back(matrix.personAt(row));
      }
    }
    for (std::size_t a = 0; a < present.size(); ++a) {
      for (std::size_t b = a + 1; b < present.size(); ++b) {
        const auto lo = std::min(present[a], present[b]);
        const auto hi = std::max(present[a], present[b]);
        ++pairs[{lo, hi}];
      }
    }
  }
  return pairs;
}

CollocationMatrix randomMatrix(std::uint64_t seed, std::size_t persons,
                               table::Hour hours, std::size_t eventCount) {
  util::Rng rng(seed);
  std::vector<Event> events;
  for (std::size_t i = 0; i < eventCount; ++i) {
    const auto start = static_cast<table::Hour>(rng.uniformBelow(hours));
    const auto end = start + 1 + static_cast<table::Hour>(rng.uniformBelow(6));
    events.push_back(Event{start, end,
                           static_cast<table::PersonId>(rng.uniformBelow(persons)),
                           0, 77});
  }
  return CollocationMatrix(77, events, 0, hours);
}

class AdjacencyMethodProperty : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(AdjacencyMethodProperty, AllMethodsMatchBruteForce) {
  const CollocationMatrix matrix = randomMatrix(GetParam(), 12, 24, 40);
  const auto expected = bruteForcePairs(matrix);

  for (const AdjacencyMethod method :
       {AdjacencyMethod::kSpGemm, AdjacencyMethod::kIntervalIntersection,
        AdjacencyMethod::kLocalAccumulate}) {
    SymmetricAdjacency adjacency;
    adjacency.addCollocation(matrix, method);
    EXPECT_EQ(adjacency.edgeCount(), expected.size());
    for (const auto& [pair, weight] : expected) {
      EXPECT_EQ(adjacency.weight(pair.first, pair.second), weight)
          << "pair (" << pair.first << "," << pair.second << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdjacencyMethodProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

void expectMatchesBruteForce(const SymmetricAdjacency& adjacency,
                             const CollocationMatrix& matrix) {
  const auto expected = bruteForcePairs(matrix);
  ASSERT_EQ(adjacency.edgeCount(), expected.size());
  for (const auto& [pair, weight] : expected) {
    EXPECT_EQ(adjacency.weight(pair.first, pair.second), weight)
        << "pair (" << pair.first << "," << pair.second << ")";
  }
}

TEST(LocalAccumulateCrossover, SmallPlaceTakesDensePath) {
  // 12 persons over 24 hours: 66 pair slots, plenty of pair-hours — well
  // inside the dense triangular-array regime.
  const CollocationMatrix matrix = randomMatrix(3, 12, 24, 40);
  SymmetricAdjacency adjacency;
  adjacency.addCollocation(matrix, AdjacencyMethod::kLocalAccumulate);
  EXPECT_EQ(adjacency.kernelStats().densePlaces, 1u);
  EXPECT_EQ(adjacency.kernelStats().hashPlaces, 0u);
  EXPECT_GT(adjacency.kernelStats().globalEmits, 0u);
  expectMatchesBruteForce(adjacency, matrix);
}

TEST(LocalAccumulateCrossover, SparseOverlapTakesHashPath) {
  // 100 persons, each present exactly one hour, two per hour: 4950 pair
  // slots but only 50 pair-hours, so the emit scan over the dense array
  // would dominate — the kernel must pick the local hash.
  std::vector<Event> events;
  for (std::uint32_t person = 0; person < 100; ++person) {
    const table::Hour hour = person % 50;
    events.push_back(
        Event{hour, static_cast<table::Hour>(hour + 1), person, 0, 77});
  }
  const CollocationMatrix matrix(77, events, 0, 50);
  SymmetricAdjacency adjacency;
  adjacency.addCollocation(matrix, AdjacencyMethod::kLocalAccumulate);
  EXPECT_EQ(adjacency.kernelStats().densePlaces, 0u);
  EXPECT_EQ(adjacency.kernelStats().hashPlaces, 1u);
  EXPECT_EQ(adjacency.kernelStats().pairHourUpdates, 50u);
  EXPECT_EQ(adjacency.kernelStats().globalEmits, 50u);
  expectMatchesBruteForce(adjacency, matrix);
}

TEST(LocalAccumulateCrossover, StatsSurviveMerge) {
  SymmetricAdjacency a;
  SymmetricAdjacency b;
  a.addCollocation(randomMatrix(4, 12, 24, 40),
                   AdjacencyMethod::kLocalAccumulate);
  b.addCollocation(randomMatrix(5, 12, 24, 40),
                   AdjacencyMethod::kLocalAccumulate);
  const std::uint64_t updates =
      a.kernelStats().pairHourUpdates + b.kernelStats().pairHourUpdates;
  a.merge(b);
  EXPECT_EQ(a.kernelStats().densePlaces, 2u);
  EXPECT_EQ(a.kernelStats().pairHourUpdates, updates);
}

TEST(MergeSortedTriplets, SumsOverlappingPairs) {
  const std::vector<AdjacencyTriplet> a{{1, 2, 10}, {1, 5, 1}, {3, 4, 2}};
  const std::vector<AdjacencyTriplet> b{{1, 5, 4}, {2, 3, 7}, {3, 4, 1}};
  const auto merged = mergeSortedTriplets(a, b);
  const std::vector<AdjacencyTriplet> expected{
      {1, 2, 10}, {1, 5, 5}, {2, 3, 7}, {3, 4, 3}};
  EXPECT_EQ(merged, expected);
}

TEST(MergeSortedTriplets, DisjointAndEmptyRuns) {
  const std::vector<AdjacencyTriplet> a{{1, 2, 1}, {9, 10, 2}};
  const std::vector<AdjacencyTriplet> b{{4, 6, 3}};
  const auto merged = mergeSortedTriplets(a, b);
  const std::vector<AdjacencyTriplet> expected{{1, 2, 1}, {4, 6, 3}, {9, 10, 2}};
  EXPECT_EQ(merged, expected);
  EXPECT_EQ(mergeSortedTriplets(a, {}), a);
  EXPECT_EQ(mergeSortedTriplets({}, b), b);
  EXPECT_TRUE(mergeSortedTriplets({}, {}).empty());
}

TEST(AdjacencyFromCollocations, SumsAcrossPlaces) {
  // Two places where persons 1 and 2 are collocated for 2 and 3 hours.
  const std::vector<Event> placeA{{0, 2, 1, 0, 10}, {0, 2, 2, 0, 10}};
  const std::vector<Event> placeB{{5, 8, 1, 0, 11}, {5, 8, 2, 0, 11}};
  std::vector<CollocationMatrix> matrices;
  matrices.emplace_back(10, placeA, 0, 10);
  matrices.emplace_back(11, placeB, 0, 10);
  const SymmetricAdjacency adjacency = adjacencyFromCollocations(matrices);
  EXPECT_EQ(adjacency.weight(1, 2), 5u);
}

TEST(BuildCollocationMatrices, OnePerNonEmptyPlace) {
  table::EventTable events;
  events.append(Event{0, 2, 1, 0, 5});
  events.append(Event{0, 2, 2, 0, 5});
  events.append(Event{3, 4, 3, 0, 8});
  events.append(Event{50, 60, 4, 0, 9});  // outside window
  const auto matrices = buildCollocationMatrices(events, 0, 10);
  ASSERT_EQ(matrices.size(), 2u);
  EXPECT_EQ(matrices[0].place(), 5u);
  EXPECT_EQ(matrices[0].personCount(), 2u);
  EXPECT_EQ(matrices[1].place(), 8u);
}

TEST(CollocationMatrix, MemoryBytesPositive) {
  const CollocationMatrix matrix = randomMatrix(3, 5, 10, 10);
  EXPECT_GT(matrix.memoryBytes(), 0u);
}

}  // namespace
}  // namespace chisimnet::sparse
