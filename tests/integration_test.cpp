#include <gtest/gtest.h>

#include <filesystem>

#include "chisimnet/chisimnet.hpp"
#include "chisimnet/elog/extended.hpp"

/// End-to-end tests over the full stack: population -> ABM -> per-rank logs
/// -> synthesis -> graph analysis, checking the cross-module invariants the
/// paper's workflow depends on.

namespace chisimnet {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pop::PopulationConfig config;
    config.personCount = 4000;
    config.seed = 31415;
    population_ =
        new pop::SyntheticPopulation(pop::SyntheticPopulation::generate(config));
  }
  static void TearDownTestSuite() {
    delete population_;
    population_ = nullptr;
  }

  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("chisimnet_integration_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  abm::ModelStats simulate(int ranks, std::uint32_t weeks = 1) {
    abm::ModelConfig config;
    config.logDirectory = dir_;
    config.rankCount = ranks;
    config.weeks = weeks;
    config.scheduleSeed = 161803;
    return abm::runModel(*population_, config);
  }

  static pop::SyntheticPopulation* population_;
  std::filesystem::path dir_;
};

pop::SyntheticPopulation* IntegrationTest::population_ = nullptr;

TEST_F(IntegrationTest, FullPipelineMatchesBruteForce) {
  simulate(3);
  const auto files = elog::listLogFiles(dir_);
  ASSERT_EQ(files.size(), 3u);

  net::SynthesisConfig config;
  config.windowStart = 0;
  config.windowEnd = pop::kHoursPerWeek;
  config.workers = 2;
  net::NetworkSynthesizer synthesizer(config);
  const auto adjacency = synthesizer.synthesizeAdjacency(files);

  const table::EventTable events =
      elog::loadEvents(files, 0, pop::kHoursPerWeek);
  const auto reference =
      net::bruteForceAdjacency(events, 0, pop::kHoursPerWeek);
  EXPECT_EQ(adjacency.toTriplets(), reference.toTriplets());
  EXPECT_GT(adjacency.edgeCount(), 0u);
}

TEST_F(IntegrationTest, NetworkInvariantToRankCount) {
  simulate(1);
  net::SynthesisConfig config;
  config.windowEnd = pop::kHoursPerWeek;
  net::NetworkSynthesizer synthesizer(config);
  const auto single = synthesizer.synthesizeAdjacency(elog::listLogFiles(dir_));

  std::filesystem::remove_all(dir_);
  simulate(5);
  const auto multi = synthesizer.synthesizeAdjacency(elog::listLogFiles(dir_));
  EXPECT_EQ(single.toTriplets(), multi.toTriplets());
}

TEST_F(IntegrationTest, HouseholdMembersAreStronglyConnected) {
  simulate(2);
  net::SynthesisConfig config;
  config.windowEnd = pop::kHoursPerWeek;
  net::NetworkSynthesizer synthesizer(config);
  const auto adjacency = synthesizer.synthesizeAdjacency(elog::listLogFiles(dir_));

  // Members of the same household share overnight hours every day, so their
  // pairwise weight must be large. Institutionalized persons live at their
  // institution (their household slot is vacant) and hospital stays can
  // erase a few nights, so require > 20 shared hours/week for the checked
  // pairs of co-resident, non-institutionalized members.
  std::map<pop::PlaceId, std::vector<pop::PersonId>> households;
  for (const pop::Person& person : population_->persons()) {
    if (!person.isInstitutionalized()) {
      households[person.home].push_back(person.id);
    }
  }
  int pairsChecked = 0;
  for (const auto& [home, members] : households) {
    if (members.size() < 2) {
      continue;
    }
    EXPECT_GT(adjacency.weight(members[0], members[1]), 20u)
        << "household " << home;
    if (++pairsChecked >= 50) {
      break;
    }
  }
  EXPECT_GE(pairsChecked, 50);
}

TEST_F(IntegrationTest, ClassmatesConnected) {
  simulate(2);
  net::SynthesisConfig config;
  config.windowEnd = pop::kHoursPerWeek;
  net::NetworkSynthesizer synthesizer(config);
  const auto adjacency = synthesizer.synthesizeAdjacency(elog::listLogFiles(dir_));

  std::map<pop::PlaceId, std::vector<pop::PersonId>> classrooms;
  for (const pop::Person& person : population_->persons()) {
    if (person.isStudent()) {
      classrooms[person.classroom].push_back(person.id);
    }
  }
  // 5 weekdays x 6 classroom hours = 30 shared hours, minus absences: sick
  // days (4%/child/day) and rare hospital stays. Every pair must share at
  // least one full school day; ~95% of pairs share at least 4 days (24 h).
  int pairsChecked = 0;
  int mostWeekPairs = 0;
  for (const auto& [room, students] : classrooms) {
    if (students.size() < 2) {
      continue;
    }
    const std::uint64_t shared = adjacency.weight(students[0], students[1]);
    EXPECT_GE(shared, 6u) << "classroom " << room;
    mostWeekPairs += shared >= 24 ? 1 : 0;
    if (++pairsChecked >= 20) {
      break;
    }
  }
  EXPECT_GE(pairsChecked, 20);
  EXPECT_GE(mostWeekPairs, 15);
}

TEST_F(IntegrationTest, GraphAnalysesRunOnSynthesizedNetwork) {
  simulate(2);
  net::SynthesisConfig config;
  config.windowEnd = pop::kHoursPerWeek;
  net::NetworkSynthesizer synthesizer(config);
  const graph::Graph network =
      synthesizer.synthesizeGraph(elog::listLogFiles(dir_));

  ASSERT_GT(network.vertexCount(), 0u);
  // Degree distribution is nontrivial.
  const auto degrees = graph::degreeSequence(network);
  const auto distribution = stats::frequencyDistribution(degrees);
  EXPECT_GT(distribution.size(), 5u);

  // Clustering: households and classrooms force many fully clustered
  // vertices (the paper's Fig 4 mass at coefficient 1).
  const auto coefficients = graph::localClusteringCoefficients(network);
  // The spike size trades off against social-visit realism (visitors break
  // perfect household cliques); a few percent of vertices at exactly 1.0 is
  // the qualitative signature Fig 4 shows.
  const std::uint64_t fullyClustered = static_cast<std::uint64_t>(
      std::count_if(coefficients.begin(), coefficients.end(),
                    [](double c) { return c >= 0.999; }));
  EXPECT_GT(fullyClustered, network.vertexCount() / 40);

  // Ego networks extract cleanly.
  const graph::Graph ego = graph::egoNetwork(network, 0, 2);
  EXPECT_GE(ego.vertexCount(), 1u);
  EXPECT_LE(ego.vertexCount(), network.vertexCount());

  // The giant component spans most of the city.
  const graph::Components components = graph::connectedComponents(network);
  EXPECT_GT(components.giantSize(), network.vertexCount() / 2);
}

TEST_F(IntegrationTest, AgeGroupNetworksShowSchoolConstraint) {
  simulate(2);
  const auto files = elog::listLogFiles(dir_);
  const table::EventTable events =
      elog::loadEvents(files, 0, pop::kHoursPerWeek);

  net::SynthesisConfig config;
  config.windowEnd = pop::kHoursPerWeek;
  net::NetworkSynthesizer synthesizer(config);

  const auto childEvents = net::eventsForAgeGroup(events, *population_,
                                                  pop::AgeGroup::kChild0to14);
  const graph::Graph childNet = synthesizer.synthesizeGraph(childEvents);
  ASSERT_GT(childNet.vertexCount(), 0u);

  // School and class sizes cap children's within-group degree (paper Fig 5:
  // the 0-14 distribution cuts off where schools bound the contact set).
  std::uint64_t maxDegree = 0;
  for (graph::Vertex v = 0; v < childNet.vertexCount(); ++v) {
    maxDegree = std::max(maxDegree, childNet.degree(v));
  }
  EXPECT_LE(maxDegree,
            population_->config().schoolSize + 50);
}

TEST_F(IntegrationTest, PackedLogsProduceIdenticalNetwork) {
  simulate(2);
  net::SynthesisConfig config;
  config.windowEnd = pop::kHoursPerWeek;
  net::NetworkSynthesizer synthesizer(config);
  const auto raw = synthesizer.synthesizeAdjacency(elog::listLogFiles(dir_));
  const auto rawBytes = elog::totalFileBytes(elog::listLogFiles(dir_));

  std::filesystem::remove_all(dir_);
  abm::ModelConfig packed;
  packed.logDirectory = dir_;
  packed.rankCount = 2;
  packed.scheduleSeed = 161803;
  packed.logCompression = elog::LogCompression::kPacked;
  abm::runModel(*population_, packed);
  const auto compressed =
      synthesizer.synthesizeAdjacency(elog::listLogFiles(dir_));
  const auto packedBytes = elog::totalFileBytes(elog::listLogFiles(dir_));

  EXPECT_EQ(raw.toTriplets(), compressed.toTriplets());
  EXPECT_LT(packedBytes * 2, rawBytes);
}

TEST_F(IntegrationTest, MessagePassingBackendMatchesOnRealLogs) {
  simulate(3);
  const auto files = elog::listLogFiles(dir_);
  net::SynthesisConfig config;
  config.windowEnd = pop::kHoursPerWeek;
  config.workers = 3;
  net::NetworkSynthesizer shared(config);
  const auto reference = shared.synthesizeAdjacency(files);

  config.backend = net::SynthesisBackend::kMessagePassing;
  net::NetworkSynthesizer mp(config);
  const auto distributed = mp.synthesizeAdjacency(files);
  EXPECT_EQ(distributed.toTriplets(), reference.toTriplets());
  EXPECT_EQ(mp.report().edges, reference.edgeCount());
  EXPECT_GT(mp.report().bytesScattered, 0u);
}

TEST_F(IntegrationTest, EveryDiseaseTransmissionIsANetworkEdge) {
  abm::ModelConfig config;
  config.logDirectory = dir_;
  config.rankCount = 2;
  config.scheduleSeed = 161803;
  abm::DiseaseConfig disease;
  disease.beta = 0.01;
  disease.seedCount = 3;
  abm::DiseaseStats epidemic;
  abm::runModel(*population_, config, disease, epidemic);
  ASSERT_GT(epidemic.infections, 0u);

  net::SynthesisConfig synthConfig;
  synthConfig.windowEnd = pop::kHoursPerWeek;
  net::NetworkSynthesizer synthesizer(synthConfig);
  const auto adjacency = synthesizer.synthesizeAdjacency(elog::listLogFiles(dir_));

  std::uint64_t checked = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
    if (entry.path().extension() != ".clx5") {
      continue;
    }
    elog::ExtendedLogReader reader(entry.path());
    for (const elog::ExtendedEvent& event : reader.readAll()) {
      if (static_cast<abm::SeirState>(event.extras[0]) ==
          abm::SeirState::kExposed) {
        EXPECT_GT(adjacency.weight(event.extras[1], event.base.person), 0u)
            << "transmission " << event.extras[1] << " -> "
            << event.base.person << " has no collocation edge";
        ++checked;
      }
    }
  }
  EXPECT_EQ(checked, epidemic.infections);
}

TEST_F(IntegrationTest, SavedNetworkReloadsForAnalysis) {
  simulate(2);
  net::SynthesisConfig config;
  config.windowEnd = pop::kHoursPerWeek;
  net::NetworkSynthesizer synthesizer(config);
  const auto adjacency = synthesizer.synthesizeAdjacency(elog::listLogFiles(dir_));

  const auto path = dir_ / "network.cadj";
  sparse::saveAdjacency(adjacency, path);
  const graph::Graph fromDisk =
      graph::Graph::fromTriplets(sparse::loadTriplets(path));
  const graph::Graph direct = graph::Graph::fromTriplets(adjacency.toTriplets());
  EXPECT_EQ(fromDisk.vertexCount(), direct.vertexCount());
  EXPECT_EQ(fromDisk.edgeCount(), direct.edgeCount());
  EXPECT_EQ(graph::degreeSequence(fromDisk), graph::degreeSequence(direct));
}

TEST_F(IntegrationTest, TimeSliceSynthesisIsAdditiveAcrossDays) {
  simulate(2);
  const auto files = elog::listLogFiles(dir_);

  net::SynthesisConfig whole;
  whole.windowEnd = 48;
  net::NetworkSynthesizer wholeSynth(whole);
  const auto wholeAdj = wholeSynth.synthesizeAdjacency(files);

  net::SynthesisConfig day1;
  day1.windowEnd = 24;
  net::SynthesisConfig day2;
  day2.windowStart = 24;
  day2.windowEnd = 48;
  net::NetworkSynthesizer synth1(day1);
  net::NetworkSynthesizer synth2(day2);
  auto sum = synth1.synthesizeAdjacency(files);
  sum.merge(synth2.synthesizeAdjacency(files));

  EXPECT_EQ(wholeAdj.toTriplets(), sum.toTriplets());
}

}  // namespace
}  // namespace chisimnet
