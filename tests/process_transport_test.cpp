#include <gtest/gtest.h>

#include <sys/types.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <chrono>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "chisimnet/elog/clg5.hpp"
#include "chisimnet/elog/log_directory.hpp"
#include "chisimnet/net/checkpoint.hpp"
#include "chisimnet/net/executor.hpp"
#include "chisimnet/net/mp_protocol.hpp"
#include "chisimnet/net/synthesis.hpp"
#include "chisimnet/runtime/comm.hpp"
#include "chisimnet/runtime/fault.hpp"
#include "chisimnet/runtime/heartbeat.hpp"
#include "chisimnet/runtime/process_transport.hpp"
#include "chisimnet/util/rng.hpp"

/// Process-isolated transport suite: the wire frame decoder against
/// adversarial byte streams (the short-read hardening), the liveness
/// primitives, the mp protocol codecs, the in-flight checkpoint snapshot,
/// and end-to-end synthesis over real worker processes — including the
/// acceptance cases: a SIGKILLed worker (scripted and raw external) must
/// not change the output, through both the respawn and the
/// loss-reassignment recovery paths.

namespace chisimnet::net {
namespace {

using runtime::FaultAction;
using runtime::FaultPlan;
using runtime::FaultSpec;
using runtime::wire::Frame;
using runtime::wire::FrameKind;
using runtime::wire::FrameReader;
using runtime::wire::ReadFn;
using table::Event;
using table::Hour;

// ---- local copies of the fuzz-harness fixtures (each test binary keeps
// its helpers in its own anonymous namespace) ----

struct FuzzCase {
  table::EventTable events;
  Hour windowStart = 0;
  Hour windowEnd = 0;
};

FuzzCase makeCase(std::uint64_t seed) {
  util::Rng rng(seed * 2654435761u + 17);
  FuzzCase out;
  const auto persons = static_cast<std::uint32_t>(8 + rng.uniformBelow(48));
  const auto places = static_cast<std::uint32_t>(3 + rng.uniformBelow(10));
  out.windowStart = static_cast<Hour>(rng.uniformBelow(8));
  out.windowEnd = out.windowStart + 24 + static_cast<Hour>(rng.uniformBelow(48));
  const std::size_t count = 80 + rng.uniformBelow(120);
  for (std::size_t i = 0; i < count; ++i) {
    const Hour start = static_cast<Hour>(rng.uniformBelow(out.windowEnd + 8));
    const Hour end = start + 1 + static_cast<Hour>(rng.uniformBelow(9));
    out.events.append(Event{
        start, end, static_cast<table::PersonId>(rng.uniformBelow(persons)),
        static_cast<table::ActivityId>(rng.uniformBelow(5)),
        static_cast<table::PlaceId>(rng.uniformBelow(places))});
  }
  return out;
}

std::vector<std::filesystem::path> writePlacePartitionedFiles(
    const table::EventTable& events, const std::filesystem::path& dir,
    int fileCount) {
  std::vector<std::vector<Event>> buffers(
      static_cast<std::size_t>(fileCount));
  for (std::uint64_t row = 0; row < events.size(); ++row) {
    const Event event = events.row(row);
    buffers[event.place % static_cast<std::uint32_t>(fileCount)].push_back(
        event);
  }
  std::vector<std::filesystem::path> files;
  for (int i = 0; i < fileCount; ++i) {
    const auto path = elog::logFilePath(dir, i);
    elog::ChunkedLogWriter writer(path);
    auto& buffer = buffers[static_cast<std::size_t>(i)];
    std::sort(buffer.begin(), buffer.end());
    for (std::size_t begin = 0; begin < buffer.size(); begin += 32) {
      const std::size_t end = std::min(buffer.size(), begin + 32);
      writer.writeChunk(
          std::span<const Event>(buffer.data() + begin, end - begin));
    }
    writer.close();
    files.push_back(path);
  }
  return files;
}

class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : dir_(std::filesystem::temp_directory_path() / name) {
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  ~ScratchDir() {
    std::error_code ignored;
    std::filesystem::remove_all(dir_, ignored);
  }
  const std::filesystem::path& path() const { return dir_; }

 private:
  std::filesystem::path dir_;
};

void expectEqualAdjacency(const sparse::SymmetricAdjacency& got,
                          const sparse::SymmetricAdjacency& want,
                          const std::string& label) {
  EXPECT_EQ(got.edgeCount(), want.edgeCount()) << label;
  EXPECT_EQ(got.toTriplets(), want.toTriplets()) << label;
}

bool hasFault(const SynthesisReport& report, FaultEvent::Kind kind) {
  return std::any_of(
      report.faults.begin(), report.faults.end(),
      [kind](const FaultEvent& event) { return event.kind == kind; });
}

std::vector<Event> rowsOf(const table::EventTable& table) {
  std::vector<Event> rows;
  rows.reserve(table.size());
  for (std::uint64_t row = 0; row < table.size(); ++row) {
    rows.push_back(table.row(row));
  }
  return rows;
}

/// A process-transport synthesis config with timings tuned for tests:
/// fast monitor ticks so respawn latency is small, and a command timeout
/// comfortably above one respawn so the retry lands on the fresh worker.
SynthesisConfig processConfig(const FuzzCase& fuzz) {
  SynthesisConfig config;
  config.windowStart = fuzz.windowStart;
  config.windowEnd = fuzz.windowEnd;
  config.workers = 3;
  config.backend = SynthesisBackend::kMessagePassing;
  config.transport = MpTransport::kProcess;
  config.heartbeatMs = 100;
  config.faultPolicy = FaultPolicy::kDegrade;
  config.commandTimeoutMs = 600;
  config.commandMaxAttempts = 6;
  config.commandBackoffMs = 1;
  return config;
}

// ---- wire frame decoding over adversarial streams ----

/// ReadFn over an in-memory byte stream that returns at most `chunk`
/// bytes per call — the short reads a stream socket is allowed to give.
ReadFn chunkedReadFn(std::vector<std::byte> data, std::size_t chunk) {
  auto pos = std::make_shared<std::size_t>(0);
  auto bytes = std::make_shared<std::vector<std::byte>>(std::move(data));
  return [pos, bytes, chunk](std::byte* out, std::size_t capacity) {
    if (*pos >= bytes->size()) {
      return std::size_t{0};
    }
    const std::size_t n =
        std::min({chunk, capacity, bytes->size() - *pos});
    std::memcpy(out, bytes->data() + *pos, n);
    *pos += n;
    return n;
  };
}

template <typename T>
void appendScalar(std::vector<std::byte>& out, T value) {
  const std::size_t at = out.size();
  out.resize(at + sizeof(T));
  std::memcpy(out.data() + at, &value, sizeof(T));
}

/// Hand-forged header for invalid-input cases encodeFrame cannot produce.
std::vector<std::byte> forgeHeader(std::uint32_t magic, std::uint32_t kind,
                                   std::int32_t tag, std::uint64_t length) {
  std::vector<std::byte> out;
  appendScalar(out, magic);
  appendScalar(out, kind);
  appendScalar(out, tag);
  appendScalar(out, length);
  return out;
}

TEST(WireFrameTest, FramesSurviveArbitrarySplitReads) {
  // Zero-length, one-byte, and a payload far larger than any read chunk,
  // back to back in one stream.
  Frame empty{FrameKind::kData, 7, {}};
  Frame tiny{FrameKind::kPong, -3, {std::byte{0xAB}}};
  Frame big{FrameKind::kData, 42, {}};
  big.payload.resize(1 << 20);
  for (std::size_t i = 0; i < big.payload.size(); ++i) {
    big.payload[i] = static_cast<std::byte>(i * 31 + 5);
  }
  std::vector<std::byte> stream;
  for (const Frame* frame : {&empty, &tiny, &big}) {
    const auto encoded = runtime::wire::encodeFrame(*frame);
    stream.insert(stream.end(), encoded.begin(), encoded.end());
  }

  // Chunk sizes that split the header, the payload, and their boundary.
  for (const std::size_t chunk : {std::size_t{1}, std::size_t{3},
                                  std::size_t{19}, std::size_t{4096}}) {
    FrameReader reader(chunkedReadFn(stream, chunk));
    for (const Frame* want : {&empty, &tiny, &big}) {
      const auto got = reader.next();
      ASSERT_TRUE(got.has_value()) << "chunk " << chunk;
      EXPECT_EQ(got->kind, want->kind) << "chunk " << chunk;
      EXPECT_EQ(got->tag, want->tag) << "chunk " << chunk;
      EXPECT_EQ(got->payload, want->payload) << "chunk " << chunk;
    }
    // Clean EOF exactly at a frame boundary: nullopt, not a throw.
    EXPECT_FALSE(reader.next().has_value()) << "chunk " << chunk;
  }
}

TEST(WireFrameTest, EofTearingAHeaderThrows) {
  const auto encoded =
      runtime::wire::encodeFrame(Frame{FrameKind::kPing, 0, {}});
  for (const std::size_t keep : {std::size_t{1}, std::size_t{8},
                                 runtime::wire::kFrameHeaderBytes - 1}) {
    std::vector<std::byte> torn(encoded.begin(),
                                encoded.begin() + static_cast<long>(keep));
    FrameReader reader(chunkedReadFn(torn, 3));
    EXPECT_THROW(reader.next(), std::exception) << "kept " << keep;
  }
}

TEST(WireFrameTest, EofTearingAPayloadThrows) {
  Frame frame{FrameKind::kData, 5, std::vector<std::byte>(64, std::byte{9})};
  auto encoded = runtime::wire::encodeFrame(frame);
  encoded.resize(encoded.size() - 10);  // header intact, payload short
  FrameReader reader(chunkedReadFn(encoded, 7));
  EXPECT_THROW(reader.next(), std::exception);
}

TEST(WireFrameTest, BadMagicAndUnknownKindAreRejected) {
  {
    FrameReader reader(chunkedReadFn(
        forgeHeader(0xDEADBEEFu, 1, 0, 0), 4));
    EXPECT_THROW(reader.next(), std::exception);
  }
  {
    FrameReader reader(chunkedReadFn(
        forgeHeader(runtime::wire::kFrameMagic, 99, 0, 0), 4));
    EXPECT_THROW(reader.next(), std::exception);
  }
}

TEST(WireFrameTest, OversizedLengthIsRejectedBeforeAllocation) {
  // A hostile length header one past the cap must throw from the header
  // check itself; were it used to size a buffer first, this would be a
  // 1 GiB+ allocation.
  const auto header = forgeHeader(runtime::wire::kFrameMagic, 1, 0,
                                  runtime::kMaxPayloadBytes + 1);
  FrameReader reader(chunkedReadFn(header, 5));
  try {
    reader.next();
    FAIL() << "oversized length must not be accepted";
  } catch (const std::exception& error) {
    EXPECT_NE(std::string(error.what()).find("payload"), std::string::npos);
  }
}

// ---- liveness primitives ----

TEST(HeartbeatTest, BookTracksSilencePerPeer) {
  runtime::HeartbeatBook book(3);
  EXPECT_EQ(book.peerCount(), 3);
  // Freshly constructed peers are not instantly overdue.
  EXPECT_FALSE(book.overdue(0, std::chrono::milliseconds(250)));
  std::this_thread::sleep_for(std::chrono::milliseconds(15));
  EXPECT_TRUE(book.overdue(1, std::chrono::milliseconds(5)));
  book.beat(1);
  EXPECT_FALSE(book.overdue(1, std::chrono::milliseconds(5)));
  // Beating one peer leaves the others' clocks alone.
  EXPECT_TRUE(book.overdue(2, std::chrono::milliseconds(5)));
  EXPECT_LT(book.age(1), book.age(2));
}

TEST(HeartbeatTest, PeriodicTaskTicksUntilStopped) {
  std::atomic<int> ticks{0};
  {
    runtime::PeriodicTask task(std::chrono::milliseconds(10),
                               [&ticks] { ++ticks; });
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    task.stop();
    const int atStop = ticks.load();
    EXPECT_GE(atStop, 2);
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    EXPECT_EQ(ticks.load(), atStop);  // no ticks after stop
    task.stop();                      // idempotent
  }
  // Destructor after stop must not hang or double-join.
}

// ---- mp protocol codecs ----

TEST(MpProtocolTest, StageParamsRoundTripThroughHelloPayload) {
  mp::StageParams params;
  params.windowStart = 17;
  params.windowEnd = 193;
  params.method = sparse::AdjacencyMethod::kSpGemm;
  const auto bytes = mp::encodeStageParams(params);
  const mp::StageParams back = mp::decodeStageParams(bytes);
  EXPECT_EQ(back.windowStart, params.windowStart);
  EXPECT_EQ(back.windowEnd, params.windowEnd);
  EXPECT_EQ(back.method, params.method);

  // Truncated and oversized payloads are both malformed.
  std::vector<std::byte> shortBytes(bytes.begin(), bytes.end() - 1);
  EXPECT_THROW(mp::decodeStageParams(shortBytes), std::exception);
  std::vector<std::byte> longBytes(bytes);
  longBytes.push_back(std::byte{0});
  EXPECT_THROW(mp::decodeStageParams(longBytes), std::exception);
}

// ---- in-flight batch checkpoint snapshot ----

TEST(InflightCheckpointTest, SnapshotRoundTripsExactly) {
  ScratchDir scratch("chisimnet_proc_inflight");
  const FuzzCase fuzz = makeCase(5);

  CheckpointManifest manifest;
  manifest.filesConsumed = 2;
  manifest.batchesDone = 1;
  manifest.configHash = 0x1234;
  sparse::SymmetricAdjacency adjacency(32);
  adjacency.add(1, 2, 3);

  InflightBatch inflight;
  for (const Event& event : rowsOf(fuzz.events)) {
    inflight.events.append(event);
  }
  inflight.events.sortByStart();
  inflight.filesInBatch = 2;
  inflight.quarantined.push_back(elog::QuarantinedFile{
      "/logs/rank_0005.clg5", 3, 512, "chunk crc mismatch"});
  saveCheckpoint(scratch.path(), manifest, adjacency, &inflight);

  const auto loaded = loadCheckpointManifest(scratch.path());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_FALSE(loaded->inflightFile.empty());
  const auto restored = loadCheckpointInflight(scratch.path(), *loaded);
  ASSERT_TRUE(restored.has_value());
  EXPECT_EQ(restored->filesInBatch, 2u);
  EXPECT_EQ(rowsOf(restored->events), rowsOf(inflight.events));
  EXPECT_EQ(restored->events.isSortedByStart(),
            inflight.events.isSortedByStart());
  ASSERT_EQ(restored->quarantined.size(), 1u);
  EXPECT_EQ(restored->quarantined[0].file, "/logs/rank_0005.clg5");
  EXPECT_EQ(restored->quarantined[0].chunkIndex, 3);
  EXPECT_EQ(restored->quarantined[0].byteOffset, 512u);
  EXPECT_EQ(restored->quarantined[0].reason, "chunk crc mismatch");

  // A checkpoint written without a snapshot restores to nullopt.
  saveCheckpoint(scratch.path(), manifest, adjacency);
  const auto bare = loadCheckpointManifest(scratch.path());
  ASSERT_TRUE(bare.has_value());
  EXPECT_TRUE(bare->inflightFile.empty());
  EXPECT_FALSE(loadCheckpointInflight(scratch.path(), *bare).has_value());
}

TEST(InflightCheckpointTest, CorruptSnapshotIsRejectedNotComputedOn) {
  ScratchDir scratch("chisimnet_proc_inflight_corrupt");
  const FuzzCase fuzz = makeCase(6);
  CheckpointManifest manifest;
  manifest.filesConsumed = 1;
  sparse::SymmetricAdjacency adjacency(16);
  InflightBatch inflight;
  for (const Event& event : rowsOf(fuzz.events)) {
    inflight.events.append(event);
  }
  inflight.filesInBatch = 1;
  saveCheckpoint(scratch.path(), manifest, adjacency, &inflight);
  const auto loaded = loadCheckpointManifest(scratch.path());
  ASSERT_TRUE(loaded.has_value());

  // Flip one payload byte: the CRC must catch it.
  const auto path = scratch.path() / loaded->inflightFile;
  {
    std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
    file.seekp(20);
    char byte = 0;
    file.seekg(20);
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    file.seekp(20);
    file.write(&byte, 1);
  }
  EXPECT_THROW(loadCheckpointInflight(scratch.path(), *loaded),
               std::exception);
}

// ---- process transport: config validation ----

TEST(ProcessTransportConfigTest, InvalidCombinationsAreRejected) {
  SynthesisConfig config;
  config.transport = MpTransport::kProcess;  // needs the mp backend
  EXPECT_THROW(NetworkSynthesizer{config}, std::invalid_argument);

  config = SynthesisConfig{};
  config.backend = SynthesisBackend::kMessagePassing;
  config.transport = MpTransport::kProcess;
  config.heartbeatMs = 0;
  EXPECT_THROW(NetworkSynthesizer{config}, std::invalid_argument);

  config = SynthesisConfig{};
  config.backend = SynthesisBackend::kMessagePassing;
  config.maxRespawns = -1;
  EXPECT_THROW(NetworkSynthesizer{config}, std::invalid_argument);

  // Degrade over processes without a command timeout would hang forever
  // on a dead worker; the config must say so up front.
  config = SynthesisConfig{};
  config.backend = SynthesisBackend::kMessagePassing;
  config.transport = MpTransport::kProcess;
  config.faultPolicy = FaultPolicy::kDegrade;
  config.commandTimeoutMs = 0;
  EXPECT_THROW(NetworkSynthesizer{config}, std::invalid_argument);
}

// ---- process transport: end-to-end synthesis ----

TEST(ProcessTransportSynthesisTest, CleanRunMatchesBruteForce) {
  const FuzzCase fuzz = makeCase(91);
  const auto reference =
      bruteForceAdjacency(fuzz.events, fuzz.windowStart, fuzz.windowEnd);
  ScratchDir scratch("chisimnet_proc_clean");
  const auto files =
      writePlacePartitionedFiles(fuzz.events, scratch.path(), 4);

  SynthesisConfig config = processConfig(fuzz);
  config.filesPerBatch = 2;
  for (const bool prefetch : {false, true}) {
    config.prefetch = prefetch;
    NetworkSynthesizer synthesizer(config);
    const auto adjacency = synthesizer.synthesizeAdjacency(files);
    expectEqualAdjacency(adjacency, reference,
                         prefetch ? "process prefetch" : "process serial");
    const SynthesisReport& report = synthesizer.report();
    EXPECT_EQ(report.ranksLost, 0);
    EXPECT_EQ(report.workersRespawned, 0u);
    EXPECT_GT(report.bytesScattered, 0u);
  }
}

TEST(ProcessTransportSynthesisTest, WorkerCommandThrowIsRetried) {
  const FuzzCase fuzz = makeCase(92);
  const auto reference =
      bruteForceAdjacency(fuzz.events, fuzz.windowStart, fuzz.windowEnd);
  ScratchDir scratch("chisimnet_proc_retry");
  const auto files =
      writePlacePartitionedFiles(fuzz.events, scratch.path(), 3);

  // The plan ships to the workers through the bootstrap environment; the
  // first command a worker processes throws, it answers status=failed,
  // and the root retries against the same (still live) process.
  FaultPlan plan;
  plan.at("mp.service.command",
          FaultSpec{.action = FaultAction::kThrow, .hit = 1});
  runtime::fault::ScopedFaultPlan scoped(plan);

  SynthesisConfig config = processConfig(fuzz);
  NetworkSynthesizer synthesizer(config);
  expectEqualAdjacency(synthesizer.synthesizeAdjacency(files), reference,
                       "process retry after worker throw");
  const SynthesisReport& report = synthesizer.report();
  EXPECT_GE(report.commandRetries, 1u);
  EXPECT_EQ(report.ranksLost, 0);
  EXPECT_TRUE(hasFault(report, FaultEvent::Kind::kCommandRetry));
}

/// Acceptance (respawn path): the worker behind the very first root->worker
/// frame is SIGKILLed before the frame reaches it. The monitor reaps and
/// respawns it, the command retry lands on the fresh process, and the
/// output is bit-identical with no rank lost.
TEST(ProcessTransportSynthesisTest, SigkilledWorkerIsRespawnedBitIdentical) {
  const FuzzCase fuzz = makeCase(93);
  const auto reference =
      bruteForceAdjacency(fuzz.events, fuzz.windowStart, fuzz.windowEnd);
  ScratchDir scratch("chisimnet_proc_respawn");
  const auto files =
      writePlacePartitionedFiles(fuzz.events, scratch.path(), 4);

  // Root-side site: the hit counter lives in this process, so the kill
  // fires exactly once and the respawned worker is left alone.
  FaultPlan plan;
  plan.at("proc.send",
          FaultSpec{.action = FaultAction::kKillRank, .hit = 1});
  runtime::fault::ScopedFaultPlan scoped(plan);

  SynthesisConfig config = processConfig(fuzz);
  config.filesPerBatch = 2;
  NetworkSynthesizer synthesizer(config);
  const auto adjacency = synthesizer.synthesizeAdjacency(files);
  expectEqualAdjacency(adjacency, reference, "respawn path");
  const SynthesisReport& report = synthesizer.report();
  EXPECT_EQ(report.ranksLost, 0);
  EXPECT_GE(report.workersRespawned, 1u);
  EXPECT_TRUE(hasFault(report, FaultEvent::Kind::kWorkerRespawn));
  EXPECT_FALSE(hasFault(report, FaultEvent::Kind::kRankLost));
}

/// Acceptance (reassignment path): worker rank 2 SIGKILLs itself on every
/// command it receives. The fault plan is replayed into each respawn, so
/// the respawn budget drains and the rank goes permanently dead; the run
/// completes on the survivors with identical output.
TEST(ProcessTransportSynthesisTest, RespawnBudgetExhaustionReassignsWork) {
  const FuzzCase fuzz = makeCase(94);
  const auto reference =
      bruteForceAdjacency(fuzz.events, fuzz.windowStart, fuzz.windowEnd);
  ScratchDir scratch("chisimnet_proc_reassign");
  const auto files =
      writePlacePartitionedFiles(fuzz.events, scratch.path(), 4);

  FaultPlan plan;
  plan.at("mp.service.command",
          FaultSpec{.action = FaultAction::kKillProcess, .rank = 2});
  runtime::fault::ScopedFaultPlan scoped(plan);

  SynthesisConfig config = processConfig(fuzz);
  config.workers = 4;
  config.maxRespawns = 1;
  config.filesPerBatch = 2;
  NetworkSynthesizer synthesizer(config);
  const auto adjacency = synthesizer.synthesizeAdjacency(files);
  expectEqualAdjacency(adjacency, reference, "reassignment path");
  const SynthesisReport& report = synthesizer.report();
  EXPECT_EQ(report.ranksLost, 1);
  EXPECT_GE(report.workersRespawned, 1u);
  EXPECT_TRUE(hasFault(report, FaultEvent::Kind::kRankLost));

  // The degraded synthesizer keeps producing identical output afterwards.
  expectEqualAdjacency(synthesizer.synthesizeAdjacency(files), reference,
                       "reassignment path, second run");
}

TEST(ProcessTransportSynthesisTest, MaxRespawnsZeroLosesTheRankOnFirstDeath) {
  const FuzzCase fuzz = makeCase(95);
  const auto reference =
      bruteForceAdjacency(fuzz.events, fuzz.windowStart, fuzz.windowEnd);
  ScratchDir scratch("chisimnet_proc_no_respawn");
  const auto files =
      writePlacePartitionedFiles(fuzz.events, scratch.path(), 3);

  FaultPlan plan;
  plan.at("proc.send",
          FaultSpec{.action = FaultAction::kKillRank, .hit = 1});
  runtime::fault::ScopedFaultPlan scoped(plan);

  SynthesisConfig config = processConfig(fuzz);
  config.maxRespawns = 0;
  NetworkSynthesizer synthesizer(config);
  expectEqualAdjacency(synthesizer.synthesizeAdjacency(files), reference,
                       "respawn disabled");
  const SynthesisReport& report = synthesizer.report();
  EXPECT_EQ(report.ranksLost, 1);
  EXPECT_EQ(report.workersRespawned, 0u);
}

/// Child pids of this process, read from /proc — the transport's workers
/// are our only children, so this is how an *external* killer (an OOM
/// killer, an operator) would find them.
std::vector<pid_t> childProcesses() {
  std::vector<pid_t> children;
  const pid_t self = ::getpid();
  for (const auto& entry : std::filesystem::directory_iterator("/proc")) {
    const std::string name = entry.path().filename().string();
    if (name.empty() ||
        !std::isdigit(static_cast<unsigned char>(name[0]))) {
      continue;
    }
    std::ifstream stat(entry.path() / "stat");
    std::string content((std::istreambuf_iterator<char>(stat)),
                        std::istreambuf_iterator<char>());
    // Fields after the parenthesized comm: state, then ppid.
    const auto close = content.rfind(')');
    if (close == std::string::npos || close + 2 >= content.size()) {
      continue;
    }
    std::istringstream rest(content.substr(close + 2));
    char state = 0;
    pid_t ppid = -1;
    rest >> state >> ppid;
    if (ppid == self) {
      children.push_back(static_cast<pid_t>(std::stol(name)));
    }
  }
  return children;
}

/// Acceptance (raw external kill): SIGKILL a live worker from outside the
/// fault framework while mapAdjacency commands are in flight. Whichever
/// recovery path engages — respawn or loss reassignment — the surviving
/// output must be bit-identical.
TEST(ProcessTransportSynthesisTest, RawExternalSigkillMidRunSurvives) {
  const FuzzCase fuzz = makeCase(96);
  const auto reference =
      bruteForceAdjacency(fuzz.events, fuzz.windowStart, fuzz.windowEnd);
  ScratchDir scratch("chisimnet_proc_external_kill");
  const auto files =
      writePlacePartitionedFiles(fuzz.events, scratch.path(), 4);

  // Stretch every worker command by 40 ms (shipped via the bootstrap env)
  // so the external SIGKILL reliably lands while work is in flight.
  FaultPlan plan;
  plan.at("mp.service.command",
          FaultSpec{.action = FaultAction::kDelay, .delayMs = 40});
  runtime::fault::ScopedFaultPlan scoped(plan);

  SynthesisConfig config = processConfig(fuzz);
  config.filesPerBatch = 2;

  std::atomic<bool> done{false};
  std::atomic<bool> killed{false};
  std::thread killer([&done, &killed] {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (!done.load() && std::chrono::steady_clock::now() < deadline) {
      const auto children = childProcesses();
      if (!children.empty()) {
        // Give the run a moment to get commands in flight, then kill.
        std::this_thread::sleep_for(std::chrono::milliseconds(60));
        if (!done.load() && ::kill(children.front(), SIGKILL) == 0) {
          killed.store(true);
        }
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });

  NetworkSynthesizer synthesizer(config);
  const auto adjacency = synthesizer.synthesizeAdjacency(files);
  done.store(true);
  killer.join();

  expectEqualAdjacency(adjacency, reference, "raw external SIGKILL");
  const SynthesisReport& report = synthesizer.report();
  ASSERT_TRUE(killed.load()) << "the killer thread never found a worker";
  EXPECT_GE(report.workersRespawned + static_cast<std::uint64_t>(
                                          report.ranksLost),
            1u)
      << "the kill must show up as a respawn or a lost rank";
}

/// Kill-mid-batch checkpoint/resume with the in-flight snapshot: the
/// prefetcher has the next batch decoded when the driver dies, the
/// checkpoint carries it, and the resumed run restores it instead of
/// re-decoding — with bit-identical output.
TEST(ProcessTransportSynthesisTest, KillMidBatchResumeRestoresInflight) {
  const FuzzCase fuzz = makeCase(97);
  ScratchDir scratch("chisimnet_proc_inflight_resume");
  const auto files =
      writePlacePartitionedFiles(fuzz.events, scratch.path(), 6);

  for (const bool processTransport : {false, true}) {
    const std::string label =
        processTransport ? "mp-process" : "mp-inproc";
    ScratchDir checkpoints("chisimnet_proc_inflight_ckpt_" + label);

    SynthesisConfig config;
    config.windowStart = fuzz.windowStart;
    config.windowEnd = fuzz.windowEnd;
    config.workers = 3;
    config.backend = SynthesisBackend::kMessagePassing;
    config.filesPerBatch = 2;  // 3 batches over 6 files
    config.prefetch = true;
    config.prefetchDepth = 2;
    if (processTransport) {
      config.transport = MpTransport::kProcess;
      config.heartbeatMs = 100;
    }

    // Reference: one uninterrupted run, no checkpointing involved.
    NetworkSynthesizer uninterrupted(config);
    const auto reference = uninterrupted.synthesizeAdjacency(files);

    config.checkpointDir = checkpoints.path();
    {
      // Slow the compute side so the producer is decoded ahead, then die
      // right after the second batch's checkpoint hits disk.
      FaultPlan plan;
      plan.at("driver.collocation",
              FaultSpec{.action = FaultAction::kDelay, .delayMs = 40});
      plan.at("driver.batch",
              FaultSpec{.action = FaultAction::kThrow, .hit = 2});
      runtime::fault::ScopedFaultPlan scoped(plan);
      NetworkSynthesizer interrupted(config);
      EXPECT_THROW(interrupted.synthesizeAdjacency(files),
                   runtime::FaultInjected)
          << label;
    }
    const auto manifest = loadCheckpointManifest(checkpoints.path());
    ASSERT_TRUE(manifest.has_value()) << label;
    EXPECT_EQ(manifest->filesConsumed, 4u) << label;
    ASSERT_FALSE(manifest->inflightFile.empty())
        << label << ": the checkpoint must carry the decoded batch 3";

    config.resume = true;
    NetworkSynthesizer resumed(config);
    const auto adjacency = resumed.synthesizeAdjacency(files);
    EXPECT_EQ(adjacency.toTriplets(), reference.toTriplets()) << label;
    const SynthesisReport& report = resumed.report();
    EXPECT_TRUE(report.resumed) << label;
    EXPECT_TRUE(report.inflightRestored) << label;
    EXPECT_EQ(report.batches, 3u) << label;
    EXPECT_EQ(report.filesSkippedByResume, 4u) << label;
  }
}

/// The non-prefetching driver must also accept (and correctly consume) a
/// checkpoint whose snapshot a prefetching run wrote before dying.
TEST(ProcessTransportSynthesisTest, SerialResumeConsumesAPrefetchSnapshot) {
  const FuzzCase fuzz = makeCase(98);
  ScratchDir scratch("chisimnet_proc_serial_resume");
  const auto files =
      writePlacePartitionedFiles(fuzz.events, scratch.path(), 6);
  ScratchDir checkpoints("chisimnet_proc_serial_resume_ckpt");

  SynthesisConfig config;
  config.windowStart = fuzz.windowStart;
  config.windowEnd = fuzz.windowEnd;
  config.workers = 3;
  config.filesPerBatch = 2;
  config.prefetch = true;
  config.prefetchDepth = 2;

  NetworkSynthesizer uninterrupted(config);
  const auto reference = uninterrupted.synthesizeAdjacency(files);

  config.checkpointDir = checkpoints.path();
  {
    FaultPlan plan;
    plan.at("driver.collocation",
            FaultSpec{.action = FaultAction::kDelay, .delayMs = 40});
    plan.at("driver.batch",
            FaultSpec{.action = FaultAction::kThrow, .hit = 2});
    runtime::fault::ScopedFaultPlan scoped(plan);
    NetworkSynthesizer interrupted(config);
    EXPECT_THROW(interrupted.synthesizeAdjacency(files),
                 runtime::FaultInjected);
  }
  const auto manifest = loadCheckpointManifest(checkpoints.path());
  ASSERT_TRUE(manifest.has_value());
  ASSERT_FALSE(manifest->inflightFile.empty());

  config.resume = true;
  config.prefetch = false;  // resume with the serial loader
  NetworkSynthesizer resumed(config);
  const auto adjacency = resumed.synthesizeAdjacency(files);
  EXPECT_EQ(adjacency.toTriplets(), reference.toTriplets());
  EXPECT_TRUE(resumed.report().inflightRestored);
}

}  // namespace
}  // namespace chisimnet::net

/// The process transport re-enters this binary for its workers (the
/// default worker executable is /proc/self/exe); the worker hook must run
/// before gtest takes over, so this suite supplies its own main.
int main(int argc, char** argv) {
  if (const auto workerExit = chisimnet::net::maybeRunSynthesisWorker()) {
    return *workerExit;
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
