#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "chisimnet/elog/clg5.hpp"
#include "chisimnet/elog/log_directory.hpp"
#include "chisimnet/net/executor.hpp"
#include "chisimnet/net/synthesis.hpp"
#include "chisimnet/sparse/collocation.hpp"
#include "chisimnet/util/rng.hpp"

/// Executor-abstraction tests: the message-passing backend must run the
/// exact same stage driver as the shared-memory backend — same adjacency
/// bit-for-bit, same unified SynthesisReport counters, with the comm byte
/// accounting and per-stage timings populated (previously all-zero on the
/// standalone distributed path).

namespace chisimnet::net {
namespace {

using table::Event;

class DistributedSynthesisTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("chisimnet_dist_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// When byPlace is set, events land in the file owning their place (as
  /// real per-rank logs do) so whole-file batching is exactly additive.
  std::vector<std::filesystem::path> writeRandomLogs(std::uint64_t seed,
                                                     std::size_t events,
                                                     int files,
                                                     bool byPlace = false) {
    util::Rng rng(seed);
    std::vector<std::vector<Event>> buffers(files);
    for (std::size_t i = 0; i < events; ++i) {
      const auto start = static_cast<table::Hour>(rng.uniformBelow(96));
      const Event event{
          start, start + 1 + static_cast<table::Hour>(rng.uniformBelow(8)),
          static_cast<table::PersonId>(rng.uniformBelow(80)),
          static_cast<table::ActivityId>(rng.uniformBelow(5)),
          static_cast<table::PlaceId>(rng.uniformBelow(20))};
      buffers[byPlace ? event.place % static_cast<std::uint32_t>(files)
                      : i % files]
          .push_back(event);
    }
    std::vector<std::filesystem::path> paths;
    for (int f = 0; f < files; ++f) {
      const auto path = elog::logFilePath(dir_, f);
      elog::ChunkedLogWriter writer(path);
      writer.writeChunk(buffers[f]);
      writer.close();
      paths.push_back(path);
    }
    return paths;
  }

  std::filesystem::path dir_;
};

TEST(CollocationSerialization, RoundTrip) {
  util::Rng rng(5);
  std::vector<Event> events;
  for (int i = 0; i < 60; ++i) {
    const auto start = static_cast<table::Hour>(rng.uniformBelow(48));
    events.push_back(Event{start,
                           start + 1 + static_cast<table::Hour>(rng.uniformBelow(5)),
                           static_cast<table::PersonId>(rng.uniformBelow(15)),
                           0, 7});
  }
  const sparse::CollocationMatrix original(7, events, 0, 48);
  const auto bytes = original.toBytes();
  const sparse::CollocationMatrix copy =
      sparse::CollocationMatrix::fromBytes(bytes);
  ASSERT_EQ(copy.place(), original.place());
  ASSERT_EQ(copy.personCount(), original.personCount());
  ASSERT_EQ(copy.nnz(), original.nnz());
  ASSERT_EQ(copy.sliceHours(), original.sliceHours());
  ASSERT_EQ(copy.occupiedHours(), original.occupiedHours());
  for (std::size_t row = 0; row < original.personCount(); ++row) {
    EXPECT_EQ(copy.personAt(row), original.personAt(row));
    const auto a = original.hoursAt(row);
    const auto b = copy.hoursAt(row);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
}

TEST(CollocationSerialization, TruncationDetected) {
  const std::vector<Event> events{{0, 3, 1, 0, 7}, {1, 4, 2, 0, 7}};
  const sparse::CollocationMatrix matrix(7, events, 0, 8);
  auto bytes = matrix.toBytes();
  bytes.pop_back();
  EXPECT_THROW(sparse::CollocationMatrix::fromBytes(bytes), std::runtime_error);
}

TEST(CollocationOccupancy, OccupiedHoursCountsDistinctHours) {
  // Persons 1 and 2 overlap hours [0,3); person 3 alone at hour 5.
  const std::vector<Event> events{{0, 3, 1, 0, 7}, {0, 3, 2, 0, 7},
                                  {5, 6, 3, 0, 7}};
  const sparse::CollocationMatrix matrix(7, events, 0, 8);
  EXPECT_EQ(matrix.nnz(), 7u);
  EXPECT_EQ(matrix.occupiedHours(), 4u);  // hours 0,1,2,5
}

class ExecutorRankSweep
    : public DistributedSynthesisTest,
      public ::testing::WithParamInterface<unsigned> {};

TEST_P(ExecutorRankSweep, MatchesSharedMemoryBackend) {
  const auto files = writeRandomLogs(GetParam(), 800, 3);

  SynthesisConfig config;
  config.windowStart = 0;
  config.windowEnd = 96;
  config.workers = GetParam();

  NetworkSynthesizer shared(config);
  const auto reference = shared.synthesizeAdjacency(files);

  config.backend = SynthesisBackend::kMessagePassing;
  NetworkSynthesizer mp(config);
  const auto distributed = mp.synthesizeAdjacency(files);

  EXPECT_EQ(distributed.toTriplets(), reference.toTriplets());

  // One report type serves both backends, counter for counter.
  const SynthesisReport& report = mp.report();
  EXPECT_EQ(report.backend, SynthesisBackend::kMessagePassing);
  EXPECT_EQ(report.edges, reference.edgeCount());
  EXPECT_EQ(report.logEntriesLoaded, shared.report().logEntriesLoaded);
  EXPECT_EQ(report.placesProcessed, shared.report().placesProcessed);
  EXPECT_EQ(report.collocationNnz, shared.report().collocationNnz);
  EXPECT_EQ(report.batches, shared.report().batches);
  EXPECT_EQ(report.partitionLoads.size(), config.workers);

  // Comm accounting: the MP path moves bytes, the shared path moves none.
  EXPECT_GT(report.bytesScattered, 0u);
  EXPECT_GT(report.bytesReturned, 0u);
  EXPECT_EQ(shared.report().bytesScattered, 0u);
  EXPECT_EQ(shared.report().bytesReturned, 0u);

  // Per-stage seconds are measured for the MP path (previously all-zero).
  EXPECT_GT(report.collocationSeconds + report.adjacencySeconds, 0.0);
  EXPECT_GT(report.totalSeconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Ranks, ExecutorRankSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u));

TEST_F(DistributedSynthesisTest, BatchingAndPrefetchWorkOnMessagePassing) {
  // filesPerBatch and prefetch were silently ignored by the old standalone
  // distributed path; through the unified driver they must work and report.
  const auto files = writeRandomLogs(13, 900, 6, /*byPlace=*/true);
  SynthesisConfig config;
  config.windowEnd = 96;
  config.workers = 3;
  NetworkSynthesizer shared(config);
  const auto reference = shared.synthesizeAdjacency(files);

  config.backend = SynthesisBackend::kMessagePassing;
  for (const std::size_t filesPerBatch : {std::size_t{1}, std::size_t{3}}) {
    for (const bool prefetch : {false, true}) {
      config.filesPerBatch = filesPerBatch;
      config.prefetch = prefetch;
      NetworkSynthesizer mp(config);
      const auto adjacency = mp.synthesizeAdjacency(files);
      const std::string label = "filesPerBatch " +
                                std::to_string(filesPerBatch) +
                                (prefetch ? " prefetch" : " serial");
      EXPECT_EQ(adjacency.toTriplets(), reference.toTriplets()) << label;
      EXPECT_EQ(mp.report().batches,
                (files.size() + filesPerBatch - 1) / filesPerBatch)
          << label;
      EXPECT_EQ(mp.report().prefetchEnabled, prefetch) << label;
    }
  }
}

TEST_F(DistributedSynthesisTest, InMemoryTableWorksOnMessagePassing) {
  const auto files = writeRandomLogs(21, 400, 2);
  const table::EventTable events = elog::loadEvents(files, 0, 96);
  SynthesisConfig config;
  config.windowEnd = 96;
  config.workers = 3;
  config.backend = SynthesisBackend::kMessagePassing;
  NetworkSynthesizer mp(config);
  EXPECT_EQ(mp.synthesizeAdjacency(events).toTriplets(),
            bruteForceAdjacency(events, 0, 96).toTriplets());
}

TEST_F(DistributedSynthesisTest, WindowRestrictsResult) {
  const auto files = writeRandomLogs(42, 500, 2);
  SynthesisConfig narrow;
  narrow.windowStart = 10;
  narrow.windowEnd = 20;
  narrow.workers = 3;
  narrow.backend = SynthesisBackend::kMessagePassing;
  NetworkSynthesizer mp(narrow);
  const auto narrowResult = mp.synthesizeAdjacency(files);

  narrow.backend = SynthesisBackend::kSharedMemory;
  NetworkSynthesizer shared(narrow);
  EXPECT_EQ(narrowResult.toTriplets(),
            shared.synthesizeAdjacency(files).toTriplets());
}

TEST_F(DistributedSynthesisTest, NaivePartitionSameResultWorseBalance) {
  const auto files = writeRandomLogs(7, 1500, 2);
  SynthesisConfig balanced;
  balanced.windowEnd = 96;
  balanced.workers = 4;
  balanced.backend = SynthesisBackend::kMessagePassing;
  NetworkSynthesizer balancedRun(balanced);
  const auto a = balancedRun.synthesizeAdjacency(files);

  SynthesisConfig naive = balanced;
  naive.balancedPartition = false;
  NetworkSynthesizer naiveRun(naive);
  const auto b = naiveRun.synthesizeAdjacency(files);

  EXPECT_EQ(a.toTriplets(), b.toTriplets());
  EXPECT_LE(balancedRun.report().partitionImbalance,
            naiveRun.report().partitionImbalance + 1e-9);
}

TEST_F(DistributedSynthesisTest, OccupancyWeightSameResultDifferentLoads) {
  const auto files = writeRandomLogs(31, 1200, 2);
  SynthesisConfig config;
  config.windowEnd = 96;
  config.workers = 4;
  config.occupancyWeight = false;  // baseline: the paper's plain-nnz weight
  NetworkSynthesizer nnzRun(config);
  const auto a = nnzRun.synthesizeAdjacency(files);

  config.occupancyWeight = true;
  for (const SynthesisBackend backend :
       {SynthesisBackend::kSharedMemory, SynthesisBackend::kMessagePassing}) {
    config.backend = backend;
    NetworkSynthesizer occRun(config);
    // The weight only steers the partition; the summed adjacency is
    // invariant.
    EXPECT_EQ(occRun.synthesizeAdjacency(files).toTriplets(), a.toTriplets())
        << backendName(backend);
  }
}

TEST_F(DistributedSynthesisTest, AllAdjacencyMethodsAgree) {
  const auto files = writeRandomLogs(9, 600, 2);
  SynthesisConfig config;
  config.windowEnd = 96;
  config.workers = 3;
  config.backend = SynthesisBackend::kMessagePassing;
  config.method = sparse::AdjacencyMethod::kSpGemm;
  NetworkSynthesizer spgemmRun(config);
  const auto spgemm = spgemmRun.synthesizeAdjacency(files);
  config.method = sparse::AdjacencyMethod::kIntervalIntersection;
  NetworkSynthesizer sweepRun(config);
  const auto sweep = sweepRun.synthesizeAdjacency(files);
  EXPECT_EQ(spgemm.toTriplets(), sweep.toTriplets());
  config.method = sparse::AdjacencyMethod::kLocalAccumulate;
  NetworkSynthesizer localRun(config);
  EXPECT_EQ(spgemm.toTriplets(), localRun.synthesizeAdjacency(files).toTriplets());
  const auto& report = localRun.report();
  // Kernel stats travel over the wire beside the triplet runs.
  EXPECT_GT(report.kernelDensePlaces + report.kernelHashPlaces, 0u);
  EXPECT_GE(report.kernelPairHourUpdates, report.kernelGlobalEmits);
}

TEST_F(DistributedSynthesisTest, TreeAndSerialReduceAgree) {
  const auto files = writeRandomLogs(10, 600, 2);
  SynthesisConfig config;
  config.windowEnd = 96;
  config.workers = 5;  // odd rank count: the run tree carries a leftover
  config.backend = SynthesisBackend::kMessagePassing;
  config.treeReduce = true;
  NetworkSynthesizer treeRun(config);
  const auto tree = treeRun.synthesizeAdjacency(files);
  EXPECT_TRUE(treeRun.report().treeReduceEnabled);
  EXPECT_GE(treeRun.report().reduceTreeDepth, 1u);
  config.treeReduce = false;
  NetworkSynthesizer serialRun(config);
  EXPECT_EQ(tree.toTriplets(), serialRun.synthesizeAdjacency(files).toTriplets());
  EXPECT_FALSE(serialRun.report().treeReduceEnabled);
}

TEST_F(DistributedSynthesisTest, RejectsBadInputs) {
  SynthesisConfig config;
  config.backend = SynthesisBackend::kMessagePassing;
  {
    NetworkSynthesizer mp(config);
    EXPECT_THROW(mp.synthesizeAdjacency(std::vector<std::filesystem::path>{}),
                 std::invalid_argument);
  }
  config.windowStart = config.windowEnd = 5;
  EXPECT_THROW(NetworkSynthesizer{config}, std::invalid_argument);
}

TEST_F(DistributedSynthesisTest, UnsupportedConfigIsHardError) {
  // decodeWorkers promises parallel decode, which only the prefetcher
  // delivers — configuring it with prefetch off must fail loudly.
  SynthesisConfig config;
  config.prefetch = false;
  config.decodeWorkers = 2;
  for (const SynthesisBackend backend :
       {SynthesisBackend::kSharedMemory, SynthesisBackend::kMessagePassing}) {
    config.backend = backend;
    EXPECT_THROW(NetworkSynthesizer{config}, std::invalid_argument)
        << backendName(backend);
  }
}

TEST_F(DistributedSynthesisTest, CorruptFileSurfacesOnMessagePassing) {
  auto files = writeRandomLogs(55, 300, 3);
  {
    std::ofstream corrupt(files[1], std::ios::binary | std::ios::trunc);
    corrupt << "not a clg5 file";
  }
  SynthesisConfig config;
  config.windowEnd = 96;
  config.workers = 3;
  config.backend = SynthesisBackend::kMessagePassing;
  for (const bool prefetch : {false, true}) {
    config.prefetch = prefetch;
    NetworkSynthesizer mp(config);
    EXPECT_THROW(mp.synthesizeAdjacency(files), std::exception)
        << (prefetch ? "prefetch" : "serial");
  }
}

}  // namespace
}  // namespace chisimnet::net
