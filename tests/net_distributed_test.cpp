#include <gtest/gtest.h>

#include <filesystem>

#include "chisimnet/elog/clg5.hpp"
#include "chisimnet/elog/log_directory.hpp"
#include "chisimnet/net/distributed.hpp"
#include "chisimnet/net/synthesis.hpp"
#include "chisimnet/sparse/collocation.hpp"
#include "chisimnet/util/rng.hpp"

namespace chisimnet::net {
namespace {

using table::Event;

class DistributedSynthesisTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("chisimnet_dist_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::vector<std::filesystem::path> writeRandomLogs(std::uint64_t seed,
                                                     std::size_t events,
                                                     int files) {
    util::Rng rng(seed);
    std::vector<std::vector<Event>> buffers(files);
    for (std::size_t i = 0; i < events; ++i) {
      const auto start = static_cast<table::Hour>(rng.uniformBelow(96));
      buffers[i % files].push_back(Event{
          start, start + 1 + static_cast<table::Hour>(rng.uniformBelow(8)),
          static_cast<table::PersonId>(rng.uniformBelow(80)),
          static_cast<table::ActivityId>(rng.uniformBelow(5)),
          static_cast<table::PlaceId>(rng.uniformBelow(20))});
    }
    std::vector<std::filesystem::path> paths;
    for (int f = 0; f < files; ++f) {
      const auto path = elog::logFilePath(dir_, f);
      elog::ChunkedLogWriter writer(path);
      writer.writeChunk(buffers[f]);
      writer.close();
      paths.push_back(path);
    }
    return paths;
  }

  std::filesystem::path dir_;
};

TEST(CollocationSerialization, RoundTrip) {
  util::Rng rng(5);
  std::vector<Event> events;
  for (int i = 0; i < 60; ++i) {
    const auto start = static_cast<table::Hour>(rng.uniformBelow(48));
    events.push_back(Event{start,
                           start + 1 + static_cast<table::Hour>(rng.uniformBelow(5)),
                           static_cast<table::PersonId>(rng.uniformBelow(15)),
                           0, 7});
  }
  const sparse::CollocationMatrix original(7, events, 0, 48);
  const auto bytes = original.toBytes();
  const sparse::CollocationMatrix copy =
      sparse::CollocationMatrix::fromBytes(bytes);
  ASSERT_EQ(copy.place(), original.place());
  ASSERT_EQ(copy.personCount(), original.personCount());
  ASSERT_EQ(copy.nnz(), original.nnz());
  ASSERT_EQ(copy.sliceHours(), original.sliceHours());
  for (std::size_t row = 0; row < original.personCount(); ++row) {
    EXPECT_EQ(copy.personAt(row), original.personAt(row));
    const auto a = original.hoursAt(row);
    const auto b = copy.hoursAt(row);
    EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
  }
}

TEST(CollocationSerialization, TruncationDetected) {
  const std::vector<Event> events{{0, 3, 1, 0, 7}, {1, 4, 2, 0, 7}};
  const sparse::CollocationMatrix matrix(7, events, 0, 8);
  auto bytes = matrix.toBytes();
  bytes.pop_back();
  EXPECT_THROW(sparse::CollocationMatrix::fromBytes(bytes), std::runtime_error);
}

class DistributedRankSweep
    : public DistributedSynthesisTest,
      public ::testing::WithParamInterface<unsigned> {};

TEST_P(DistributedRankSweep, MatchesSharedMemoryBackend) {
  const auto files = writeRandomLogs(GetParam(), 800, 3);

  SynthesisConfig config;
  config.windowStart = 0;
  config.windowEnd = 96;
  config.workers = GetParam();
  DistributedReport report;
  const auto distributed = synthesizeDistributed(files, config, &report);

  NetworkSynthesizer shared(config);
  const auto reference = shared.synthesizeAdjacency(files);
  EXPECT_EQ(distributed.toTriplets(), reference.toTriplets());
  EXPECT_EQ(report.edges, reference.edgeCount());
  EXPECT_EQ(report.logEntriesLoaded, shared.report().logEntriesLoaded);
  EXPECT_EQ(report.placesProcessed, shared.report().placesProcessed);
  EXPECT_EQ(report.collocationNnz, shared.report().collocationNnz);
  EXPECT_GT(report.bytesScattered, 0u);
  EXPECT_GT(report.bytesReturned, 0u);
}

INSTANTIATE_TEST_SUITE_P(Ranks, DistributedRankSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u));

TEST_F(DistributedSynthesisTest, WindowRestrictsResult) {
  const auto files = writeRandomLogs(42, 500, 2);
  SynthesisConfig narrow;
  narrow.windowStart = 10;
  narrow.windowEnd = 20;
  narrow.workers = 3;
  const auto narrowResult = synthesizeDistributed(files, narrow);

  NetworkSynthesizer shared(narrow);
  EXPECT_EQ(narrowResult.toTriplets(),
            shared.synthesizeAdjacency(files).toTriplets());
}

TEST_F(DistributedSynthesisTest, NaivePartitionSameResultWorseBalance) {
  const auto files = writeRandomLogs(7, 1500, 2);
  SynthesisConfig balanced;
  balanced.windowEnd = 96;
  balanced.workers = 4;
  DistributedReport balancedReport;
  const auto a = synthesizeDistributed(files, balanced, &balancedReport);

  SynthesisConfig naive = balanced;
  naive.balancedPartition = false;
  DistributedReport naiveReport;
  const auto b = synthesizeDistributed(files, naive, &naiveReport);

  EXPECT_EQ(a.toTriplets(), b.toTriplets());
  EXPECT_LE(balancedReport.partitionImbalance,
            naiveReport.partitionImbalance + 1e-9);
}

TEST_F(DistributedSynthesisTest, BothAdjacencyMethodsAgree) {
  const auto files = writeRandomLogs(9, 600, 2);
  SynthesisConfig config;
  config.windowEnd = 96;
  config.workers = 3;
  config.method = sparse::AdjacencyMethod::kSpGemm;
  const auto spgemm = synthesizeDistributed(files, config);
  config.method = sparse::AdjacencyMethod::kIntervalIntersection;
  const auto sweep = synthesizeDistributed(files, config);
  EXPECT_EQ(spgemm.toTriplets(), sweep.toTriplets());
}

TEST_F(DistributedSynthesisTest, RejectsBadInputs) {
  SynthesisConfig config;
  EXPECT_THROW(synthesizeDistributed({}, config), std::invalid_argument);
  const auto files = writeRandomLogs(1, 10, 1);
  config.windowStart = config.windowEnd = 5;
  EXPECT_THROW(synthesizeDistributed(files, config), std::invalid_argument);
}

}  // namespace
}  // namespace chisimnet::net
