#include <gtest/gtest.h>

#include "chisimnet/net/temporal.hpp"
#include "chisimnet/util/rng.hpp"

namespace chisimnet::net {
namespace {

using table::Event;

table::EventTable randomEvents(std::uint64_t seed, std::size_t count,
                               table::Hour horizon) {
  util::Rng rng(seed);
  table::EventTable events;
  for (std::size_t i = 0; i < count; ++i) {
    const auto start = static_cast<table::Hour>(rng.uniformBelow(horizon));
    events.append(Event{
        start, start + 1 + static_cast<table::Hour>(rng.uniformBelow(6)),
        static_cast<table::PersonId>(rng.uniformBelow(40)), 0,
        static_cast<table::PlaceId>(rng.uniformBelow(10))});
  }
  return events;
}

SynthesisConfig config96() {
  SynthesisConfig config;
  config.windowStart = 0;
  config.windowEnd = 96;
  config.workers = 2;
  return config;
}

TEST(Temporal, SliceBoundariesCoverWindow) {
  const auto events = randomEvents(1, 300, 96);
  const auto slices = synthesizeSlices(events, config96(), 24);
  ASSERT_EQ(slices.size(), 4u);
  EXPECT_EQ(slices.front().start, 0u);
  EXPECT_EQ(slices.back().end, 96u);
  for (std::size_t i = 1; i < slices.size(); ++i) {
    EXPECT_EQ(slices[i].start, slices[i - 1].end);
  }
}

TEST(Temporal, UnevenFinalSlice) {
  const auto events = randomEvents(2, 100, 96);
  SynthesisConfig config = config96();
  config.windowEnd = 50;
  const auto slices = synthesizeSlices(events, config, 24);
  ASSERT_EQ(slices.size(), 3u);
  EXPECT_EQ(slices.back().start, 48u);
  EXPECT_EQ(slices.back().end, 50u);
}

TEST(Temporal, SlicesSumToWholeWindowNetwork) {
  // The paper's "arbitrary time granularity" claim: daily adjacencies must
  // sum exactly to the whole-window adjacency.
  const auto events = randomEvents(3, 500, 96);
  const auto slices = synthesizeSlices(events, config96(), 24);
  sparse::SymmetricAdjacency sum;
  for (const TemporalSlice& slice : slices) {
    sum.merge(slice.adjacency);
  }
  NetworkSynthesizer whole(config96());
  EXPECT_EQ(sum.toTriplets(), whole.synthesizeAdjacency(events).toTriplets());
}

TEST(Temporal, HourlySlicesAlsoSum) {
  const auto events = randomEvents(4, 200, 24);
  SynthesisConfig config = config96();
  config.windowEnd = 24;
  const auto slices = synthesizeSlices(events, config, 1);
  EXPECT_EQ(slices.size(), 24u);
  sparse::SymmetricAdjacency sum;
  for (const TemporalSlice& slice : slices) {
    sum.merge(slice.adjacency);
  }
  NetworkSynthesizer whole(config);
  EXPECT_EQ(sum.toTriplets(), whole.synthesizeAdjacency(events).toTriplets());
}

TEST(Temporal, RejectsZeroSliceWidth) {
  const auto events = randomEvents(5, 10, 24);
  EXPECT_THROW(synthesizeSlices(events, config96(), 0), std::invalid_argument);
}

TEST(Temporal, JaccardIdentityAndDisjoint) {
  sparse::SymmetricAdjacency a;
  a.add(1, 2, 1);
  a.add(3, 4, 1);
  EXPECT_DOUBLE_EQ(edgeJaccard(a, a), 1.0);

  sparse::SymmetricAdjacency b;
  b.add(5, 6, 1);
  EXPECT_DOUBLE_EQ(edgeJaccard(a, b), 0.0);

  sparse::SymmetricAdjacency empty;
  EXPECT_DOUBLE_EQ(edgeJaccard(empty, empty), 1.0);
}

TEST(Temporal, JaccardPartialOverlap) {
  sparse::SymmetricAdjacency a;
  a.add(1, 2, 5);
  a.add(3, 4, 5);
  sparse::SymmetricAdjacency b;
  b.add(1, 2, 99);  // weights differ, only edge presence matters
  b.add(7, 8, 1);
  EXPECT_DOUBLE_EQ(edgeJaccard(a, b), 1.0 / 3.0);
}

TEST(Temporal, PersistenceAsymmetric) {
  sparse::SymmetricAdjacency a;
  a.add(1, 2, 1);
  a.add(3, 4, 1);
  sparse::SymmetricAdjacency b;
  b.add(1, 2, 1);
  EXPECT_DOUBLE_EQ(edgePersistence(a, b), 0.5);
  EXPECT_DOUBLE_EQ(edgePersistence(b, a), 1.0);
  sparse::SymmetricAdjacency empty;
  EXPECT_DOUBLE_EQ(edgePersistence(empty, a), 1.0);
}

TEST(Temporal, RepeatedDailyRoutineHasHighPersistence) {
  // Same routine every day: person 1 and 2 share place 5 at hours 2-4 of
  // each day; persistence between consecutive daily slices is 1.
  table::EventTable events;
  for (table::Hour day = 0; day < 4; ++day) {
    events.append(Event{static_cast<table::Hour>(day * 24 + 2),
                        static_cast<table::Hour>(day * 24 + 4), 1, 0, 5});
    events.append(Event{static_cast<table::Hour>(day * 24 + 2),
                        static_cast<table::Hour>(day * 24 + 4), 2, 0, 5});
  }
  const auto slices = synthesizeSlices(events, config96(), 24);
  for (std::size_t i = 1; i < slices.size(); ++i) {
    EXPECT_DOUBLE_EQ(
        edgeJaccard(slices[i - 1].adjacency, slices[i].adjacency), 1.0);
  }
}

}  // namespace
}  // namespace chisimnet::net
