#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "chisimnet/abm/disease.hpp"
#include "chisimnet/abm/model.hpp"
#include "chisimnet/abm/place_partition.hpp"
#include "chisimnet/elog/log_directory.hpp"
#include "chisimnet/pop/schedule.hpp"

namespace chisimnet::abm {
namespace {

class AbmTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pop::PopulationConfig config;
    config.personCount = 3000;
    config.seed = 2017;
    population_ =
        new pop::SyntheticPopulation(pop::SyntheticPopulation::generate(config));
  }
  static void TearDownTestSuite() {
    delete population_;
    population_ = nullptr;
  }

  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("chisimnet_abm_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  ModelConfig modelConfig(int ranks, std::uint32_t weeks = 1) const {
    ModelConfig config;
    config.logDirectory = dir_;
    config.rankCount = ranks;
    config.weeks = weeks;
    config.scheduleSeed = 777;
    return config;
  }

  /// All logged events across rank files, canonically sorted.
  std::vector<table::Event> loadSorted() const {
    const auto files = elog::listLogFiles(dir_);
    std::vector<table::Event> events;
    for (const auto& file : files) {
      elog::ChunkedLogReader reader(file);
      const auto chunk = reader.readAll();
      events.insert(events.end(), chunk.begin(), chunk.end());
    }
    std::sort(events.begin(), events.end());
    return events;
  }

  /// Every regular file in `dir` (CLG5 and CLX5 alike), name -> raw bytes.
  static std::map<std::string, std::string> readRawFiles(
      const std::filesystem::path& dir) {
    std::map<std::string, std::string> out;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (!entry.is_regular_file()) {
        continue;
      }
      std::ifstream in(entry.path(), std::ios::binary);
      std::ostringstream bytes;
      bytes << in.rdbuf();
      out[entry.path().filename().string()] = bytes.str();
    }
    return out;
  }

  static pop::SyntheticPopulation* population_;
  std::filesystem::path dir_;
};

pop::SyntheticPopulation* AbmTest::population_ = nullptr;

TEST_F(AbmTest, PlacePartitionCoversAllPlaces) {
  for (const PartitionStrategy strategy :
       {PartitionStrategy::kNeighborhood, PartitionStrategy::kRoundRobin}) {
    const auto placeRank = assignPlacesToRanks(*population_, 4, strategy);
    ASSERT_EQ(placeRank.size(), population_->places().size());
    for (int rank : placeRank) {
      EXPECT_GE(rank, 0);
      EXPECT_LT(rank, 4);
    }
  }
}

TEST_F(AbmTest, NeighborhoodPartitionKeepsHoodsTogether) {
  const auto placeRank =
      assignPlacesToRanks(*population_, 3, PartitionStrategy::kNeighborhood);
  std::vector<int> hoodRank(population_->neighborhoodCount(), -1);
  for (const pop::Place& place : population_->places()) {
    int& expected = hoodRank[place.neighborhood];
    if (expected == -1) {
      expected = placeRank[place.id];
    }
    EXPECT_EQ(placeRank[place.id], expected)
        << "place " << place.id << " split from its neighborhood";
  }
}

TEST_F(AbmTest, SingleRankPutsEverythingOnRankZero) {
  const auto placeRank =
      assignPlacesToRanks(*population_, 1, PartitionStrategy::kNeighborhood);
  for (int rank : placeRank) {
    EXPECT_EQ(rank, 0);
  }
}

TEST_F(AbmTest, RunProducesOneLogFilePerRank) {
  const ModelStats stats = runModel(*population_, modelConfig(4));
  const auto files = elog::listLogFiles(dir_);
  EXPECT_EQ(files.size(), 4u);
  EXPECT_GT(stats.eventsLogged, 0u);
  EXPECT_EQ(stats.simulatedHours, pop::kHoursPerWeek);
  EXPECT_EQ(stats.perRankEvents.size(), 4u);
  EXPECT_GT(stats.logBytes, stats.eventsLogged * 20);  // 20B payload + framing
}

TEST_F(AbmTest, EventsMatchSchedulesExactly) {
  // The union of logged events must equal every person's schedule stints.
  runModel(*population_, modelConfig(2));
  const auto logged = loadSorted();

  const pop::ScheduleGenerator generator(*population_, 777);
  std::vector<table::Event> expected;
  for (const pop::Person& person : population_->persons()) {
    for (const pop::ScheduleEntry& stint :
         generator.weeklySchedule(person.id, 0)) {
      expected.push_back(table::Event{stint.start, stint.end, person.id,
                                      stint.activity, stint.place});
    }
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(logged, expected);
}

TEST_F(AbmTest, LoggedEventsIndependentOfRankCount) {
  std::vector<std::vector<table::Event>> runs;
  for (int ranks : {1, 2, 5}) {
    std::filesystem::remove_all(dir_);
    runModel(*population_, modelConfig(ranks));
    runs.push_back(loadSorted());
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST_F(AbmTest, LoggedEventsIndependentOfPartitionStrategy) {
  ModelConfig config = modelConfig(3);
  runModel(*population_, config);
  const auto neighborhood = loadSorted();

  std::filesystem::remove_all(dir_);
  config.strategy = PartitionStrategy::kRoundRobin;
  runModel(*population_, config);
  EXPECT_EQ(loadSorted(), neighborhood);
}

TEST_F(AbmTest, NeighborhoodPartitionMigratesLessThanRoundRobin) {
  ModelConfig config = modelConfig(4);
  const ModelStats spatial = runModel(*population_, config);

  std::filesystem::remove_all(dir_);
  config.strategy = PartitionStrategy::kRoundRobin;
  const ModelStats naive = runModel(*population_, config);

  EXPECT_LT(spatial.migrations, naive.migrations);
  EXPECT_LT(spatial.migrationFraction(), naive.migrationFraction());
  // Total movement (local + migrating) is identical either way.
  EXPECT_EQ(spatial.migrations + spatial.localMoves,
            naive.migrations + naive.localMoves);
}

TEST_F(AbmTest, MultiWeekRunCoversAllWeeks) {
  const ModelStats stats = runModel(*population_, modelConfig(2, 2));
  EXPECT_EQ(stats.simulatedHours, 2 * pop::kHoursPerWeek);
  const auto events = loadSorted();
  // There are events in both weeks.
  EXPECT_TRUE(std::any_of(events.begin(), events.end(), [](const auto& e) {
    return e.start < pop::kHoursPerWeek;
  }));
  EXPECT_TRUE(std::any_of(events.begin(), events.end(), [](const auto& e) {
    return e.start >= pop::kHoursPerWeek;
  }));
  // No event crosses the simulation horizon.
  for (const table::Event& event : events) {
    EXPECT_LE(event.end, 2 * pop::kHoursPerWeek);
    EXPECT_LT(event.start, event.end);
  }
}

TEST_F(AbmTest, EventCountsScaleWithPaperRate) {
  // Paper §III: ~5 activity changes per person per day => entries/person/day
  // in the low single digits.
  const ModelStats stats = runModel(*population_, modelConfig(2));
  const double entriesPerPersonDay =
      static_cast<double>(stats.eventsLogged) /
      (static_cast<double>(population_->persons().size()) * 7.0);
  EXPECT_GT(entriesPerPersonDay, 2.0);
  EXPECT_LT(entriesPerPersonDay, 9.0);
}

TEST_F(AbmTest, InitialAgentsSumToPopulation) {
  const ModelStats stats = runModel(*population_, modelConfig(4));
  std::uint64_t total = 0;
  for (std::uint64_t count : stats.perRankInitialAgents) {
    total += count;
  }
  EXPECT_EQ(total, population_->persons().size());
}

// ---------------------------------------------------------------------------
// Differential grid: hourly vs event-driven core. The hard invariant is
// byte identity — for a given (population, scheduleSeed, disease.seed,
// rankCount), every rank's CLG5 (and CLX5 when the disease layer is on)
// file must be byte-for-byte identical between the two cores.
// ---------------------------------------------------------------------------

TEST_F(AbmTest, DifferentialGridBytesIdenticalAcrossCores) {
  for (const std::uint64_t scheduleSeed : {777u, 31u}) {
    for (const int ranks : {1, 2, 4}) {
      std::map<std::string, std::string> reference;
      ModelStats referenceStats;
      for (const ModelCore core : {ModelCore::kHourly, ModelCore::kEventDriven}) {
        std::filesystem::remove_all(dir_);
        ModelConfig config = modelConfig(ranks);
        config.scheduleSeed = scheduleSeed;
        config.core = core;
        const ModelStats stats = runModel(*population_, config);
        if (core == ModelCore::kHourly) {
          reference = readRawFiles(dir_);
          referenceStats = stats;
          EXPECT_EQ(stats.hoursActive, stats.simulatedHours);
          EXPECT_EQ(stats.peakQueueDepth, 0u);
          continue;
        }
        const auto actual = readRawFiles(dir_);
        ASSERT_EQ(actual.size(), reference.size())
            << "ranks=" << ranks << " seed=" << scheduleSeed;
        for (const auto& [name, bytes] : reference) {
          const auto it = actual.find(name);
          ASSERT_NE(it, actual.end()) << name;
          EXPECT_EQ(it->second, bytes)
              << name << " differs between cores at ranks=" << ranks
              << " seed=" << scheduleSeed;
        }
        EXPECT_EQ(stats.eventsLogged, referenceStats.eventsLogged);
        EXPECT_EQ(stats.migrations, referenceStats.migrations);
        EXPECT_EQ(stats.localMoves, referenceStats.localMoves);
        EXPECT_EQ(stats.agentHours, referenceStats.agentHours);
        EXPECT_EQ(stats.logBytes, referenceStats.logBytes);
        EXPECT_LE(stats.hoursActive, stats.simulatedHours);
        EXPECT_GT(stats.peakQueueDepth, 0u);
      }
    }
  }
}

TEST_F(AbmTest, DifferentialGridWithDiseaseBytesIdenticalAcrossCores) {
  for (const std::uint64_t diseaseSeed : {99u, 5u}) {
    for (const int ranks : {1, 2, 4}) {
      DiseaseConfig disease;
      disease.beta = 0.02;  // brisk epidemic: progressions and exposures
      disease.latentHours = 12;
      disease.infectiousHours = 48;
      disease.seed = diseaseSeed;

      std::map<std::string, std::string> reference;
      ModelStats referenceStats;
      DiseaseStats referenceDisease;
      for (const ModelCore core : {ModelCore::kHourly, ModelCore::kEventDriven}) {
        std::filesystem::remove_all(dir_);
        ModelConfig config = modelConfig(ranks);
        config.core = core;
        DiseaseStats diseaseStats;
        const ModelStats stats =
            runModel(*population_, config, disease, diseaseStats);
        if (core == ModelCore::kHourly) {
          reference = readRawFiles(dir_);
          referenceStats = stats;
          referenceDisease = diseaseStats;
          EXPECT_GT(diseaseStats.infections, 0u)
              << "grid config too mild to exercise transmission";
          continue;
        }
        const auto actual = readRawFiles(dir_);
        ASSERT_EQ(actual.size(), reference.size())
            << "ranks=" << ranks << " diseaseSeed=" << diseaseSeed;
        for (const auto& [name, bytes] : reference) {
          const auto it = actual.find(name);
          ASSERT_NE(it, actual.end()) << name;
          EXPECT_EQ(it->second, bytes)
              << name << " differs between cores at ranks=" << ranks
              << " diseaseSeed=" << diseaseSeed;
        }
        EXPECT_EQ(stats.eventsLogged, referenceStats.eventsLogged);
        EXPECT_EQ(stats.migrations, referenceStats.migrations);
        EXPECT_EQ(stats.localMoves, referenceStats.localMoves);
        EXPECT_EQ(stats.agentHours, referenceStats.agentHours);
        EXPECT_EQ(diseaseStats.seeded, referenceDisease.seeded);
        EXPECT_EQ(diseaseStats.infections, referenceDisease.infections);
        EXPECT_EQ(diseaseStats.recovered, referenceDisease.recovered);
        EXPECT_EQ(diseaseStats.peakInfectious, referenceDisease.peakInfectious);
        EXPECT_EQ(diseaseStats.peakHour, referenceDisease.peakHour);
        EXPECT_EQ(diseaseStats.hourlyInfectious,
                  referenceDisease.hourlyInfectious);
        EXPECT_EQ(diseaseStats.finalStates, referenceDisease.finalStates);
      }
    }
  }
}

TEST_F(AbmTest, EventCoreSkipsQuietHoursWithoutDisease) {
  // With no epidemic, hours where no stint ends anywhere are skipped
  // outright; the active-hour count is what the step loop actually visited.
  ModelConfig config = modelConfig(2);
  config.core = ModelCore::kEventDriven;
  const ModelStats stats = runModel(*population_, config);
  EXPECT_GT(stats.hoursActive, 0u);
  EXPECT_LE(stats.hoursActive, stats.simulatedHours);
  EXPECT_GT(stats.peakQueueDepth, 0u);
  // Every pending event is bounded by the resident population.
  EXPECT_LE(stats.peakQueueDepth, population_->persons().size());
}

TEST_F(AbmTest, RejectsBadConfig) {
  ModelConfig config = modelConfig(0);
  EXPECT_THROW(runModel(*population_, config), std::invalid_argument);
  config = modelConfig(1);
  config.weeks = 0;
  EXPECT_THROW(runModel(*population_, config), std::invalid_argument);
}

TEST_F(AbmTest, RejectsEmptyLogDirectory) {
  ModelConfig config = modelConfig(1);
  config.logDirectory.clear();
  EXPECT_THROW(runModel(*population_, config), std::invalid_argument);
}

TEST_F(AbmTest, RejectsLogDirectoryThatIsAFile) {
  std::filesystem::create_directories(dir_);
  const auto file = dir_ / "not_a_directory";
  { std::ofstream out(file); }
  ModelConfig config = modelConfig(1);
  config.logDirectory = file;
  EXPECT_THROW(runModel(*population_, config), std::invalid_argument);
}

}  // namespace
}  // namespace chisimnet::abm
