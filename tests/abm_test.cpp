#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "chisimnet/abm/model.hpp"
#include "chisimnet/abm/place_partition.hpp"
#include "chisimnet/elog/log_directory.hpp"
#include "chisimnet/pop/schedule.hpp"

namespace chisimnet::abm {
namespace {

class AbmTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pop::PopulationConfig config;
    config.personCount = 3000;
    config.seed = 2017;
    population_ =
        new pop::SyntheticPopulation(pop::SyntheticPopulation::generate(config));
  }
  static void TearDownTestSuite() {
    delete population_;
    population_ = nullptr;
  }

  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("chisimnet_abm_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  ModelConfig modelConfig(int ranks, std::uint32_t weeks = 1) const {
    ModelConfig config;
    config.logDirectory = dir_;
    config.rankCount = ranks;
    config.weeks = weeks;
    config.scheduleSeed = 777;
    return config;
  }

  /// All logged events across rank files, canonically sorted.
  std::vector<table::Event> loadSorted() const {
    const auto files = elog::listLogFiles(dir_);
    std::vector<table::Event> events;
    for (const auto& file : files) {
      elog::ChunkedLogReader reader(file);
      const auto chunk = reader.readAll();
      events.insert(events.end(), chunk.begin(), chunk.end());
    }
    std::sort(events.begin(), events.end());
    return events;
  }

  static pop::SyntheticPopulation* population_;
  std::filesystem::path dir_;
};

pop::SyntheticPopulation* AbmTest::population_ = nullptr;

TEST_F(AbmTest, PlacePartitionCoversAllPlaces) {
  for (const PartitionStrategy strategy :
       {PartitionStrategy::kNeighborhood, PartitionStrategy::kRoundRobin}) {
    const auto placeRank = assignPlacesToRanks(*population_, 4, strategy);
    ASSERT_EQ(placeRank.size(), population_->places().size());
    for (int rank : placeRank) {
      EXPECT_GE(rank, 0);
      EXPECT_LT(rank, 4);
    }
  }
}

TEST_F(AbmTest, NeighborhoodPartitionKeepsHoodsTogether) {
  const auto placeRank =
      assignPlacesToRanks(*population_, 3, PartitionStrategy::kNeighborhood);
  std::vector<int> hoodRank(population_->neighborhoodCount(), -1);
  for (const pop::Place& place : population_->places()) {
    int& expected = hoodRank[place.neighborhood];
    if (expected == -1) {
      expected = placeRank[place.id];
    }
    EXPECT_EQ(placeRank[place.id], expected)
        << "place " << place.id << " split from its neighborhood";
  }
}

TEST_F(AbmTest, SingleRankPutsEverythingOnRankZero) {
  const auto placeRank =
      assignPlacesToRanks(*population_, 1, PartitionStrategy::kNeighborhood);
  for (int rank : placeRank) {
    EXPECT_EQ(rank, 0);
  }
}

TEST_F(AbmTest, RunProducesOneLogFilePerRank) {
  const ModelStats stats = runModel(*population_, modelConfig(4));
  const auto files = elog::listLogFiles(dir_);
  EXPECT_EQ(files.size(), 4u);
  EXPECT_GT(stats.eventsLogged, 0u);
  EXPECT_EQ(stats.simulatedHours, pop::kHoursPerWeek);
  EXPECT_EQ(stats.perRankEvents.size(), 4u);
  EXPECT_GT(stats.logBytes, stats.eventsLogged * 20);  // 20B payload + framing
}

TEST_F(AbmTest, EventsMatchSchedulesExactly) {
  // The union of logged events must equal every person's schedule stints.
  runModel(*population_, modelConfig(2));
  const auto logged = loadSorted();

  const pop::ScheduleGenerator generator(*population_, 777);
  std::vector<table::Event> expected;
  for (const pop::Person& person : population_->persons()) {
    for (const pop::ScheduleEntry& stint :
         generator.weeklySchedule(person.id, 0)) {
      expected.push_back(table::Event{stint.start, stint.end, person.id,
                                      stint.activity, stint.place});
    }
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(logged, expected);
}

TEST_F(AbmTest, LoggedEventsIndependentOfRankCount) {
  std::vector<std::vector<table::Event>> runs;
  for (int ranks : {1, 2, 5}) {
    std::filesystem::remove_all(dir_);
    runModel(*population_, modelConfig(ranks));
    runs.push_back(loadSorted());
  }
  EXPECT_EQ(runs[0], runs[1]);
  EXPECT_EQ(runs[0], runs[2]);
}

TEST_F(AbmTest, LoggedEventsIndependentOfPartitionStrategy) {
  ModelConfig config = modelConfig(3);
  runModel(*population_, config);
  const auto neighborhood = loadSorted();

  std::filesystem::remove_all(dir_);
  config.strategy = PartitionStrategy::kRoundRobin;
  runModel(*population_, config);
  EXPECT_EQ(loadSorted(), neighborhood);
}

TEST_F(AbmTest, NeighborhoodPartitionMigratesLessThanRoundRobin) {
  ModelConfig config = modelConfig(4);
  const ModelStats spatial = runModel(*population_, config);

  std::filesystem::remove_all(dir_);
  config.strategy = PartitionStrategy::kRoundRobin;
  const ModelStats naive = runModel(*population_, config);

  EXPECT_LT(spatial.migrations, naive.migrations);
  EXPECT_LT(spatial.migrationFraction(), naive.migrationFraction());
  // Total movement (local + migrating) is identical either way.
  EXPECT_EQ(spatial.migrations + spatial.localMoves,
            naive.migrations + naive.localMoves);
}

TEST_F(AbmTest, MultiWeekRunCoversAllWeeks) {
  const ModelStats stats = runModel(*population_, modelConfig(2, 2));
  EXPECT_EQ(stats.simulatedHours, 2 * pop::kHoursPerWeek);
  const auto events = loadSorted();
  // There are events in both weeks.
  EXPECT_TRUE(std::any_of(events.begin(), events.end(), [](const auto& e) {
    return e.start < pop::kHoursPerWeek;
  }));
  EXPECT_TRUE(std::any_of(events.begin(), events.end(), [](const auto& e) {
    return e.start >= pop::kHoursPerWeek;
  }));
  // No event crosses the simulation horizon.
  for (const table::Event& event : events) {
    EXPECT_LE(event.end, 2 * pop::kHoursPerWeek);
    EXPECT_LT(event.start, event.end);
  }
}

TEST_F(AbmTest, EventCountsScaleWithPaperRate) {
  // Paper §III: ~5 activity changes per person per day => entries/person/day
  // in the low single digits.
  const ModelStats stats = runModel(*population_, modelConfig(2));
  const double entriesPerPersonDay =
      static_cast<double>(stats.eventsLogged) /
      (static_cast<double>(population_->persons().size()) * 7.0);
  EXPECT_GT(entriesPerPersonDay, 2.0);
  EXPECT_LT(entriesPerPersonDay, 9.0);
}

TEST_F(AbmTest, InitialAgentsSumToPopulation) {
  const ModelStats stats = runModel(*population_, modelConfig(4));
  std::uint64_t total = 0;
  for (std::uint64_t count : stats.perRankInitialAgents) {
    total += count;
  }
  EXPECT_EQ(total, population_->persons().size());
}

TEST_F(AbmTest, RejectsBadConfig) {
  ModelConfig config = modelConfig(0);
  EXPECT_THROW(runModel(*population_, config), std::invalid_argument);
  config = modelConfig(1);
  config.weeks = 0;
  EXPECT_THROW(runModel(*population_, config), std::invalid_argument);
}

}  // namespace
}  // namespace chisimnet::abm
