#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/types.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "chisimnet/elog/clg5.hpp"
#include "chisimnet/elog/log_directory.hpp"
#include "chisimnet/net/executor.hpp"
#include "chisimnet/net/mp_protocol.hpp"
#include "chisimnet/net/synthesis.hpp"
#include "chisimnet/runtime/comm.hpp"
#include "chisimnet/runtime/fault.hpp"
#include "chisimnet/runtime/tcp_transport.hpp"
#include "chisimnet/runtime/wire.hpp"
#include "chisimnet/util/rng.hpp"

/// TCP transport suite: addressing, the run-shipping codecs, config
/// validation, end-to-end synthesis over real TCP worker processes —
/// including the acceptance cases (a scripted connection drop must resolve
/// through reconnect, a dead worker process through loss-reassignment,
/// both bit-identical; spill mode must ship run bytes over the wire) —
/// and adversarial handshakes thrown at the root's accept loop from raw
/// client sockets: stale epochs, double connects, forged headers, and
/// half-open connections that answer nothing.

namespace chisimnet::net {
namespace {

using runtime::FaultAction;
using runtime::FaultPlan;
using runtime::FaultSpec;
using runtime::TcpTransport;
using runtime::TcpTransportOptions;
using runtime::wire::Frame;
using runtime::wire::FrameKind;
using runtime::wire::FrameReader;
using table::Event;
using table::Hour;

// ---- local copies of the fuzz-harness fixtures (each test binary keeps
// its helpers in its own anonymous namespace) ----

struct FuzzCase {
  table::EventTable events;
  Hour windowStart = 0;
  Hour windowEnd = 0;
};

FuzzCase makeCase(std::uint64_t seed) {
  util::Rng rng(seed * 2654435761u + 17);
  FuzzCase out;
  const auto persons = static_cast<std::uint32_t>(8 + rng.uniformBelow(48));
  const auto places = static_cast<std::uint32_t>(3 + rng.uniformBelow(10));
  out.windowStart = static_cast<Hour>(rng.uniformBelow(8));
  out.windowEnd = out.windowStart + 24 + static_cast<Hour>(rng.uniformBelow(48));
  const std::size_t count = 80 + rng.uniformBelow(120);
  for (std::size_t i = 0; i < count; ++i) {
    const Hour start = static_cast<Hour>(rng.uniformBelow(out.windowEnd + 8));
    const Hour end = start + 1 + static_cast<Hour>(rng.uniformBelow(9));
    out.events.append(Event{
        start, end, static_cast<table::PersonId>(rng.uniformBelow(persons)),
        static_cast<table::ActivityId>(rng.uniformBelow(5)),
        static_cast<table::PlaceId>(rng.uniformBelow(places))});
  }
  return out;
}

std::vector<std::filesystem::path> writePlacePartitionedFiles(
    const table::EventTable& events, const std::filesystem::path& dir,
    int fileCount) {
  std::vector<std::vector<Event>> buffers(
      static_cast<std::size_t>(fileCount));
  for (std::uint64_t row = 0; row < events.size(); ++row) {
    const Event event = events.row(row);
    buffers[event.place % static_cast<std::uint32_t>(fileCount)].push_back(
        event);
  }
  std::vector<std::filesystem::path> files;
  for (int i = 0; i < fileCount; ++i) {
    const auto path = elog::logFilePath(dir, i);
    elog::ChunkedLogWriter writer(path);
    auto& buffer = buffers[static_cast<std::size_t>(i)];
    std::sort(buffer.begin(), buffer.end());
    for (std::size_t begin = 0; begin < buffer.size(); begin += 32) {
      const std::size_t end = std::min(buffer.size(), begin + 32);
      writer.writeChunk(
          std::span<const Event>(buffer.data() + begin, end - begin));
    }
    writer.close();
    files.push_back(path);
  }
  return files;
}

class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : dir_(std::filesystem::temp_directory_path() / name) {
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  ~ScratchDir() {
    std::error_code ignored;
    std::filesystem::remove_all(dir_, ignored);
  }
  const std::filesystem::path& path() const { return dir_; }

 private:
  std::filesystem::path dir_;
};

void expectEqualAdjacency(const sparse::SymmetricAdjacency& got,
                          const sparse::SymmetricAdjacency& want,
                          const std::string& label) {
  EXPECT_EQ(got.edgeCount(), want.edgeCount()) << label;
  EXPECT_EQ(got.toTriplets(), want.toTriplets()) << label;
}

bool hasFault(const SynthesisReport& report, FaultEvent::Kind kind) {
  return std::any_of(
      report.faults.begin(), report.faults.end(),
      [kind](const FaultEvent& event) { return event.kind == kind; });
}

std::vector<std::byte> fileBytes(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::vector<char> chars((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  std::vector<std::byte> out(chars.size());
  std::memcpy(out.data(), chars.data(), chars.size());
  return out;
}

/// A TCP-transport synthesis config with timings tuned for tests: fast
/// monitor ticks, a short reconnect grace so permanent-death cases resolve
/// quickly, and a command timeout comfortably above one re-dial so the
/// retry lands on the re-admitted worker.
SynthesisConfig tcpConfig(const FuzzCase& fuzz) {
  SynthesisConfig config;
  config.windowStart = fuzz.windowStart;
  config.windowEnd = fuzz.windowEnd;
  config.workers = 3;
  config.backend = SynthesisBackend::kMessagePassing;
  config.transport = MpTransport::kTcp;
  config.heartbeatMs = 100;
  config.faultPolicy = FaultPolicy::kDegrade;
  config.commandTimeoutMs = 600;
  config.commandMaxAttempts = 6;
  config.commandBackoffMs = 1;
  config.connectTimeoutMs = 2000;
  config.connectRetries = 3;
  config.reconnectGraceMs = 1500;
  return config;
}

// ---- addressing ----

TEST(TcpAddressTest, HostPortSpecsParseAndMalformedOnesThrow) {
  const auto [host, port] = runtime::parseHostPort("127.0.0.1:8080");
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 8080);
  const auto [name, high] = runtime::parseHostPort("node17:65535");
  EXPECT_EQ(name, "node17");
  EXPECT_EQ(high, 65535);

  EXPECT_THROW(runtime::parseHostPort(""), std::exception);
  // Port 0 is rejected: an explicit listen address exists so external
  // workers can be told where to dial — an ephemeral port defeats that.
  EXPECT_THROW(runtime::parseHostPort("node17:0"), std::exception);
  EXPECT_THROW(runtime::parseHostPort("hostonly"), std::exception);
  EXPECT_THROW(runtime::parseHostPort(":99"), std::exception);
  EXPECT_THROW(runtime::parseHostPort("host:"), std::exception);
  EXPECT_THROW(runtime::parseHostPort("host:notaport"), std::exception);
  EXPECT_THROW(runtime::parseHostPort("host:65536"), std::exception);
}

// ---- run-shipping codecs ----

TEST(TcpProtocolTest, ShipChunkRoundTripsAndOverrunIsRejected) {
  std::vector<std::byte> data(1000);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::byte>(i * 13 + 7);
  }
  const auto encoded = mp::encodeShipChunk("run_000042.spill", 64, 4096, data);
  const mp::ShipChunkView view = mp::decodeShipChunk(encoded);
  EXPECT_EQ(view.name, "run_000042.spill");
  EXPECT_EQ(view.offset, 64u);
  EXPECT_EQ(view.total, 4096u);
  ASSERT_EQ(view.data.size(), data.size());
  EXPECT_TRUE(std::equal(view.data.begin(), view.data.end(), data.begin()));

  // A chunk whose [offset, offset+size) overruns its own declared total is
  // malformed and must be rejected before any file write.
  const auto overrun = mp::encodeShipChunk("run.spill", 4000, 4096, data);
  EXPECT_THROW(mp::decodeShipChunk(overrun), std::exception);

  // Zero-byte files still ship as exactly one (empty) chunk.
  const auto empty = mp::encodeShipChunk("empty.spill", 0, 0, {});
  const mp::ShipChunkView emptyView = mp::decodeShipChunk(empty);
  EXPECT_EQ(emptyView.total, 0u);
  EXPECT_TRUE(emptyView.data.empty());
}

TEST(TcpProtocolTest, ShippedRunRefRoundTripsAsItsOwnMode) {
  mp::RunRef ref;
  ref.file = "run_000007.spill";  // bare name: bytes travelled on kShipTag
  ref.shipped = true;
  ref.bytes = 123456;
  ref.triplets = 789;
  std::vector<std::byte> buffer;
  mp::putRunRef(buffer, ref);
  std::size_t cursor = 0;
  const mp::RunRef back = mp::takeRunRef(buffer, cursor);
  EXPECT_EQ(cursor, buffer.size());
  EXPECT_TRUE(back.shipped);
  EXPECT_TRUE(back.isFile());
  EXPECT_EQ(back.file, ref.file);
  EXPECT_EQ(back.bytes, ref.bytes);
  EXPECT_EQ(back.triplets, ref.triplets);

  // A plain file ref must come back unshipped — the two file modes must
  // not alias.
  mp::RunRef plain;
  plain.file = "/spill/run_000001.spill";
  plain.bytes = 42;
  buffer.clear();
  mp::putRunRef(buffer, plain);
  cursor = 0;
  EXPECT_FALSE(mp::takeRunRef(buffer, cursor).shipped);
}

TEST(TcpProtocolTest, StageParamsCarryTheShipRunsFlag) {
  mp::StageParams params;
  params.windowStart = 3;
  params.windowEnd = 99;
  params.shipRuns = true;
  const mp::StageParams back = mp::decodeStageParams(mp::encodeStageParams(params));
  EXPECT_TRUE(back.shipRuns);
  params.shipRuns = false;
  EXPECT_FALSE(mp::decodeStageParams(mp::encodeStageParams(params)).shipRuns);
}

// ---- config validation ----

TEST(TcpConfigTest, InvalidCombinationsAreRejected) {
  SynthesisConfig config;
  config.transport = MpTransport::kTcp;  // needs the mp backend
  EXPECT_THROW(NetworkSynthesizer{config}, std::invalid_argument);

  config = SynthesisConfig{};
  config.backend = SynthesisBackend::kMessagePassing;
  config.transport = MpTransport::kTcp;
  config.connectTimeoutMs = 0;
  EXPECT_THROW(NetworkSynthesizer{config}, std::invalid_argument);

  config = SynthesisConfig{};
  config.backend = SynthesisBackend::kMessagePassing;
  config.connectRetries = -1;
  EXPECT_THROW(NetworkSynthesizer{config}, std::invalid_argument);

  // --tcp-listen is meaningless off the tcp transport, and a job file
  // without an explicit listen address has no port the external workers
  // could have been told about.
  config = SynthesisConfig{};
  config.backend = SynthesisBackend::kMessagePassing;
  config.transport = MpTransport::kProcess;
  config.tcpListen = "127.0.0.1:9999";
  config.heartbeatMs = 100;
  EXPECT_THROW(NetworkSynthesizer{config}, std::invalid_argument);

  config = SynthesisConfig{};
  config.backend = SynthesisBackend::kMessagePassing;
  config.transport = MpTransport::kTcp;
  config.tcpJob = "/tmp/job.txt";
  EXPECT_THROW(NetworkSynthesizer{config}, std::invalid_argument);

  // Degrade over TCP without a command timeout would hang forever on a
  // dead worker; the config must say so up front.
  config = SynthesisConfig{};
  config.backend = SynthesisBackend::kMessagePassing;
  config.transport = MpTransport::kTcp;
  config.faultPolicy = FaultPolicy::kDegrade;
  config.commandTimeoutMs = 0;
  EXPECT_THROW(NetworkSynthesizer{config}, std::invalid_argument);
}

// ---- end-to-end synthesis over loopback TCP ----

TEST(TcpSynthesisTest, CleanRunMatchesBruteForce) {
  const FuzzCase fuzz = makeCase(181);
  const auto reference =
      bruteForceAdjacency(fuzz.events, fuzz.windowStart, fuzz.windowEnd);
  ScratchDir scratch("chisimnet_tcp_clean");
  const auto files =
      writePlacePartitionedFiles(fuzz.events, scratch.path(), 4);

  SynthesisConfig config = tcpConfig(fuzz);
  config.filesPerBatch = 2;
  NetworkSynthesizer synthesizer(config);
  const auto adjacency = synthesizer.synthesizeAdjacency(files);
  expectEqualAdjacency(adjacency, reference, "tcp clean");
  const SynthesisReport& report = synthesizer.report();
  EXPECT_EQ(report.ranksLost, 0);
  EXPECT_EQ(report.workersReconnected, 0u);
  EXPECT_EQ(report.workersRespawned, 0u);
  EXPECT_GT(report.bytesScattered, 0u);
}

/// Acceptance (reconnect path): the first root->worker data frame is
/// dropped on the floor along with its connection — a scripted partition,
/// not a process death. The still-live worker re-dials inside the grace
/// window, the command retry lands on the re-admitted connection, and the
/// output is bit-identical with no rank lost and no respawn.
TEST(TcpSynthesisTest, ScriptedConnectionDropReconnectsBitIdentical) {
  const FuzzCase fuzz = makeCase(182);
  const auto reference =
      bruteForceAdjacency(fuzz.events, fuzz.windowStart, fuzz.windowEnd);
  ScratchDir scratch("chisimnet_tcp_drop");
  const auto files =
      writePlacePartitionedFiles(fuzz.events, scratch.path(), 4);

  // Root-side site: the hit counter lives in this process, so exactly one
  // connection is dropped and the re-dialed worker is left alone.
  FaultPlan plan;
  plan.at("tcp.drop",
          FaultSpec{.action = FaultAction::kKillRank, .hit = 1});
  runtime::fault::ScopedFaultPlan scoped(plan);

  SynthesisConfig config = tcpConfig(fuzz);
  config.filesPerBatch = 2;
  NetworkSynthesizer synthesizer(config);
  const auto adjacency = synthesizer.synthesizeAdjacency(files);
  expectEqualAdjacency(adjacency, reference, "tcp reconnect path");
  const SynthesisReport& report = synthesizer.report();
  EXPECT_EQ(report.ranksLost, 0);
  EXPECT_EQ(report.workersRespawned, 0u);
  EXPECT_GE(report.workersReconnected, 1u);
  EXPECT_TRUE(hasFault(report, FaultEvent::Kind::kWorkerReconnect));
  EXPECT_FALSE(hasFault(report, FaultEvent::Kind::kRankLost));
}

/// Acceptance (reassignment path): worker rank 2 SIGKILLs itself on its
/// first command. Over TCP there is no respawn; the reaped child
/// short-circuits the grace window, the rank goes permanently dead, and
/// the run completes on the survivors with identical output.
TEST(TcpSynthesisTest, DeadWorkerProcessIsLostAndItsWorkReassigned) {
  const FuzzCase fuzz = makeCase(183);
  const auto reference =
      bruteForceAdjacency(fuzz.events, fuzz.windowStart, fuzz.windowEnd);
  ScratchDir scratch("chisimnet_tcp_reassign");
  const auto files =
      writePlacePartitionedFiles(fuzz.events, scratch.path(), 4);

  // Worker-side site, shipped via the bootstrap environment; the rank
  // filter confines the crash to rank 2.
  FaultPlan plan;
  plan.at("mp.service.command",
          FaultSpec{.action = FaultAction::kKillProcess, .rank = 2});
  runtime::fault::ScopedFaultPlan scoped(plan);

  SynthesisConfig config = tcpConfig(fuzz);
  config.workers = 4;
  config.filesPerBatch = 2;
  config.reconnectGraceMs = 400;
  NetworkSynthesizer synthesizer(config);
  const auto adjacency = synthesizer.synthesizeAdjacency(files);
  expectEqualAdjacency(adjacency, reference, "tcp reassignment path");
  const SynthesisReport& report = synthesizer.report();
  EXPECT_EQ(report.ranksLost, 1);
  EXPECT_EQ(report.workersRespawned, 0u);
  EXPECT_TRUE(hasFault(report, FaultEvent::Kind::kRankLost));

  // The degraded synthesizer keeps producing identical output afterwards.
  expectEqualAdjacency(synthesizer.synthesizeAdjacency(files), reference,
                       "tcp reassignment path, second run");
}

/// Spill mode over TCP: every worker spills into its own private local
/// directory (no shared filesystem assumed) and ships run bytes to the
/// root on kShipTag; the streamed CADJ file must be byte-identical to the
/// shared-memory backend's, in both the single-owner and sharded merges.
TEST(TcpSynthesisTest, SpillModeShipsRunBytesBitIdentical) {
  const FuzzCase fuzz = makeCase(184);
  ScratchDir scratch("chisimnet_tcp_spill");
  const auto files =
      writePlacePartitionedFiles(fuzz.events, scratch.path(), 4);
  ScratchDir out("chisimnet_tcp_spill_out");

  for (const unsigned shards : {1u, 2u}) {
    const std::string label = "reduce shards " + std::to_string(shards);
    SynthesisConfig sharedConfig;
    sharedConfig.windowStart = fuzz.windowStart;
    sharedConfig.windowEnd = fuzz.windowEnd;
    sharedConfig.workers = 3;
    sharedConfig.memoryBudgetBytes = 32 << 10;  // force real spills
    sharedConfig.reduceShards = shards;
    sharedConfig.spillDir = (out.path() / ("shared_spill" +
                                           std::to_string(shards))).string();
    NetworkSynthesizer shared(sharedConfig);
    const auto sharedOut = out.path() / ("shared" + std::to_string(shards));
    const std::uint64_t sharedEdges = shared.synthesizeToFile(files, sharedOut);

    SynthesisConfig config = tcpConfig(fuzz);
    config.memoryBudgetBytes = 32 << 10;
    config.reduceShards = shards;
    NetworkSynthesizer synthesizer(config);
    const auto tcpOut = out.path() / ("tcp" + std::to_string(shards));
    const std::uint64_t tcpEdges = synthesizer.synthesizeToFile(files, tcpOut);

    EXPECT_EQ(tcpEdges, sharedEdges) << label;
    EXPECT_EQ(fileBytes(tcpOut), fileBytes(sharedOut)) << label;
    const SynthesisReport& report = synthesizer.report();
    EXPECT_EQ(report.ranksLost, 0) << label;
    EXPECT_GT(report.spillRunsWritten, 0u) << label;
  }
}

// ---- adversarial handshakes against the root's accept loop ----

/// A bare 2-rank transport that spawns nothing: the test plays the worker
/// (or the attacker) over raw client sockets against port().
std::unique_ptr<TcpTransport> bareTransport(std::uint64_t graceMs = 2000,
                                            std::uint64_t heartbeatMs = 200,
                                            int missLimit = 8) {
  TcpTransportOptions options;
  options.rankCount = 2;
  options.spawnWorkers = false;
  options.heartbeatMs = heartbeatMs;
  options.heartbeatMissLimit = missLimit;
  options.reconnectGraceMs = graceMs;
  options.connectTimeoutMs = 1000;
  options.helloPayload = {std::byte{0xC5}, std::byte{0x1}};
  return std::make_unique<TcpTransport>(std::move(options));
}

/// Dials the transport and sends one worker hello; returns the connected
/// fd (caller closes).
int dialAndSendHello(const TcpTransport& transport, int rank,
                     std::uint64_t claimedEpoch) {
  const int fd = runtime::dialOnce("127.0.0.1", transport.port(),
                                   std::chrono::milliseconds(1000), rank);
  Frame hello;
  hello.kind = FrameKind::kHello;
  hello.tag = rank;
  hello.payload.resize(sizeof(claimedEpoch));
  std::memcpy(hello.payload.data(), &claimedEpoch, sizeof(claimedEpoch));
  EXPECT_TRUE(runtime::wire::writeAllFd(fd, runtime::wire::encodeFrame(hello)));
  return fd;
}

/// Reads the hello-ack off `fd`; nullopt when the root refused (closed the
/// socket without acking).
std::optional<Frame> readAck(int fd) {
  FrameReader reader(runtime::wire::deadlineReadFn(
      fd, std::chrono::steady_clock::now() + std::chrono::seconds(2)));
  try {
    auto frame = reader.next();
    if (!frame.has_value() || frame->kind != FrameKind::kHelloAck) {
      return std::nullopt;
    }
    return frame;
  } catch (const std::exception&) {
    return std::nullopt;  // torn/refused mid-ack
  }
}

TEST(TcpHandshakeTest, ValidHelloIsAckedWithEpochAndPayload) {
  auto transport = bareTransport();
  const int fd = dialAndSendHello(*transport, 1, 0);
  const auto ack = readAck(fd);
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->tag, 1);  // first granted epoch
  EXPECT_EQ(ack->payload,
            (std::vector<std::byte>{std::byte{0xC5}, std::byte{0x1}}));
  EXPECT_TRUE(transport->waitForWorkers(std::chrono::seconds(2)));
  ::close(fd);
}

TEST(TcpHandshakeTest, StaleEpochAndDoubleConnectAreRefused) {
  auto transport = bareTransport();

  // A zombie claiming an epoch the slot never granted is refused.
  const int stale = dialAndSendHello(*transport, 1, 7);
  EXPECT_FALSE(readAck(stale).has_value());
  ::close(stale);

  // Out-of-range ranks are refused outright (rank 0 is the root itself).
  for (const int rank : {0, 2, -1}) {
    const int bad = dialAndSendHello(*transport, rank, 0);
    EXPECT_FALSE(readAck(bad).has_value()) << "rank " << rank;
    ::close(bad);
  }

  // The genuine worker is still admitted after all those refusals...
  const int good = dialAndSendHello(*transport, 1, 0);
  ASSERT_TRUE(readAck(good).has_value());

  // ...and a second dial claiming the now-live slot is refused without
  // disturbing it.
  const int dup = dialAndSendHello(*transport, 1, 0);
  EXPECT_FALSE(readAck(dup).has_value());
  ::close(dup);
  EXPECT_FALSE(transport->isPermanentlyDead(1));
  ::close(good);
}

TEST(TcpHandshakeTest, ForgedHeadersPoisonOnlyTheirOwnSocket) {
  auto transport = bareTransport();

  {  // wrong magic
    const int fd = runtime::dialOnce("127.0.0.1", transport->port(),
                                     std::chrono::milliseconds(1000), 1);
    std::vector<std::byte> junk(runtime::wire::kFrameHeaderBytes,
                                std::byte{0x5A});
    EXPECT_TRUE(runtime::wire::writeAllFd(fd, junk));
    EXPECT_FALSE(readAck(fd).has_value());
    ::close(fd);
  }
  {  // hello with a hostile payload length: refused from the header check,
     // never allocated
    const int fd = runtime::dialOnce("127.0.0.1", transport->port(),
                                     std::chrono::milliseconds(1000), 1);
    std::vector<std::byte> header;
    const auto append = [&header](auto value) {
      const std::size_t at = header.size();
      header.resize(at + sizeof(value));
      std::memcpy(header.data() + at, &value, sizeof(value));
    };
    append(runtime::wire::kFrameMagic);
    append(std::uint32_t{4});  // kHello
    append(std::int32_t{1});
    append(std::uint64_t{runtime::kMaxPayloadBytes + 1});
    EXPECT_TRUE(runtime::wire::writeAllFd(fd, header));
    EXPECT_FALSE(readAck(fd).has_value());
    ::close(fd);
  }

  // The accept loop survives both attackers: the real worker still gets in.
  const int good = dialAndSendHello(*transport, 1, 0);
  EXPECT_TRUE(readAck(good).has_value());
  ::close(good);
}

TEST(TcpHandshakeTest, HalfOpenConnectionIsDetectedByPingSilence) {
  // Tight monitor: 40 ms pings, 3 misses, no reconnect grace — a peer
  // that never answers is permanently dead within ~a second.
  auto transport = bareTransport(/*graceMs=*/0, /*heartbeatMs=*/40,
                                 /*missLimit=*/3);
  const int fd = dialAndSendHello(*transport, 1, 0);
  ASSERT_TRUE(readAck(fd).has_value());

  // Play dead: never answer a ping, never send a frame, keep the socket
  // open. Only ping silence can catch this (no EOF, no local child).
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!transport->isPermanentlyDead(1) &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  EXPECT_TRUE(transport->isPermanentlyDead(1));

  // recvFor on the dead rank fails fast instead of burning its timeout.
  const auto begin = std::chrono::steady_clock::now();
  EXPECT_FALSE(transport
                   ->recvFor(0, std::chrono::milliseconds(5000), 1, 0)
                   .has_value());
  EXPECT_LT(std::chrono::steady_clock::now() - begin,
            std::chrono::milliseconds(2500));

  const auto events = transport->drainEvents();
  EXPECT_TRUE(std::any_of(
      events.begin(), events.end(), [](const auto& event) {
        return event.kind ==
               TcpTransport::WorkerEvent::Kind::kPermanentDeath;
      }));
  ::close(fd);
}

// ---- dial retry budget ----

TEST(TcpDialTest, RetryBudgetIsHonoredAndCounted) {
  FaultPlan plan;
  plan.at("tcp.connect", FaultSpec{.action = FaultAction::kThrow});
  runtime::fault::ScopedFaultPlan scoped(plan);

  // The fault fires before any real connect, so the address never matters.
  EXPECT_THROW(runtime::dialWithRetry("127.0.0.1", 1, /*perAttemptTimeout=*/
                                      std::chrono::milliseconds(50),
                                      /*retries=*/3, /*backoffMs=*/1,
                                      /*rank=*/1),
               std::exception);
  EXPECT_EQ(plan.hitCount("tcp.connect"), 4u);  // 1 + retries attempts
}

}  // namespace
}  // namespace chisimnet::net

/// The TCP transport re-enters this binary for its loopback workers (the
/// default worker executable is /proc/self/exe); the worker hook must run
/// before gtest takes over, so this suite supplies its own main.
int main(int argc, char** argv) {
  if (const auto workerExit = chisimnet::net::maybeRunSynthesisWorker()) {
    return *workerExit;
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
