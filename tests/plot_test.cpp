#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "chisimnet/stats/plot.hpp"

namespace chisimnet::stats {
namespace {

class PlotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "chisimnet_plot";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string slurp(const std::filesystem::path& path) const {
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }

  std::filesystem::path dir_;
};

TEST_F(PlotTest, ScatterRendersPointsLinesAndLegend) {
  ScatterPlot plot("Test Title", "x axis", "y axis");
  PlotSeries points;
  points.label = "data";
  points.points = {{1, 2}, {3, 4}, {5, 6}};
  plot.addSeries(points);
  PlotSeries line;
  line.label = "model";
  line.drawLine = true;
  line.drawMarkers = false;
  line.dash = "6,3";
  line.points = {{1, 1}, {5, 5}};
  plot.addSeries(line);

  const auto path = dir_ / "scatter.svg";
  plot.writeSvg(path);
  const std::string content = slurp(path);
  EXPECT_NE(content.find("<svg"), std::string::npos);
  EXPECT_NE(content.find("Test Title"), std::string::npos);
  EXPECT_NE(content.find("x axis"), std::string::npos);
  EXPECT_NE(content.find("y axis"), std::string::npos);
  // Three data markers.
  EXPECT_EQ(std::count(content.begin(), content.end(), 'c') >= 3, true);
  EXPECT_NE(content.find("<polyline"), std::string::npos);
  EXPECT_NE(content.find("stroke-dasharray=\"6,3\""), std::string::npos);
  EXPECT_NE(content.find(">data<"), std::string::npos);
  EXPECT_NE(content.find(">model<"), std::string::npos);
}

TEST_F(PlotTest, LogAxesDropNonPositivePoints) {
  ScatterPlot plot("Log", "k", "p");
  plot.setLogX(true);
  plot.setLogY(true);
  PlotSeries series;
  series.points = {{0, 1}, {-2, 5}, {10, 0.1}, {100, 0.01}};
  plot.addSeries(series);
  const auto path = dir_ / "log.svg";
  plot.writeSvg(path);
  const std::string content = slurp(path);
  // Only the two positive points produce circles.
  std::size_t circles = 0;
  std::size_t at = 0;
  while ((at = content.find("<circle", at)) != std::string::npos) {
    ++circles;
    at += 7;
  }
  EXPECT_EQ(circles, 2u);
  // Decade tick labels appear.
  EXPECT_NE(content.find("1e1"), std::string::npos);
  EXPECT_NE(content.find("1e2"), std::string::npos);
}

TEST_F(PlotTest, EmptyPlotRejected) {
  ScatterPlot plot("Empty", "x", "y");
  EXPECT_THROW(plot.writeSvg(dir_ / "nope.svg"), std::invalid_argument);

  ScatterPlot onlyNegative("Neg", "x", "y");
  onlyNegative.setLogX(true);
  PlotSeries series;
  series.points = {{-1, 1}};
  onlyNegative.addSeries(series);
  EXPECT_THROW(onlyNegative.writeSvg(dir_ / "nope.svg"),
               std::invalid_argument);
}

TEST_F(PlotTest, TitleIsXmlEscaped) {
  ScatterPlot plot("a < b & c", "x", "y");
  PlotSeries series;
  series.points = {{1, 1}, {2, 2}};
  plot.addSeries(series);
  const auto path = dir_ / "escape.svg";
  plot.writeSvg(path);
  const std::string content = slurp(path);
  EXPECT_NE(content.find("a &lt; b &amp; c"), std::string::npos);
  EXPECT_EQ(content.find("a < b & c"), std::string::npos);
}

TEST_F(PlotTest, HistogramRendersBars) {
  Histogram histogram(0.0, 1.0, 10);
  for (int i = 0; i < 50; ++i) {
    histogram.add(0.95);  // spike in the last bin
  }
  histogram.add(0.05);
  const auto path = dir_ / "hist.svg";
  writeHistogramSvg(histogram, "Hist", "coefficient", path);
  const std::string content = slurp(path);
  std::size_t bars = 0;
  std::size_t at = 0;
  while ((at = content.find("<rect", at)) != std::string::npos) {
    ++bars;
    at += 5;
  }
  // Background + frame + 10 bins.
  EXPECT_EQ(bars, 12u);
  EXPECT_NE(content.find("Hist"), std::string::npos);
  EXPECT_NE(content.find(">50<"), std::string::npos);  // y-axis max label
}

}  // namespace
}  // namespace chisimnet::stats
