#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "chisimnet/elog/clg5.hpp"
#include "chisimnet/elog/log_directory.hpp"
#include "chisimnet/elog/prefetch.hpp"
#include "chisimnet/net/checkpoint.hpp"
#include "chisimnet/net/synthesis.hpp"
#include "chisimnet/runtime/comm.hpp"
#include "chisimnet/runtime/fault.hpp"
#include "chisimnet/runtime/thread_pool.hpp"
#include "chisimnet/sparse/spill.hpp"
#include "chisimnet/util/rng.hpp"

/// Fault-tolerance suite: the deterministic injection framework itself,
/// the hardened comm layer, CLG5 decode-error context, input quarantine,
/// rank retry / loss recovery on the message-passing backend, and batch
/// checkpoint / kill-and-resume — including the two acceptance cases of
/// the fault-tolerant synthesis work: a permanently lost rank must not
/// change the output, and a killed-and-resumed run must be bit-identical
/// to an uninterrupted one on both backends.

namespace chisimnet::net {
namespace {

using runtime::FaultAction;
using runtime::FaultInjected;
using runtime::FaultPlan;
using runtime::FaultSite;
using runtime::FaultSpec;
using table::Event;
using table::Hour;

// ---- local copies of the fuzz-harness fixtures (each test binary keeps
// its helpers in its own anonymous namespace) ----

struct FuzzCase {
  table::EventTable events;
  Hour windowStart = 0;
  Hour windowEnd = 0;
};

FuzzCase makeCase(std::uint64_t seed) {
  util::Rng rng(seed * 2654435761u + 17);
  FuzzCase out;
  const auto persons = static_cast<std::uint32_t>(8 + rng.uniformBelow(48));
  const auto places = static_cast<std::uint32_t>(3 + rng.uniformBelow(10));
  out.windowStart = static_cast<Hour>(rng.uniformBelow(8));
  out.windowEnd = out.windowStart + 24 + static_cast<Hour>(rng.uniformBelow(48));
  const std::size_t count = 80 + rng.uniformBelow(120);
  for (std::size_t i = 0; i < count; ++i) {
    const Hour start = static_cast<Hour>(rng.uniformBelow(out.windowEnd + 8));
    const Hour end = start + 1 + static_cast<Hour>(rng.uniformBelow(9));
    out.events.append(Event{
        start, end, static_cast<table::PersonId>(rng.uniformBelow(persons)),
        static_cast<table::ActivityId>(rng.uniformBelow(5)),
        static_cast<table::PlaceId>(rng.uniformBelow(places))});
  }
  return out;
}

std::vector<std::filesystem::path> writePlacePartitionedFiles(
    const table::EventTable& events, const std::filesystem::path& dir,
    int fileCount) {
  std::vector<std::vector<Event>> buffers(
      static_cast<std::size_t>(fileCount));
  for (std::uint64_t row = 0; row < events.size(); ++row) {
    const Event event = events.row(row);
    buffers[event.place % static_cast<std::uint32_t>(fileCount)].push_back(
        event);
  }
  std::vector<std::filesystem::path> files;
  for (int i = 0; i < fileCount; ++i) {
    const auto path = elog::logFilePath(dir, i);
    elog::ChunkedLogWriter writer(path);
    auto& buffer = buffers[static_cast<std::size_t>(i)];
    std::sort(buffer.begin(), buffer.end());
    for (std::size_t begin = 0; begin < buffer.size(); begin += 32) {
      const std::size_t end = std::min(buffer.size(), begin + 32);
      writer.writeChunk(
          std::span<const Event>(buffer.data() + begin, end - begin));
    }
    writer.close();
    files.push_back(path);
  }
  return files;
}

class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : dir_(std::filesystem::temp_directory_path() / name) {
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  ~ScratchDir() {
    std::error_code ignored;
    std::filesystem::remove_all(dir_, ignored);
  }
  const std::filesystem::path& path() const { return dir_; }

 private:
  std::filesystem::path dir_;
};

void expectEqualAdjacency(const sparse::SymmetricAdjacency& got,
                          const sparse::SymmetricAdjacency& want,
                          const std::string& label) {
  EXPECT_EQ(got.edgeCount(), want.edgeCount()) << label;
  EXPECT_EQ(got.toTriplets(), want.toTriplets()) << label;
}

/// Truncates a CLG5 file to half its size: the footer is gone, so the
/// reader fails at header/footer level (chunkIndex -1).
void truncateFile(const std::filesystem::path& path) {
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
}

std::vector<Event> rowsOf(const table::EventTable& table) {
  std::vector<Event> rows;
  rows.reserve(table.size());
  for (std::uint64_t row = 0; row < table.size(); ++row) {
    rows.push_back(table.row(row));
  }
  return rows;
}

bool hasFault(const SynthesisReport& report, FaultEvent::Kind kind) {
  return std::any_of(
      report.faults.begin(), report.faults.end(),
      [kind](const FaultEvent& event) { return event.kind == kind; });
}

// ---- fault-injection framework ----

TEST(FaultPlanTest, IdleSitesAreInert) {
  ASSERT_FALSE(runtime::fault::armed());
  EXPECT_EQ(runtime::fault::hit("nowhere"), FaultAction::kNone);
}

TEST(FaultPlanTest, OrdinalFiresExactlyOnThatHit) {
  FaultPlan plan;
  plan.at("stage", FaultSpec{.action = FaultAction::kThrow, .hit = 2});
  runtime::fault::ScopedFaultPlan scoped(plan);
  ASSERT_TRUE(runtime::fault::armed());
  EXPECT_EQ(runtime::fault::hit("stage"), FaultAction::kNone);
  try {
    runtime::fault::hit("stage");
    FAIL() << "hit 2 should have thrown";
  } catch (const FaultInjected& error) {
    EXPECT_EQ(error.site(), "stage");
    EXPECT_EQ(error.hit(), 2u);
    EXPECT_NE(std::string(error.what()).find("stage"), std::string::npos);
  }
  EXPECT_EQ(runtime::fault::hit("stage"), FaultAction::kNone);
  EXPECT_EQ(plan.hitCount("stage"), 3u);
  EXPECT_EQ(plan.actedCount("stage"), 1u);
  EXPECT_EQ(plan.hitCount("other"), 0u);
}

TEST(FaultPlanTest, RankFilterRestrictsFiring) {
  FaultPlan plan;
  plan.at("site", FaultSpec{.action = FaultAction::kKillRank, .rank = 3});
  runtime::fault::ScopedFaultPlan scoped(plan);
  FaultSite wrongRank{.rank = 2};
  EXPECT_EQ(runtime::fault::hit("site", wrongRank), FaultAction::kNone);
  FaultSite rightRank{.rank = 3};
  EXPECT_EQ(runtime::fault::hit("site", rightRank), FaultAction::kKillRank);
  EXPECT_EQ(plan.hitCount("site"), 2u);
  EXPECT_EQ(plan.actedCount("site"), 1u);
}

TEST(FaultPlanTest, TruncateShrinksThePayloadInPlace) {
  FaultPlan plan;
  plan.at("wire",
          FaultSpec{.action = FaultAction::kTruncate, .truncateTo = 4});
  runtime::fault::ScopedFaultPlan scoped(plan);
  std::vector<std::byte> payload(10, std::byte{0xAB});
  FaultSite site{.payload = &payload};
  EXPECT_EQ(runtime::fault::hit("wire", site), FaultAction::kTruncate);
  EXPECT_EQ(payload.size(), 4u);
  // A payload-less site treats truncation as a no-op, not a crash.
  EXPECT_EQ(runtime::fault::hit("wire"), FaultAction::kNone);
}

TEST(FaultPlanTest, SeededProbabilityIsDeterministic) {
  const auto decisions = [](std::uint64_t seed) {
    FaultPlan plan(seed);
    plan.at("soak", FaultSpec{.action = FaultAction::kDelay,
                              .probability = 0.5,
                              .delayMs = 0});
    runtime::fault::ScopedFaultPlan scoped(plan);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(runtime::fault::hit("soak") == FaultAction::kDelay);
    }
    return fired;
  };
  const auto first = decisions(7);
  EXPECT_EQ(first, decisions(7));
  EXPECT_NE(first, decisions(8));
  // p = 0.5 over 64 draws: both outcomes occur.
  EXPECT_NE(std::count(first.begin(), first.end(), true), 0);
  EXPECT_NE(std::count(first.begin(), first.end(), true), 64);
}

TEST(FaultPlanTest, ScopedInstallRestoresThePreviousPlan) {
  FaultPlan outer;
  outer.at("x", FaultSpec{.action = FaultAction::kKillRank});
  runtime::fault::ScopedFaultPlan outerScope(outer);
  {
    FaultPlan inner;  // no specs: hits are counted but nothing acts
    runtime::fault::ScopedFaultPlan innerScope(inner);
    EXPECT_EQ(runtime::fault::hit("x"), FaultAction::kNone);
    EXPECT_EQ(inner.hitCount("x"), 1u);
    EXPECT_EQ(outer.hitCount("x"), 0u);
  }
  EXPECT_EQ(runtime::fault::hit("x"), FaultAction::kKillRank);
  EXPECT_EQ(outer.hitCount("x"), 1u);
}

// ---- hardened comm layer ----

TEST(CommHardeningTest, PayloadLengthValidation) {
  EXPECT_NO_THROW(runtime::validatePayloadLength(0));
  EXPECT_NO_THROW(runtime::validatePayloadLength(
      static_cast<std::int64_t>(runtime::kMaxPayloadBytes)));
  EXPECT_THROW(runtime::validatePayloadLength(-1), std::exception);
  EXPECT_THROW(runtime::validatePayloadLength(
                   static_cast<std::int64_t>(runtime::kMaxPayloadBytes) + 1),
               std::exception);
  try {
    runtime::validatePayloadLength(-5);
    FAIL();
  } catch (const std::exception& error) {
    EXPECT_NE(std::string(error.what()).find("payload"), std::string::npos);
  }
}

TEST(CommHardeningTest, RecvForTimesOutThenDelivers) {
  runtime::Communicator::run(2, [](runtime::RankHandle& handle) {
    constexpr int kTag = 7;
    if (handle.rank() == 1) {
      // Nothing sent yet: the deadline must expire, not hang.
      const auto before = std::chrono::steady_clock::now();
      EXPECT_FALSE(
          handle.recvFor(std::chrono::milliseconds(30), 0, kTag).has_value());
      EXPECT_GE(std::chrono::steady_clock::now() - before,
                std::chrono::milliseconds(25));
    }
    handle.barrier();
    if (handle.rank() == 0) {
      const std::uint64_t value = 42;
      handle.sendValue(1, kTag, value);
    } else {
      const auto message =
          handle.recvFor(std::chrono::milliseconds(5000), 0, kTag);
      ASSERT_TRUE(message.has_value());
      EXPECT_EQ(message->value<std::uint64_t>(), 42u);
    }
  });
}

TEST(CommHardeningTest, RankTeamHealthBookkeeping) {
  runtime::RankTeam team(3, [](runtime::RankHandle& handle) {
    handle.recv(0, 1);  // park until the stop message
  });
  EXPECT_EQ(team.liveCount(), 3);
  EXPECT_TRUE(team.isLive(1));
  team.markLost(1);
  team.markLost(1);  // idempotent
  EXPECT_FALSE(team.isLive(1));
  EXPECT_EQ(team.health(1), runtime::RankTeam::RankHealth::kLost);
  EXPECT_EQ(team.liveCount(), 2);
  EXPECT_EQ(team.lostCount(), 1);
  EXPECT_THROW(team.markLost(0), std::exception);  // the driver cannot die
  for (int rank = 1; rank < 3; ++rank) {
    team.root().sendValue(rank, 1, std::uint32_t{0});
  }
}

// ---- CLG5 decode errors carry file/chunk/offset context ----

TEST(Clg5ErrorTest, HeaderFailureNamesFileAndOffset) {
  ScratchDir scratch("chisimnet_fault_clg5_header");
  const auto path = scratch.path() / "garbage.clg5";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a clg5 file at all";
  }
  try {
    elog::ChunkedLogReader reader(path);
    FAIL() << "garbage header must not parse";
  } catch (const elog::Clg5Error& error) {
    EXPECT_EQ(error.file(), path);
    EXPECT_EQ(error.chunkIndex(), -1);
    const std::string what = error.what();
    EXPECT_NE(what.find(path.string()), std::string::npos);
    EXPECT_NE(what.find("byte"), std::string::npos);
    EXPECT_FALSE(error.reason().empty());
  }
}

TEST(Clg5ErrorTest, ChunkFailureNamesChunkAndFirstRecord) {
  const FuzzCase fuzz = makeCase(12);
  ScratchDir scratch("chisimnet_fault_clg5_chunk");
  const auto files =
      writePlacePartitionedFiles(fuzz.events, scratch.path(), 1);
  std::uint64_t chunkOffset = 0;
  std::uint32_t firstChunkEntries = 0;
  {
    elog::ChunkedLogReader reader(files[0]);
    ASSERT_GE(reader.chunks().size(), 2u) << "need a second chunk to corrupt";
    chunkOffset = reader.chunks()[1].offset;
    firstChunkEntries = reader.chunks()[0].entryCount;
  }
  {
    // Flip one payload byte of chunk 1 (24-byte chunk header, then payload)
    // so its CRC check fails.
    std::fstream file(files[0],
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekg(static_cast<std::streamoff>(chunkOffset) + 26);
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5A);
    file.seekp(static_cast<std::streamoff>(chunkOffset) + 26);
    file.write(&byte, 1);
  }
  elog::ChunkedLogReader reader(files[0]);
  EXPECT_NO_THROW(reader.readChunk(0));
  try {
    reader.readChunk(1);
    FAIL() << "corrupted chunk must not decode";
  } catch (const elog::Clg5Error& error) {
    EXPECT_EQ(error.chunkIndex(), 1);
    EXPECT_EQ(error.firstRecord(), firstChunkEntries);
    EXPECT_EQ(error.byteOffset(), chunkOffset);
    const std::string what = error.what();
    EXPECT_NE(what.find("chunk 1"), std::string::npos);
    EXPECT_NE(what.find(files[0].string()), std::string::npos);
  }
}

// ---- input quarantine ----

TEST(QuarantineTest, SerialAndParallelLoadersAgreeWithSurvivors) {
  const FuzzCase fuzz = makeCase(31);
  ScratchDir scratch("chisimnet_fault_quarantine");
  auto files = writePlacePartitionedFiles(fuzz.events, scratch.path(), 4);
  truncateFile(files[2]);

  std::vector<std::filesystem::path> survivors = files;
  survivors.erase(survivors.begin() + 2);
  const table::EventTable reference = elog::loadEvents(survivors, 0, 0xFFFFFFFFu);

  std::vector<elog::QuarantinedFile> quarantined;
  const table::EventTable serial =
      elog::loadEventsQuarantining(files, 0, 0xFFFFFFFFu, quarantined);
  ASSERT_EQ(quarantined.size(), 1u);
  EXPECT_EQ(quarantined[0].file, files[2]);
  EXPECT_EQ(quarantined[0].chunkIndex, -1);
  EXPECT_FALSE(quarantined[0].reason.empty());
  // All-or-nothing: the surviving table equals a clean load over exactly
  // the other files.
  EXPECT_EQ(rowsOf(serial), rowsOf(reference));

  runtime::ThreadPool pool(3);
  std::vector<elog::QuarantinedFile> quarantinedParallel;
  const table::EventTable parallel = elog::loadEventsQuarantiningParallel(
      files, 0, 0xFFFFFFFFu, pool, quarantinedParallel);
  EXPECT_EQ(rowsOf(parallel), rowsOf(serial));
  ASSERT_EQ(quarantinedParallel.size(), 1u);
  EXPECT_EQ(quarantinedParallel[0].file, files[2]);
}

TEST(QuarantineTest, PrefetchLoaderReportsQuarantinePerBatch) {
  const FuzzCase fuzz = makeCase(45);
  ScratchDir scratch("chisimnet_fault_prefetch_quarantine");
  auto files = writePlacePartitionedFiles(fuzz.events, scratch.path(), 3);
  truncateFile(files[1]);

  elog::PrefetchingLoader::Options options;
  options.filesPerBatch = 1;
  options.quarantineCorrupt = true;
  elog::PrefetchingLoader loader(files, options);
  std::size_t batches = 0;
  std::size_t quarantinedTotal = 0;
  while (auto batch = loader.next()) {
    EXPECT_EQ(batch->filesInBatch, 1u);
    if (batches == 1) {
      ASSERT_EQ(batch->quarantined.size(), 1u);
      EXPECT_EQ(batch->quarantined[0].file, files[1]);
      EXPECT_EQ(batch->table.size(), 0u);
    }
    quarantinedTotal += batch->quarantined.size();
    ++batches;
  }
  EXPECT_EQ(batches, 3u);
  EXPECT_EQ(quarantinedTotal, 1u);
}

// ---- PrefetchingLoader destructor regression ----

TEST(PrefetchDestructorTest, DestroyWithBufferedDecodeErrorDoesNotHang) {
  const FuzzCase fuzz = makeCase(52);
  ScratchDir scratch("chisimnet_fault_prefetch_dtor_err");
  auto files = writePlacePartitionedFiles(fuzz.events, scratch.path(), 3);
  truncateFile(files[0]);
  elog::PrefetchingLoader::Options options;
  options.filesPerBatch = 1;
  options.depth = 1;
  {
    elog::PrefetchingLoader loader(files, options);
    // Give the producer time to park the decode exception in the buffer,
    // then destroy without ever calling next(). The join must not hang or
    // rethrow on the destructor path.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

TEST(PrefetchDestructorTest, DestroyWhileWorkersAreMidDecodeDoesNotHang) {
  const FuzzCase fuzz = makeCase(53);
  ScratchDir scratch("chisimnet_fault_prefetch_dtor_busy");
  const auto files =
      writePlacePartitionedFiles(fuzz.events, scratch.path(), 4);
  FaultPlan plan;
  plan.at("prefetch.decode",
          FaultSpec{.action = FaultAction::kDelay, .delayMs = 100});
  runtime::fault::ScopedFaultPlan scoped(plan);
  elog::PrefetchingLoader::Options options;
  options.filesPerBatch = 1;
  options.depth = 1;
  options.decodeWorkers = 2;
  {
    elog::PrefetchingLoader loader(files, options);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    // Producer is inside the delayed decode; destruction must cancel and
    // join without consuming the remaining batches.
  }
  EXPECT_GE(plan.hitCount("prefetch.decode"), 1u);
}

// ---- synthesis degrade mode: quarantined inputs ----

TEST(SynthesisDegradeTest, QuarantinedFileIsExcludedAndReported) {
  const FuzzCase fuzz = makeCase(61);
  ScratchDir scratch("chisimnet_fault_degrade");
  auto files = writePlacePartitionedFiles(fuzz.events, scratch.path(), 4);
  truncateFile(files[1]);
  std::vector<std::filesystem::path> survivors = files;
  survivors.erase(survivors.begin() + 1);
  const table::EventTable survivorEvents =
      elog::loadEvents(survivors, fuzz.windowStart, fuzz.windowEnd);
  const auto reference =
      bruteForceAdjacency(survivorEvents, fuzz.windowStart, fuzz.windowEnd);

  SynthesisConfig config;
  config.windowStart = fuzz.windowStart;
  config.windowEnd = fuzz.windowEnd;
  config.workers = 3;
  config.filesPerBatch = 2;
  config.faultPolicy = FaultPolicy::kDegrade;
  for (const SynthesisBackend backend :
       {SynthesisBackend::kSharedMemory, SynthesisBackend::kMessagePassing}) {
    for (const bool prefetch : {false, true}) {
      config.backend = backend;
      config.prefetch = prefetch;
      NetworkSynthesizer synthesizer(config);
      const auto adjacency = synthesizer.synthesizeAdjacency(files);
      const std::string label = std::string(backendName(backend)) +
                                (prefetch ? " prefetch" : " serial");
      expectEqualAdjacency(adjacency, reference, label);
      const SynthesisReport& report = synthesizer.report();
      ASSERT_EQ(report.quarantined.size(), 1u) << label;
      EXPECT_EQ(report.quarantined[0].file, files[1]) << label;
      EXPECT_TRUE(hasFault(report, FaultEvent::Kind::kFileQuarantined))
          << label;
    }
  }
}

TEST(SynthesisDegradeTest, QuarantineLimitAbortsTheRun) {
  const FuzzCase fuzz = makeCase(62);
  ScratchDir scratch("chisimnet_fault_degrade_limit");
  auto files = writePlacePartitionedFiles(fuzz.events, scratch.path(), 4);
  truncateFile(files[0]);
  truncateFile(files[2]);
  SynthesisConfig config;
  config.windowStart = fuzz.windowStart;
  config.windowEnd = fuzz.windowEnd;
  config.workers = 2;
  config.prefetch = false;
  config.filesPerBatch = 1;
  config.faultPolicy = FaultPolicy::kDegrade;
  config.maxQuarantinedFiles = 1;
  NetworkSynthesizer synthesizer(config);
  EXPECT_THROW(synthesizer.synthesizeAdjacency(files), std::exception);
}

TEST(SynthesisDegradeTest, FaultConfigIsValidated) {
  SynthesisConfig config;
  config.maxQuarantinedFiles = 3;  // requires kDegrade
  EXPECT_THROW(NetworkSynthesizer{config}, std::invalid_argument);
  config = SynthesisConfig{};
  config.resume = true;  // requires checkpointDir
  EXPECT_THROW(NetworkSynthesizer{config}, std::invalid_argument);
  config = SynthesisConfig{};
  config.commandMaxAttempts = 0;
  EXPECT_THROW(NetworkSynthesizer{config}, std::invalid_argument);
}

// ---- message-passing backend: retry and rank loss ----

TEST(RankRetryTest, WorkerCommandFailureIsRetriedUnderDegrade) {
  const FuzzCase fuzz = makeCase(71);
  const auto reference =
      bruteForceAdjacency(fuzz.events, fuzz.windowStart, fuzz.windowEnd);
  SynthesisConfig config;
  config.windowStart = fuzz.windowStart;
  config.windowEnd = fuzz.windowEnd;
  config.workers = 3;
  config.backend = SynthesisBackend::kMessagePassing;
  config.faultPolicy = FaultPolicy::kDegrade;
  config.commandBackoffMs = 1;

  // The first command any service rank processes throws; the worker stays
  // in its loop and answers status=failed, and the root must retry.
  FaultPlan plan;
  plan.at("mp.service.command",
          FaultSpec{.action = FaultAction::kThrow, .hit = 1});
  runtime::fault::ScopedFaultPlan scoped(plan);
  NetworkSynthesizer synthesizer(config);
  expectEqualAdjacency(synthesizer.synthesizeAdjacency(fuzz.events),
                       reference, "retry after worker throw");
  const SynthesisReport& report = synthesizer.report();
  EXPECT_GE(report.commandRetries, 1u);
  EXPECT_EQ(report.ranksLost, 0);
  EXPECT_TRUE(hasFault(report, FaultEvent::Kind::kCommandRetry));
  EXPECT_EQ(plan.actedCount("mp.service.command"), 1u);
}

TEST(RankRetryTest, TruncatedCommandFrameIsRetried) {
  const FuzzCase fuzz = makeCase(72);
  const auto reference =
      bruteForceAdjacency(fuzz.events, fuzz.windowStart, fuzz.windowEnd);
  SynthesisConfig config;
  config.windowStart = fuzz.windowStart;
  config.windowEnd = fuzz.windowEnd;
  config.workers = 3;
  config.backend = SynthesisBackend::kMessagePassing;
  config.faultPolicy = FaultPolicy::kDegrade;
  config.commandBackoffMs = 1;

  // Torn wire frame: the first command sent to a worker is cut below even
  // its header. The worker answers failed with the epoch-0 wildcard and
  // the root resends an intact frame.
  FaultPlan plan;
  plan.at("mp.send", FaultSpec{.action = FaultAction::kTruncate,
                               .hit = 1,
                               .truncateTo = 6});
  runtime::fault::ScopedFaultPlan scoped(plan);
  NetworkSynthesizer synthesizer(config);
  expectEqualAdjacency(synthesizer.synthesizeAdjacency(fuzz.events),
                       reference, "retry after truncated frame");
  EXPECT_GE(synthesizer.report().commandRetries, 1u);
}

TEST(RankRetryTest, FailFastSurfacesTheWorkerError) {
  const FuzzCase fuzz = makeCase(73);
  SynthesisConfig config;
  config.windowStart = fuzz.windowStart;
  config.windowEnd = fuzz.windowEnd;
  config.workers = 2;
  config.backend = SynthesisBackend::kMessagePassing;
  // Default policy: fail fast.
  FaultPlan plan;
  plan.at("mp.service.command",
          FaultSpec{.action = FaultAction::kThrow, .hit = 1});
  runtime::fault::ScopedFaultPlan scoped(plan);
  NetworkSynthesizer synthesizer(config);
  try {
    synthesizer.synthesizeAdjacency(fuzz.events);
    FAIL() << "fail-fast must surface the worker error";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("failed on rank"),
              std::string::npos);
  }
  // The synthesizer (and its rank team) must still shut down cleanly after
  // the failure — covered by scope exit under ASan/TSan.
}

/// Acceptance: a worker rank dies permanently mid-run; the run completes
/// on the survivors, the output is unchanged, and the report says exactly
/// what happened.
TEST(RankLossTest, PermanentRankLossCompletesOnSurvivors) {
  const FuzzCase fuzz = makeCase(74);
  const auto reference =
      bruteForceAdjacency(fuzz.events, fuzz.windowStart, fuzz.windowEnd);
  ScratchDir scratch("chisimnet_fault_rank_loss");
  const auto files =
      writePlacePartitionedFiles(fuzz.events, scratch.path(), 4);

  SynthesisConfig config;
  config.windowStart = fuzz.windowStart;
  config.windowEnd = fuzz.windowEnd;
  config.workers = 4;
  config.backend = SynthesisBackend::kMessagePassing;
  config.faultPolicy = FaultPolicy::kDegrade;
  config.commandTimeoutMs = 250;
  config.commandMaxAttempts = 2;
  config.commandBackoffMs = 1;
  config.filesPerBatch = 2;

  // Rank 2 dies silently on its first command and never answers again.
  FaultPlan plan;
  plan.at("mp.service.command",
          FaultSpec{.action = FaultAction::kKillRank, .rank = 2});
  runtime::fault::ScopedFaultPlan scoped(plan);
  NetworkSynthesizer synthesizer(config);
  const auto adjacency = synthesizer.synthesizeAdjacency(files);
  expectEqualAdjacency(adjacency, reference, "rank loss");

  const SynthesisReport& report = synthesizer.report();
  EXPECT_EQ(report.ranksLost, 1);
  EXPECT_TRUE(hasFault(report, FaultEvent::Kind::kRankLost));
  for (const FaultEvent& event : report.faults) {
    if (event.kind == FaultEvent::Kind::kRankLost) {
      EXPECT_EQ(event.rank, 2);
      EXPECT_FALSE(event.detail.empty());
    }
  }
  EXPECT_EQ(report.batches, 2u);
  // Later batches are partitioned across the 3 survivors only.
  EXPECT_EQ(report.partitionLoads.size(), 3u);
  EXPECT_TRUE(report.quarantined.empty());

  // The same (degraded) synthesizer keeps working for further runs.
  expectEqualAdjacency(synthesizer.synthesizeAdjacency(fuzz.events),
                       reference, "rank loss, second run");
}

// ---- batch checkpoint / resume ----

TEST(CheckpointTest, ManifestRoundTrips) {
  ScratchDir scratch("chisimnet_fault_manifest");
  sparse::SymmetricAdjacency adjacency(64);
  adjacency.add(1, 2, 3);
  adjacency.add(0, 5, 7);
  CheckpointManifest manifest;
  manifest.filesConsumed = 4;
  manifest.batchesDone = 2;
  manifest.configHash = 0xDEADBEEF;
  manifest.quarantined.push_back(elog::QuarantinedFile{
      "/logs/rank_0003.clg5", 7, 4096, "chunk crc mismatch, want 1 got 2"});
  saveCheckpoint(scratch.path(), manifest, adjacency);

  const auto loaded = loadCheckpointManifest(scratch.path());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->filesConsumed, 4u);
  EXPECT_EQ(loaded->batchesDone, 2u);
  EXPECT_EQ(loaded->configHash, 0xDEADBEEF);
  ASSERT_EQ(loaded->quarantined.size(), 1u);
  EXPECT_EQ(loaded->quarantined[0].file, "/logs/rank_0003.clg5");
  EXPECT_EQ(loaded->quarantined[0].chunkIndex, 7);
  EXPECT_EQ(loaded->quarantined[0].byteOffset, 4096u);
  EXPECT_EQ(loaded->quarantined[0].reason,
            "chunk crc mismatch, want 1 got 2");
  const auto restored = loadCheckpointAdjacency(scratch.path(), *loaded);
  EXPECT_EQ(restored.toTriplets(), adjacency.toTriplets());

  // A second checkpoint supersedes the first and GCs its adjacency file.
  manifest.filesConsumed = 6;
  saveCheckpoint(scratch.path(), manifest, adjacency);
  std::size_t adjacencyFiles = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(scratch.path())) {
    adjacencyFiles +=
        entry.path().filename().string().starts_with("adjacency.") ? 1 : 0;
  }
  EXPECT_EQ(adjacencyFiles, 1u);
  EXPECT_EQ(loadCheckpointManifest(scratch.path())->filesConsumed, 6u);
}

TEST(CheckpointTest, MissingCheckpointIsNullopt) {
  ScratchDir scratch("chisimnet_fault_no_manifest");
  EXPECT_FALSE(loadCheckpointManifest(scratch.path()).has_value());
}

/// Acceptance: kill the run between batches, resume, and require the
/// resumed result to be bit-identical to an uninterrupted run — on both
/// backends.
TEST(CheckpointTest, KillAndResumeIsBitIdentical) {
  const FuzzCase fuzz = makeCase(81);
  ScratchDir scratch("chisimnet_fault_resume");
  const auto files =
      writePlacePartitionedFiles(fuzz.events, scratch.path(), 6);

  for (const SynthesisBackend backend :
       {SynthesisBackend::kSharedMemory, SynthesisBackend::kMessagePassing}) {
    const std::string label = backendName(backend);
    ScratchDir checkpoints("chisimnet_fault_resume_ckpt_" + label);

    SynthesisConfig config;
    config.windowStart = fuzz.windowStart;
    config.windowEnd = fuzz.windowEnd;
    config.workers = 3;
    config.backend = backend;
    config.filesPerBatch = 2;  // 3 batches over 6 files

    // Reference: one uninterrupted run, no checkpointing involved.
    NetworkSynthesizer uninterrupted(config);
    const auto reference = uninterrupted.synthesizeAdjacency(files);

    // Interrupted run: crash (injected throw) right after the second
    // batch's checkpoint hits disk.
    config.checkpointDir = checkpoints.path();
    {
      FaultPlan plan;
      plan.at("driver.batch",
              FaultSpec{.action = FaultAction::kThrow, .hit = 2});
      runtime::fault::ScopedFaultPlan scoped(plan);
      NetworkSynthesizer interrupted(config);
      EXPECT_THROW(interrupted.synthesizeAdjacency(files), FaultInjected)
          << label;
      EXPECT_GE(interrupted.report().checkpointsWritten, 2u) << label;
    }
    const auto manifest = loadCheckpointManifest(checkpoints.path());
    ASSERT_TRUE(manifest.has_value()) << label;
    EXPECT_EQ(manifest->filesConsumed, 4u) << label;
    EXPECT_EQ(manifest->batchesDone, 2u) << label;

    // Resume and require bit-identical output.
    config.resume = true;
    NetworkSynthesizer resumed(config);
    const auto adjacency = resumed.synthesizeAdjacency(files);
    EXPECT_EQ(adjacency.toTriplets(), reference.toTriplets()) << label;
    const SynthesisReport& report = resumed.report();
    EXPECT_TRUE(report.resumed) << label;
    EXPECT_EQ(report.filesSkippedByResume, 4u) << label;
    EXPECT_EQ(report.batches, 3u) << label;
    EXPECT_TRUE(hasFault(report, FaultEvent::Kind::kResume)) << label;
    EXPECT_TRUE(hasFault(report, FaultEvent::Kind::kCheckpoint)) << label;
  }
}

TEST(CheckpointTest, ResumeRejectsAMismatchedRun) {
  const FuzzCase fuzz = makeCase(82);
  ScratchDir scratch("chisimnet_fault_resume_mismatch");
  const auto files =
      writePlacePartitionedFiles(fuzz.events, scratch.path(), 4);
  ScratchDir checkpoints("chisimnet_fault_resume_mismatch_ckpt");

  SynthesisConfig config;
  config.windowStart = fuzz.windowStart;
  config.windowEnd = fuzz.windowEnd;
  config.workers = 2;
  config.filesPerBatch = 2;
  config.checkpointDir = checkpoints.path();
  {
    NetworkSynthesizer synthesizer(config);
    synthesizer.synthesizeAdjacency(files);
  }
  // Same checkpoint, different output-relevant config: refuse to resume.
  config.resume = true;
  config.windowEnd += 1;
  NetworkSynthesizer mismatched(config);
  EXPECT_THROW(mismatched.synthesizeAdjacency(files), std::runtime_error);

  // Resume against an empty directory: also a hard error, not a silent
  // from-scratch run.
  config.windowEnd -= 1;
  ScratchDir empty("chisimnet_fault_resume_empty_ckpt");
  config.checkpointDir = empty.path();
  NetworkSynthesizer missing(config);
  EXPECT_THROW(missing.synthesizeAdjacency(files), std::runtime_error);
}

// ---- memory-bounded (spill-mode) checkpointing ----

TEST(CheckpointTest, SpillManifestRoundTrips) {
  ScratchDir scratch("chisimnet_fault_spill_manifest");
  const auto spillDir = scratch.path() / "spill";
  std::filesystem::create_directories(spillDir);

  // Two real runs the manifest references, plus an orphan run and a .tmp
  // husk that the checkpoint GC must sweep.
  std::vector<sparse::SpillRunInfo> runs;
  for (int i = 0; i < 2; ++i) {
    sparse::SpillRunWriter writer(spillDir /
                                  ("run." + std::to_string(i) + ".spl"));
    writer.append(sparse::AdjacencyTriplet{
        static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(i + 3), 5});
    runs.push_back(writer.finish());
  }
  {
    sparse::SpillRunWriter orphan(spillDir / "run.9.spl");
    orphan.append(sparse::AdjacencyTriplet{7, 8, 1});
    orphan.finish();
    std::ofstream husk(spillDir / "run.5.spl.tmp");
    husk << "torn";
  }

  CheckpointManifest manifest;
  manifest.spillMode = true;
  manifest.filesConsumed = 4;
  manifest.batchesDone = 2;
  manifest.configHash = 0xFEEDFACE;
  for (const auto& run : runs) {
    manifest.spillRuns.push_back(SpillRunEntry{
        run.file.filename().string(), run.triplets, run.bytes});
  }
  saveSpillCheckpoint(scratch.path(), manifest, spillDir);

  const auto loaded = loadCheckpointManifest(scratch.path());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->spillMode);
  EXPECT_TRUE(loaded->adjacencyFile.empty());
  EXPECT_EQ(loaded->filesConsumed, 4u);
  EXPECT_EQ(loaded->batchesDone, 2u);
  EXPECT_EQ(loaded->configHash, 0xFEEDFACE);
  ASSERT_EQ(loaded->spillRuns.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(loaded->spillRuns[i].file, runs[i].file.filename().string());
    EXPECT_EQ(loaded->spillRuns[i].triplets, runs[i].triplets);
    EXPECT_EQ(loaded->spillRuns[i].bytes, runs[i].bytes);
  }
  // A spill-mode manifest has no dense snapshot to load.
  EXPECT_THROW(loadCheckpointAdjacency(scratch.path(), *loaded),
               std::exception);

  // GC: referenced runs survive, the orphan and the .tmp husk are gone.
  EXPECT_TRUE(std::filesystem::exists(runs[0].file));
  EXPECT_TRUE(std::filesystem::exists(runs[1].file));
  EXPECT_FALSE(std::filesystem::exists(spillDir / "run.9.spl"));
  EXPECT_FALSE(std::filesystem::exists(spillDir / "run.5.spl.tmp"));
}

/// Acceptance: crash *inside a spill write* — after a spill-mode
/// checkpoint is durable — then resume, and require the resumed
/// memory-bounded run to be bit-identical to the unbounded dense path.
/// The budget is large so the only spill.write hits are the one-run-per-
/// batch checkpoint spills, which makes hit 2 land deterministically in
/// batch 2 on both backends: the crash tears batch 2's run file (the
/// writer unwinds its .tmp) while batch 1's manifest still resolves.
TEST(CheckpointTest, KillDuringSpillResumesBitIdentical) {
  const FuzzCase fuzz = makeCase(83);
  ScratchDir scratch("chisimnet_fault_spill_resume");
  const auto files =
      writePlacePartitionedFiles(fuzz.events, scratch.path(), 6);
  const auto reference =
      bruteForceAdjacency(fuzz.events, fuzz.windowStart, fuzz.windowEnd);

  for (const SynthesisBackend backend :
       {SynthesisBackend::kSharedMemory, SynthesisBackend::kMessagePassing}) {
    const std::string label = std::string(backendName(backend));
    ScratchDir checkpoints("chisimnet_fault_spill_resume_ckpt_" + label);

    SynthesisConfig config;
    config.windowStart = fuzz.windowStart;
    config.windowEnd = fuzz.windowEnd;
    config.workers = 3;
    config.backend = backend;
    config.filesPerBatch = 2;  // 3 batches over 6 files
    config.memoryBudgetBytes = std::uint64_t{64} << 20;
    config.checkpointDir = checkpoints.path();
    {
      FaultPlan plan;
      plan.at("spill.write",
              FaultSpec{.action = FaultAction::kThrow, .hit = 2});
      runtime::fault::ScopedFaultPlan scoped(plan);
      NetworkSynthesizer interrupted(config);
      EXPECT_THROW(interrupted.synthesizeAdjacency(files), FaultInjected)
          << label;
      EXPECT_GE(interrupted.report().checkpointsWritten, 1u) << label;
    }
    const auto manifest = loadCheckpointManifest(checkpoints.path());
    ASSERT_TRUE(manifest.has_value()) << label;
    EXPECT_TRUE(manifest->spillMode) << label;
    EXPECT_EQ(manifest->filesConsumed, 2u) << label;
    EXPECT_EQ(manifest->batchesDone, 1u) << label;
    ASSERT_FALSE(manifest->spillRuns.empty()) << label;
    for (const SpillRunEntry& run : manifest->spillRuns) {
      EXPECT_TRUE(std::filesystem::exists(checkpoints.path() / "spill" /
                                          run.file))
          << label << " " << run.file;
    }

    config.resume = true;
    NetworkSynthesizer resumed(config);
    const auto adjacency = resumed.synthesizeAdjacency(files);
    expectEqualAdjacency(adjacency, reference, label + " spill resume");
    const SynthesisReport& report = resumed.report();
    EXPECT_TRUE(report.resumed) << label;
    EXPECT_EQ(report.filesSkippedByResume, 2u) << label;
    EXPECT_GT(report.spillRunsWritten, 0u) << label;
    EXPECT_TRUE(hasFault(report, FaultEvent::Kind::kResume)) << label;
  }
}

/// Kill during run compaction (the spill.merge site): the crash happens
/// before any compacted output replaces the inputs, so every input run is
/// still on disk, and an accumulator rebuilt over those runs — the resume
/// path's restoreRunFile — merges to exactly the pre-crash totals.
TEST(SpillFaultTest, KillDuringCompactionLeavesRunsRestorable) {
  ScratchDir scratch("chisimnet_fault_spill_merge");
  util::Rng rng(7);
  sparse::SymmetricAdjacency expected(64);

  sparse::SpillingAccumulator::Options options;
  options.dir = scratch.path();
  options.maxLiveRuns = 2;
  options.deferDeletes = true;
  sparse::SpillingAccumulator victim(options);

  FaultPlan plan;
  plan.at("spill.merge", FaultSpec{.action = FaultAction::kThrow, .hit = 1});
  runtime::fault::ScopedFaultPlan scoped(plan);

  // Three spills of overlapping keys; the third pushes the live-run count
  // past maxLiveRuns and the injected fault kills the compaction.
  bool threw = false;
  for (int slice = 0; slice < 3; ++slice) {
    for (int n = 0; n < 400; ++n) {
      const auto i = static_cast<std::uint32_t>(rng.uniformBelow(40));
      auto j = static_cast<std::uint32_t>(rng.uniformBelow(40));
      if (i == j) j = (j + 1) % 40;
      const std::uint64_t weight = 1 + rng.uniformBelow(9);
      victim.add(i, j, weight);
      expected.add(i, j, weight);
    }
    try {
      victim.spillAll();
    } catch (const FaultInjected&) {
      threw = true;
    }
  }
  ASSERT_TRUE(threw);
  ASSERT_EQ(victim.liveRuns().size(), 3u);
  std::vector<sparse::SpillRunInfo> survivors = victim.liveRuns();
  for (const auto& run : survivors) {
    EXPECT_TRUE(std::filesystem::exists(run.file)) << run.file;
  }

  // "Resume": a fresh accumulator restores the surviving runs by name
  // (compaction now succeeds — the plan's single shot is spent) and the
  // merged stream matches the unbounded reference bit for bit.
  sparse::SpillingAccumulator resumed(options);
  for (const auto& run : survivors) {
    resumed.restoreRunFile(run);
  }
  const auto merged = resumed.finishMerge();
  std::vector<sparse::AdjacencyTriplet> drained;
  sparse::AdjacencyTriplet triplet;
  while (merged->next(triplet)) {
    drained.push_back(triplet);
  }
  EXPECT_EQ(drained, expected.toTriplets());
}

// ---- payload-cap regression ----

/// Regression for the silent scale ceiling: a stage-5 reply whose inline
/// triplets would exceed runtime::maxPayloadBytes() must come back as a
/// spilled run file, not abort the send. One crowded place gives ~4000
/// pairs (64 KiB inline) against a 16 KiB test cap.
TEST(PayloadCapTest, OversizedStageFiveReplySpillsInsteadOfAborting) {
  struct CapGuard {
    explicit CapGuard(std::uint64_t bytes) {
      runtime::setMaxPayloadBytesForTesting(bytes);
    }
    ~CapGuard() { runtime::setMaxPayloadBytesForTesting(0); }
  } guard(16 * 1024);

  table::EventTable events;
  for (std::uint32_t person = 0; person < 90; ++person) {
    events.append(Event{1, 5, person, 0, 0});
  }
  const auto reference = bruteForceAdjacency(events, 0, 8);
  ASSERT_GT(reference.edgeCount() * 16, std::uint64_t{16} * 1024);

  ScratchDir scratch("chisimnet_fault_payload_cap");
  const auto files = writePlacePartitionedFiles(events, scratch.path(), 2);

  for (const std::uint64_t budget : {std::uint64_t{0}, std::uint64_t{1}}) {
    SynthesisConfig config;
    config.windowStart = 0;
    config.windowEnd = 8;
    config.workers = 2;
    config.backend = SynthesisBackend::kMessagePassing;
    config.memoryBudgetBytes = budget;
    NetworkSynthesizer synthesizer(config);
    expectEqualAdjacency(synthesizer.synthesizeAdjacency(files), reference,
                         "payload cap, budget " + std::to_string(budget));
  }
}

}  // namespace
}  // namespace chisimnet::net
