#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <map>
#include <memory>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "chisimnet/runtime/cluster.hpp"
#include "chisimnet/runtime/comm.hpp"
#include "chisimnet/runtime/partition.hpp"
#include "chisimnet/runtime/thread_pool.hpp"
#include "chisimnet/util/rng.hpp"

namespace chisimnet::runtime {
namespace {

TEST(Comm, PointToPointValue) {
  Communicator::run(2, [](RankHandle& rank) {
    if (rank.rank() == 0) {
      rank.sendValue<std::uint64_t>(1, 5, 0xABCDu);
    } else {
      const Message message = rank.recv(0, 5);
      EXPECT_EQ(message.source, 0);
      EXPECT_EQ(message.tag, 5);
      EXPECT_EQ(message.value<std::uint64_t>(), 0xABCDu);
    }
  });
}

TEST(Comm, VectorPayloadRoundTrip) {
  Communicator::run(2, [](RankHandle& rank) {
    const std::vector<std::uint32_t> data{1, 2, 3, 4, 5};
    if (rank.rank() == 0) {
      rank.sendVector<std::uint32_t>(1, 0, data);
    } else {
      EXPECT_EQ(rank.recv().as<std::uint32_t>(), data);
    }
  });
}

TEST(Comm, EmptyPayloadDelivered) {
  Communicator::run(2, [](RankHandle& rank) {
    if (rank.rank() == 0) {
      rank.sendVector<std::uint32_t>(1, 9, {});
    } else {
      const Message message = rank.recv(0, 9);
      EXPECT_TRUE(message.payload.empty());
      EXPECT_TRUE(message.as<std::uint32_t>().empty());
    }
  });
}

TEST(Comm, FifoPerSourceAndTag) {
  Communicator::run(2, [](RankHandle& rank) {
    if (rank.rank() == 0) {
      for (std::uint64_t i = 0; i < 50; ++i) {
        rank.sendValue<std::uint64_t>(1, 3, i);
      }
    } else {
      for (std::uint64_t i = 0; i < 50; ++i) {
        EXPECT_EQ(rank.recv(0, 3).value<std::uint64_t>(), i);
      }
    }
  });
}

TEST(Comm, TagFilteringSkipsNonMatching) {
  Communicator::run(2, [](RankHandle& rank) {
    if (rank.rank() == 0) {
      rank.sendValue<int>(1, 1, 100);
      rank.sendValue<int>(1, 2, 200);
    } else {
      // Receive tag 2 first even though tag 1 arrived earlier.
      EXPECT_EQ(rank.recv(0, 2).value<int>(), 200);
      EXPECT_EQ(rank.recv(0, 1).value<int>(), 100);
    }
  });
}

TEST(Comm, WildcardSourceReceivesFromAnyone) {
  Communicator::run(3, [](RankHandle& rank) {
    if (rank.rank() != 0) {
      rank.sendValue<int>(0, 7, rank.rank());
    } else {
      std::set<int> sources;
      for (int i = 0; i < 2; ++i) {
        sources.insert(rank.recv(kAnySource, 7).value<int>());
      }
      EXPECT_EQ(sources, (std::set<int>{1, 2}));
    }
  });
}

TEST(Comm, TryRecvNonBlocking) {
  Communicator::run(2, [](RankHandle& rank) {
    if (rank.rank() == 1) {
      Message message;
      // Tag 43 is never sent: tryRecv must return false without blocking,
      // even while a tag-42 message may already be queued.
      EXPECT_FALSE(rank.tryRecv(message, 0, 43));
      EXPECT_EQ(rank.recv(0, 42).value<int>(), 1);
      rank.barrier();
      // After the barrier the tag-99 message is guaranteed queued.
      EXPECT_TRUE(rank.tryRecv(message, 0, 99));
      EXPECT_EQ(message.value<int>(), 2);
    } else {
      rank.sendValue<int>(1, 42, 1);
      rank.sendValue<int>(1, 99, 2);
      rank.barrier();
    }
  });
}

TEST(Comm, BarrierSynchronizesPhases) {
  std::atomic<int> phase{0};
  Communicator::run(4, [&phase](RankHandle& rank) {
    phase.fetch_add(1);
    rank.barrier();
    EXPECT_EQ(phase.load(), 4);
    rank.barrier();
    phase.fetch_sub(1);
    rank.barrier();
    EXPECT_EQ(phase.load(), 0);
  });
}

TEST(Comm, GatherCollectsAtRoot) {
  Communicator::run(3, [](RankHandle& rank) {
    const auto value = static_cast<std::uint32_t>(rank.rank() * 10);
    const auto bytes = std::as_bytes(std::span<const std::uint32_t>(&value, 1));
    const auto buffers = rank.gather(0, bytes);
    if (rank.rank() == 0) {
      ASSERT_EQ(buffers.size(), 3u);
      for (int source = 0; source < 3; ++source) {
        std::uint32_t got = 0;
        std::memcpy(&got, buffers[source].data(), sizeof(got));
        EXPECT_EQ(got, static_cast<std::uint32_t>(source * 10));
      }
    } else {
      EXPECT_TRUE(buffers.empty());
    }
  });
}

TEST(Comm, BroadcastDeliversRootBytes) {
  Communicator::run(4, [](RankHandle& rank) {
    std::uint64_t value = rank.rank() == 2 ? 777u : 0u;
    const auto out = rank.broadcast(
        2, std::as_bytes(std::span<const std::uint64_t>(&value, 1)));
    std::uint64_t got = 0;
    std::memcpy(&got, out.data(), sizeof(got));
    EXPECT_EQ(got, 777u);
  });
}

TEST(Comm, AllReduceSum) {
  Communicator::run(5, [](RankHandle& rank) {
    const auto result = rank.allReduceU64(
        static_cast<std::uint64_t>(rank.rank() + 1),
        [](std::uint64_t a, std::uint64_t b) { return a + b; });
    EXPECT_EQ(result, 15u);  // 1+2+3+4+5
  });
}

TEST(Comm, AllReduceMax) {
  Communicator::run(4, [](RankHandle& rank) {
    const auto result = rank.allReduceU64(
        static_cast<std::uint64_t>(rank.rank() * 7),
        [](std::uint64_t a, std::uint64_t b) { return std::max(a, b); });
    EXPECT_EQ(result, 21u);
  });
}

TEST(Comm, AllReduceMin) {
  Communicator::run(4, [](RankHandle& rank) {
    // Rank 2 holds the minimum; every rank must agree on it.
    const std::uint64_t mine = rank.rank() == 2 ? 3u : 100u + rank.rank();
    EXPECT_EQ(rank.allReduceMinU64(mine), 3u);
  });
}

TEST(Comm, AllReduceMinSingleRank) {
  Communicator::run(1, [](RankHandle& rank) {
    EXPECT_EQ(rank.allReduceMinU64(42u), 42u);
  });
}

TEST(Comm, RingPassAccumulates) {
  // Token circles the ring twice, each rank adding its id.
  constexpr int kRanks = 6;
  Communicator::run(kRanks, [](RankHandle& rank) {
    const int next = (rank.rank() + 1) % kRanks;
    if (rank.rank() == 0) {
      rank.sendValue<std::uint64_t>(next, 0, 0);
      std::uint64_t token = 0;
      for (int lap = 0; lap < 2; ++lap) {
        token = rank.recv(kRanks - 1, 0).value<std::uint64_t>();
        if (lap == 0) {
          rank.sendValue<std::uint64_t>(next, 0, token);
        }
      }
      // Each lap adds 1+2+...+(kRanks-1) = 15.
      EXPECT_EQ(token, 30u);
    } else {
      for (int lap = 0; lap < 2; ++lap) {
        const auto token = rank.recv(rank.rank() - 1, 0).value<std::uint64_t>();
        rank.sendValue<std::uint64_t>(
            next, 0, token + static_cast<std::uint64_t>(rank.rank()));
      }
    }
  });
}

TEST(Comm, MessageStormAllDelivered) {
  // Every rank sends 200 messages to every other rank with mixed tags;
  // totals and per-(source, tag) FIFO order must survive.
  constexpr int kRanks = 4;
  constexpr int kPerPair = 200;
  Communicator::run(kRanks, [](RankHandle& rank) {
    util::Rng rng(static_cast<std::uint64_t>(rank.rank()) + 1);
    for (int dest = 0; dest < kRanks; ++dest) {
      if (dest == rank.rank()) {
        continue;
      }
      for (std::uint32_t i = 0; i < kPerPair; ++i) {
        const int tag = static_cast<int>(rng.uniformBelow(3));
        rank.sendValue<std::uint32_t>(dest, tag, (tag << 16) | i);
      }
    }
    // Receive everything addressed to us; per (source, tag) payload
    // sequence indices must arrive increasing.
    std::map<std::pair<int, int>, std::uint32_t> lastIndex;
    for (int i = 0; i < (kRanks - 1) * kPerPair; ++i) {
      const Message message = rank.recv();
      const auto value = message.value<std::uint32_t>();
      EXPECT_EQ(static_cast<int>(value >> 16), message.tag);
      const auto key = std::make_pair(message.source, message.tag);
      const std::uint32_t index = value & 0xFFFF;
      const auto it = lastIndex.find(key);
      if (it != lastIndex.end()) {
        EXPECT_GT(index, it->second) << "FIFO violated for source "
                                     << message.source << " tag "
                                     << message.tag;
      }
      lastIndex[key] = index;
    }
    Message leftover;
    rank.barrier();
    EXPECT_FALSE(rank.tryRecv(leftover));
  });
}

TEST(Comm, ExceptionPropagatesFromAnyRank) {
  EXPECT_THROW(Communicator::run(3,
                                 [](RankHandle& rank) {
                                   if (rank.rank() == 1) {
                                     throw std::runtime_error("rank failure");
                                   }
                                   // Other ranks block; abort must wake them.
                                   rank.recv(1, 99);
                                 }),
               std::runtime_error);
}

TEST(Comm, InvalidDestinationRejected) {
  Communicator::run(2, [](RankHandle& rank) {
    if (rank.rank() == 0) {
      EXPECT_THROW(rank.sendValue<int>(5, 0, 1), std::invalid_argument);
    }
  });
}

TEST(RankTeam, ServicesPersistAcrossRounds) {
  constexpr int kStopTag = 1;
  constexpr int kWorkTag = 2;
  // Echo service: doubles each value until told to stop. Unlike
  // Communicator::run, the same service threads serve every round.
  RankTeam team(4, [](RankHandle& rank) {
    Message message;
    while (true) {
      if (rank.tryRecv(message, 0, kStopTag)) {
        return;
      }
      if (rank.tryRecv(message, 0, kWorkTag)) {
        rank.sendValue<std::uint64_t>(0, kWorkTag,
                                      message.value<std::uint64_t>() * 2);
      } else {
        std::this_thread::yield();
      }
    }
  });
  RankHandle& root = team.root();
  for (std::uint64_t round = 0; round < 5; ++round) {
    for (int dest = 1; dest < team.size(); ++dest) {
      root.sendValue<std::uint64_t>(dest, kWorkTag, round * 10 + dest);
    }
    std::uint64_t sum = 0;
    for (int source = 1; source < team.size(); ++source) {
      sum += root.recv(kAnySource, kWorkTag).value<std::uint64_t>();
    }
    EXPECT_EQ(sum, (round * 10 + 1 + round * 10 + 2 + round * 10 + 3) * 2);
  }
  for (int dest = 1; dest < team.size(); ++dest) {
    root.sendValue<int>(dest, kStopTag, 0);
  }
  // Destructor joins the (now returning) services.
}

TEST(RankTeam, ServiceExceptionSurfacesAtRoot) {
  RankTeam team(3, [](RankHandle& rank) {
    if (rank.rank() == 1) {
      throw std::runtime_error("service failure");
    }
    rank.recv(0, 7);  // blocks until the failure aborts the communicator
  });
  // The abort wakes the root's recv; the recorded service error explains it.
  EXPECT_THROW(team.root().recv(1, 7), std::runtime_error);
  EXPECT_THROW(team.rethrowServiceError(), std::runtime_error);
  EXPECT_NE(team.serviceError(), nullptr);
}

TEST(RankTeam, DestructorAbortsBlockedServices) {
  // Services parked in recv with no stop protocol: the destructor's abort
  // must wake and join them without hanging.
  RankTeam team(3, [](RankHandle& rank) { rank.recv(0, 9); });
  EXPECT_EQ(team.size(), 3);
}

TEST(ThreadPool, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.waitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPool) {
  ThreadPool pool(2);
  pool.waitIdle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, SubmitTaskReturnsResults) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submitTask([i] { return i * i; }));
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, SubmitTaskMoveOnlyResult) {
  ThreadPool pool(2);
  auto future = pool.submitTask(
      [] { return std::make_unique<int>(42); });
  EXPECT_EQ(*future.get(), 42);
}

TEST(ThreadPool, SubmitTaskExceptionSurfacesInFuture) {
  ThreadPool pool(2);
  auto future = pool.submitTask(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(future.get(), std::runtime_error);
  // The future captured the exception; waitIdle must stay clean and the
  // pool usable.
  pool.waitIdle();
  EXPECT_EQ(pool.submitTask([] { return 7; }).get(), 7);
}

TEST(ThreadPool, FireAndForgetExceptionSurfacesAtWaitIdle) {
  ThreadPool pool(2);
  pool.submit([] { throw std::logic_error("boom"); });
  EXPECT_THROW(pool.waitIdle(), std::logic_error);
  // First exception wins and is consumed; the pool keeps working.
  pool.waitIdle();
  std::atomic<int> counter{0};
  for (int i = 0; i < 20; ++i) {
    pool.submit([&counter] { counter.fetch_add(1); });
  }
  pool.waitIdle();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, WorkerSurvivesThrowingTasksAmongGoodOnes) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 200; ++i) {
    if (i % 10 == 3) {
      pool.submit([] { throw std::runtime_error("sporadic"); });
    } else {
      pool.submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_THROW(pool.waitIdle(), std::runtime_error);
  EXPECT_EQ(counter.load(), 180);  // every non-throwing task still ran
}

TEST(ThreadPool, ConcurrentProducersHammer) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::thread> producers;
  for (int producer = 0; producer < 6; ++producer) {
    producers.emplace_back([&pool, &counter] {
      for (int round = 0; round < 20; ++round) {
        for (int i = 0; i < 25; ++i) {
          pool.submit([&counter] { counter.fetch_add(1); });
        }
        pool.waitIdle();  // waiting while others submit must be safe
      }
    });
  }
  for (std::thread& producer : producers) {
    producer.join();
  }
  pool.waitIdle();
  EXPECT_EQ(counter.load(), 6 * 20 * 25);
}

TEST(ThreadPool, ConcurrentProducersMixedFutures) {
  ThreadPool pool(3);
  std::vector<std::thread> producers;
  std::atomic<std::uint64_t> total{0};
  for (int producer = 0; producer < 4; ++producer) {
    producers.emplace_back([&pool, &total, producer] {
      std::uint64_t sum = 0;
      std::vector<std::future<int>> futures;
      for (int i = 0; i < 100; ++i) {
        futures.push_back(pool.submitTask([producer, i] {
          return producer * 1000 + i;
        }));
      }
      for (auto& future : futures) {
        sum += static_cast<std::uint64_t>(future.get());
      }
      total.fetch_add(sum);
    });
  }
  for (std::thread& producer : producers) {
    producer.join();
  }
  // sum over producers p of (100*1000p + 0+1+...+99)
  std::uint64_t expected = 0;
  for (std::uint64_t p = 0; p < 4; ++p) {
    expected += 100 * 1000 * p + 99 * 100 / 2;
  }
  EXPECT_EQ(total.load(), expected);
}

TEST(ParallelFor, ComputesEveryIndexOnce) {
  std::vector<std::atomic<int>> touched(1000);
  parallelFor(1000, 4, [&touched](std::uint64_t i) {
    touched[i].fetch_add(1);
  });
  for (const auto& count : touched) {
    EXPECT_EQ(count.load(), 1);
  }
}

TEST(ParallelFor, ZeroCountNoop) {
  parallelFor(0, 4, [](std::uint64_t) { FAIL() << "must not run"; });
}

TEST(ParallelFor, PropagatesException) {
  EXPECT_THROW(parallelFor(100, 4,
                           [](std::uint64_t i) {
                             if (i == 50) {
                               throw std::logic_error("boom");
                             }
                           }),
               std::logic_error);
}

// ---- tree reduce ----------------------------------------------------------

TEST(TreeReduce, FoldsEverythingIntoFront) {
  // Sum with a non-invertible trace of which elements were merged: the
  // result must contain every input exactly once regardless of tree shape.
  for (const std::size_t count : {1u, 2u, 3u, 5u, 7u, 8u, 13u, 16u, 17u}) {
    std::vector<std::uint64_t> items(count);
    for (std::size_t i = 0; i < count; ++i) {
      items[i] = std::uint64_t{1} << i;  // distinct bits
    }
    const TreeReduceStats stats = treeReduce(
        items, 4, [](std::uint64_t& into, std::uint64_t& from) {
          into |= from;
          from = 0;
        });
    EXPECT_EQ(items.front(), (std::uint64_t{1} << count) - 1)
        << "count=" << count;
    EXPECT_EQ(stats.merges, count - 1) << "count=" << count;
    unsigned expectedDepth = 0;
    for (std::size_t span = 1; span < count; span *= 2) {
      ++expectedDepth;
    }
    EXPECT_EQ(stats.depth, expectedDepth) << "count=" << count;
  }
}

TEST(TreeReduce, OddWorkerCountsAndSingleItem) {
  for (const unsigned workers : {1u, 3u, 5u, 7u}) {
    std::vector<std::uint64_t> items{3, 5, 7, 11, 13};
    treeReduce(items, workers,
               [](std::uint64_t& into, std::uint64_t& from) { into += from; });
    EXPECT_EQ(items.front(), 39u) << "workers=" << workers;
  }
  std::vector<std::uint64_t> single{42};
  const TreeReduceStats stats = treeReduce(
      single, 4, [](std::uint64_t&, std::uint64_t&) { FAIL() << "no merge"; });
  EXPECT_EQ(single.front(), 42u);
  EXPECT_EQ(stats.depth, 0u);
  EXPECT_EQ(stats.merges, 0u);
}

TEST(TreeReduce, EmptyItemsNoop) {
  std::vector<int> items;
  const TreeReduceStats stats =
      treeReduce(items, 4, [](int&, int&) { FAIL() << "no merge"; });
  EXPECT_EQ(stats.depth, 0u);
  EXPECT_EQ(stats.merges, 0u);
}

// ---- partitioner ----------------------------------------------------------

std::vector<std::uint64_t> randomWeights(std::uint64_t seed, std::size_t count,
                                         std::uint64_t maxWeight) {
  util::Rng rng(seed);
  std::vector<std::uint64_t> weights(count);
  for (auto& weight : weights) {
    weight = 1 + rng.uniformBelow(maxWeight);
  }
  return weights;
}

void expectValidPartition(const Partition& partition, std::size_t items,
                          std::span<const std::uint64_t> weights) {
  std::vector<int> seen(items, 0);
  for (std::size_t bin = 0; bin < partition.assignment.size(); ++bin) {
    std::uint64_t load = 0;
    for (std::size_t item : partition.assignment[bin]) {
      ASSERT_LT(item, items);
      ++seen[item];
      load += weights[item];
    }
    EXPECT_EQ(load, partition.loads[bin]);
  }
  for (std::size_t item = 0; item < items; ++item) {
    EXPECT_EQ(seen[item], 1) << "item " << item << " assigned wrong number";
  }
}

class PartitionProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::size_t>> {
};

TEST_P(PartitionProperty, AllStrategiesAssignEachItemOnce) {
  const auto [seed, bins] = GetParam();
  const auto weights = randomWeights(seed, 200, 1000);
  for (const Partition& partition :
       {partitionGreedyLpt(weights, bins), partitionRoundRobin(weights, bins),
        partitionContiguous(weights, bins)}) {
    expectValidPartition(partition, weights.size(), weights);
    EXPECT_EQ(partition.totalLoad(),
              std::accumulate(weights.begin(), weights.end(), 0ull));
  }
}

TEST_P(PartitionProperty, LptNeverWorseThanNaive) {
  const auto [seed, bins] = GetParam();
  const auto weights = randomWeights(seed, 200, 1000);
  const auto lpt = partitionGreedyLpt(weights, bins).makespan();
  EXPECT_LE(lpt, partitionRoundRobin(weights, bins).makespan());
  EXPECT_LE(lpt, partitionContiguous(weights, bins).makespan());
}

TEST_P(PartitionProperty, LptWithinApproximationBound) {
  const auto [seed, bins] = GetParam();
  const auto weights = randomWeights(seed, 200, 1000);
  const Partition lpt = partitionGreedyLpt(weights, bins);
  // Lower bounds on OPT: mean load and max single item.
  const double meanLoad = static_cast<double>(lpt.totalLoad()) /
                          static_cast<double>(bins);
  const double maxItem = static_cast<double>(
      *std::max_element(weights.begin(), weights.end()));
  const double optLowerBound = std::max(meanLoad, maxItem);
  EXPECT_LE(static_cast<double>(lpt.makespan()),
            (4.0 / 3.0) * optLowerBound + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndBins, PartitionProperty,
    ::testing::Combine(::testing::Values(1, 7, 42, 1234),
                       ::testing::Values(std::size_t{1}, std::size_t{2},
                                         std::size_t{7}, std::size_t{16})));

TEST(Partition, SkewedWeightsShowImbalanceContrast) {
  // One huge item plus many small ones: the paper's pathological case of a
  // single place with tens of thousands of collocated persons.
  std::vector<std::uint64_t> weights(64, 10);
  weights.push_back(10000);
  const Partition contiguous = partitionContiguous(weights, 8);
  const Partition lpt = partitionGreedyLpt(weights, 8);
  EXPECT_LT(lpt.imbalance(), contiguous.imbalance());
}

TEST(Partition, EmptyItemsYieldEmptyBins) {
  const Partition partition = partitionGreedyLpt({}, 4);
  EXPECT_EQ(partition.makespan(), 0u);
  EXPECT_DOUBLE_EQ(partition.imbalance(), 1.0);
}

TEST(Partition, RejectsZeroBins) {
  EXPECT_THROW(partitionGreedyLpt({}, 0), std::invalid_argument);
}

// ---- cluster ---------------------------------------------------------------

TEST(Cluster, ApplyDynamicCoversAllItems) {
  Cluster cluster(4);
  std::vector<std::atomic<int>> touched(500);
  cluster.applyDynamic(500, [&touched](std::size_t item, unsigned) {
    touched[item].fetch_add(1);
  });
  for (const auto& count : touched) {
    EXPECT_EQ(count.load(), 1);
  }
  EXPECT_EQ(cluster.workerBusySeconds().size(), 4u);
}

TEST(Cluster, ApplyPartitionedHonorsAssignment) {
  Cluster cluster(3);
  const std::vector<std::uint64_t> weights(30, 1);
  const Partition partition = partitionRoundRobin(weights, 3);
  std::vector<std::atomic<unsigned>> workerOf(30);
  cluster.applyPartitioned(partition, [&](std::size_t item, unsigned worker) {
    workerOf[item].store(worker + 1);
  });
  for (std::size_t item = 0; item < 30; ++item) {
    EXPECT_EQ(workerOf[item].load() - 1, item % 3);
  }
}

TEST(Cluster, PartitionBinCountMustMatchWorkers) {
  Cluster cluster(2);
  const std::vector<std::uint64_t> weights{1, 2, 3};
  const Partition partition = partitionRoundRobin(weights, 3);
  EXPECT_THROW(cluster.applyPartitioned(partition, [](std::size_t, unsigned) {}),
               std::invalid_argument);
}

TEST(Cluster, ExceptionPropagates) {
  Cluster cluster(2);
  EXPECT_THROW(cluster.applyDynamic(10,
                                    [](std::size_t item, unsigned) {
                                      if (item == 3) {
                                        throw std::runtime_error("task failed");
                                      }
                                    }),
               std::runtime_error);
}

TEST(Cluster, BusyImbalanceIsAtLeastOne) {
  Cluster cluster(2);
  cluster.applyDynamic(100, [](std::size_t, unsigned) {
    double sink = 0;
    for (int i = 0; i < 1000; ++i) {
      sink += i;
    }
    volatile double keep = sink;
    (void)keep;
  });
  EXPECT_GE(cluster.busyImbalance(), 1.0);
}

}  // namespace
}  // namespace chisimnet::runtime
