#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "chisimnet/abm/disease.hpp"
#include "chisimnet/abm/event_core.hpp"
#include "chisimnet/abm/model.hpp"
#include "chisimnet/abm/sim_checkpoint.hpp"
#include "chisimnet/elog/clg5.hpp"
#include "chisimnet/elog/extended.hpp"
#include "chisimnet/elog/log_directory.hpp"
#include "chisimnet/pop/schedule.hpp"
#include "chisimnet/runtime/fault.hpp"
#include "chisimnet/util/rng.hpp"

/// Crash-safe simulation suite (label abm-ckpt): checkpoint codec round
/// trips, cursor/RNG state reconstruction, manifest commit + garbage
/// collection and validation failures, torn-log rejection and quarantine,
/// graceful shutdown, and the acceptance grid — kill a run at an exact
/// fault-site ordinal for every (core, rank count, disease) combination,
/// resume it, and require the final CLG5/CLX5 bytes to match a run that
/// was never interrupted.

namespace chisimnet::abm {
namespace {

using runtime::FaultAction;
using runtime::FaultPlan;
using runtime::FaultSpec;
using table::Event;
using table::Hour;

class AbmCkptTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pop::PopulationConfig config;
    config.personCount = 2000;
    config.seed = 2017;
    population_ =
        new pop::SyntheticPopulation(pop::SyntheticPopulation::generate(config));
  }
  static void TearDownTestSuite() {
    delete population_;
    population_ = nullptr;
  }

  void SetUp() override {
    root_ = std::filesystem::temp_directory_path() /
            ("chisimnet_ckpt_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name()));
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_);
    clearShutdownRequest();
  }
  void TearDown() override {
    clearShutdownRequest();
    std::filesystem::remove_all(root_);
  }

  ModelConfig baseConfig(ModelCore core, int ranks,
                         const std::string& logs) const {
    ModelConfig config;
    config.logDirectory = root_ / logs;
    config.rankCount = ranks;
    config.weeks = 1;
    config.scheduleSeed = 777;
    config.core = core;
    return config;
  }

  /// Every regular file in `dir`, name -> raw bytes (CLG5 and CLX5 alike).
  static std::map<std::string, std::string> readRawFiles(
      const std::filesystem::path& dir) {
    std::map<std::string, std::string> out;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
      if (!entry.is_regular_file()) {
        continue;
      }
      std::ifstream in(entry.path(), std::ios::binary);
      std::ostringstream bytes;
      bytes << in.rdbuf();
      out[entry.path().filename().string()] = bytes.str();
    }
    return out;
  }

  static void expectSameBytes(const std::filesystem::path& got,
                              const std::filesystem::path& want,
                              const std::string& label) {
    const auto gotFiles = readRawFiles(got);
    const auto wantFiles = readRawFiles(want);
    ASSERT_EQ(gotFiles.size(), wantFiles.size()) << label;
    for (const auto& [name, bytes] : wantFiles) {
      auto it = gotFiles.find(name);
      ASSERT_NE(it, gotFiles.end()) << label << ": missing " << name;
      EXPECT_TRUE(it->second == bytes)
          << label << ": " << name << " differs ("
          << it->second.size() << " vs " << bytes.size() << " bytes)";
    }
  }

  static pop::SyntheticPopulation* population_;
  std::filesystem::path root_;
};

pop::SyntheticPopulation* AbmCkptTest::population_ = nullptr;

RankCheckpoint sampleCheckpoint(bool disease) {
  RankCheckpoint ckpt;
  ckpt.hour = 96;
  ckpt.diseaseEnabled = disease;
  ckpt.outcome.events = 1234;
  ckpt.outcome.migrationsOut = 56;
  ckpt.outcome.localMoves = 789;
  ckpt.outcome.initialAgents = 500;
  ckpt.outcome.logBytes = 24680;
  ckpt.outcome.infections = disease ? 17 : 0;
  ckpt.outcome.hoursProcessed = 95;
  ckpt.outcome.peakQueueDepth = 321;
  ckpt.residents = {{3, 0, 4, disease ? 2u : 0u, disease ? Hour{40} : Hour{0}},
                    {9, 1, 0, 0, 0},
                    {200, 0, 11, disease ? 1u : 0u, disease ? Hour{90} : Hour{0}}};
  ckpt.calendar = {{96, {9, 3}}, {100, {200}}, {167, {3, 9, 200}}};
  ckpt.logBytes = 2048;
  ckpt.logEntries = 100;
  ckpt.logFlushCount = 3;
  ckpt.logCache = {Event{90, 96, 3, 1, 44}, Event{95, 96, 9, 0, 2}};
  if (disease) {
    ckpt.clxBytes = 512;
    ckpt.clxEntries = 12;
    ckpt.clxBuffer = {elog::ExtendedEvent{Event{88, 96, 3, 1, 44}, {2, 9}}};
    ckpt.progressions = {{120, {3}}, {130, {200}}};
    ckpt.hourlyInfectious.assign(96, 0);
    for (Hour h = 40; h < 96; ++h) {
      ckpt.hourlyInfectious[h] = 1 + h % 3;
    }
  }
  return ckpt;
}

void expectEqualCheckpoints(const RankCheckpoint& got,
                            const RankCheckpoint& want) {
  EXPECT_EQ(got.hour, want.hour);
  EXPECT_EQ(got.diseaseEnabled, want.diseaseEnabled);
  EXPECT_EQ(got.outcome.events, want.outcome.events);
  EXPECT_EQ(got.outcome.migrationsOut, want.outcome.migrationsOut);
  EXPECT_EQ(got.outcome.localMoves, want.outcome.localMoves);
  EXPECT_EQ(got.outcome.initialAgents, want.outcome.initialAgents);
  EXPECT_EQ(got.outcome.logBytes, want.outcome.logBytes);
  EXPECT_EQ(got.outcome.infections, want.outcome.infections);
  EXPECT_EQ(got.outcome.hoursProcessed, want.outcome.hoursProcessed);
  EXPECT_EQ(got.outcome.peakQueueDepth, want.outcome.peakQueueDepth);
  ASSERT_EQ(got.residents.size(), want.residents.size());
  for (std::size_t i = 0; i < want.residents.size(); ++i) {
    EXPECT_EQ(got.residents[i].person, want.residents[i].person);
    EXPECT_EQ(got.residents[i].weekIndex, want.residents[i].weekIndex);
    EXPECT_EQ(got.residents[i].stintIndex, want.residents[i].stintIndex);
    EXPECT_EQ(got.residents[i].state, want.residents[i].state);
    EXPECT_EQ(got.residents[i].since, want.residents[i].since);
  }
  ASSERT_EQ(got.calendar.size(), want.calendar.size());
  for (std::size_t i = 0; i < want.calendar.size(); ++i) {
    EXPECT_EQ(got.calendar[i].hour, want.calendar[i].hour);
    EXPECT_EQ(got.calendar[i].persons, want.calendar[i].persons);
  }
  EXPECT_EQ(got.logBytes, want.logBytes);
  EXPECT_EQ(got.logEntries, want.logEntries);
  EXPECT_EQ(got.logFlushCount, want.logFlushCount);
  EXPECT_EQ(got.logCache, want.logCache);
  EXPECT_EQ(got.clxBytes, want.clxBytes);
  EXPECT_EQ(got.clxEntries, want.clxEntries);
  ASSERT_EQ(got.clxBuffer.size(), want.clxBuffer.size());
  for (std::size_t i = 0; i < want.clxBuffer.size(); ++i) {
    EXPECT_EQ(got.clxBuffer[i].base, want.clxBuffer[i].base);
    EXPECT_EQ(got.clxBuffer[i].extras, want.clxBuffer[i].extras);
  }
  ASSERT_EQ(got.progressions.size(), want.progressions.size());
  for (std::size_t i = 0; i < want.progressions.size(); ++i) {
    EXPECT_EQ(got.progressions[i].hour, want.progressions[i].hour);
    EXPECT_EQ(got.progressions[i].persons, want.progressions[i].persons);
  }
  EXPECT_EQ(got.hourlyInfectious, want.hourlyInfectious);
}

// ---- codec property tests ----

TEST_F(AbmCkptTest, RankCheckpointRoundTripsWithDisease) {
  const RankCheckpoint want = sampleCheckpoint(true);
  const auto bytes = encodeRankCheckpoint(want);
  expectEqualCheckpoints(decodeRankCheckpoint(bytes), want);
}

TEST_F(AbmCkptTest, RankCheckpointRoundTripsWithoutDisease) {
  const RankCheckpoint want = sampleCheckpoint(false);
  const auto bytes = encodeRankCheckpoint(want);
  expectEqualCheckpoints(decodeRankCheckpoint(bytes), want);
}

TEST_F(AbmCkptTest, DecodeRejectsTrailingAndTruncatedBytes) {
  auto bytes = encodeRankCheckpoint(sampleCheckpoint(true));
  auto longer = bytes;
  longer.push_back(std::byte{0});
  EXPECT_THROW(decodeRankCheckpoint(longer), std::exception);
  bytes.pop_back();
  EXPECT_THROW(decodeRankCheckpoint(bytes), std::exception);
}

TEST_F(AbmCkptTest, SavedRankFileRoundTripsAndRejectsCorruption) {
  const RankCheckpoint want = sampleCheckpoint(true);
  saveRankCheckpoint(root_, 3, want);
  expectEqualCheckpoints(loadRankCheckpoint(root_, 3, want.hour), want);
  // Wrong hour: the file on disk is for hour 96.
  EXPECT_THROW(loadRankCheckpoint(root_, 3, want.hour + 24), std::exception);
  // Flip one body byte: the CRC frame must reject it.
  const auto file = root_ / "rank_0003.96.abmc";
  ASSERT_TRUE(std::filesystem::exists(file));
  {
    std::fstream patch(file,
                       std::ios::binary | std::ios::in | std::ios::out);
    patch.seekp(40);
    char byte = 0;
    patch.seekg(40);
    patch.get(byte);
    byte = static_cast<char>(byte ^ 0x5A);
    patch.seekp(40);
    patch.put(byte);
  }
  EXPECT_THROW(loadRankCheckpoint(root_, 3, want.hour), std::exception);
}

TEST_F(AbmCkptTest, ManifestCommitGarbageCollectsSupersededFiles) {
  RankCheckpoint old = sampleCheckpoint(false);
  old.hour = 48;
  saveRankCheckpoint(root_, 0, old);
  saveRankCheckpoint(root_, 1, old);
  // An orphaned tmp from a crash mid-save must be swept too.
  { std::ofstream(root_ / "rank_0000.tmp") << "torn"; }

  RankCheckpoint fresh = sampleCheckpoint(false);
  fresh.hour = 96;
  saveRankCheckpoint(root_, 0, fresh);
  saveRankCheckpoint(root_, 1, fresh);
  commitSimManifest(root_, SimManifest{96, 2, 0xDEADBEEF, 4});

  const auto manifest = loadSimManifest(root_);
  ASSERT_TRUE(manifest.has_value());
  EXPECT_EQ(manifest->hour, 96u);
  EXPECT_EQ(manifest->rankCount, 2);
  EXPECT_EQ(manifest->configHash, 0xDEADBEEFu);
  EXPECT_EQ(manifest->checkpointsWritten, 4u);
  EXPECT_FALSE(std::filesystem::exists(root_ / "rank_0000.48.abmc"));
  EXPECT_FALSE(std::filesystem::exists(root_ / "rank_0001.48.abmc"));
  EXPECT_FALSE(std::filesystem::exists(root_ / "rank_0000.tmp"));
  EXPECT_TRUE(std::filesystem::exists(root_ / "rank_0000.96.abmc"));
  EXPECT_TRUE(std::filesystem::exists(root_ / "rank_0001.96.abmc"));
}

TEST_F(AbmCkptTest, LoadSimResumeValidatesRankCountAndConfigHash) {
  EXPECT_FALSE(loadSimResume(root_, 2, 7).has_value());  // no manifest yet

  RankCheckpoint ckpt = sampleCheckpoint(false);
  saveRankCheckpoint(root_, 0, ckpt);
  saveRankCheckpoint(root_, 1, ckpt);
  commitSimManifest(root_, SimManifest{96, 2, 7, 1});

  EXPECT_THROW(loadSimResume(root_, 4, 7), std::exception);   // rank count
  EXPECT_THROW(loadSimResume(root_, 2, 8), std::exception);   // config hash
  const auto resume = loadSimResume(root_, 2, 7);
  ASSERT_TRUE(resume.has_value());
  ASSERT_EQ(resume->ranks.size(), 2u);
  EXPECT_EQ(resume->ranks[0].hour, 96u);
}

TEST_F(AbmCkptTest, StintCursorRebuildsFromCoordinates) {
  const pop::ScheduleGenerator generator(*population_, 777);
  for (table::PersonId person : {0u, 17u, 523u, 1999u}) {
    pop::StintCursor walked(generator, person, 0);
    for (int steps = 0; steps < 12; ++steps) {
      // A cursor rebuilt from its (person, weekIndex, stintIndex)
      // coordinates — all a checkpoint stores — must see the same stint.
      pop::StintCursor rebuilt(
          person, generator.packedWeek(person, walked.weekIndex()),
          walked.index());
      EXPECT_EQ(rebuilt.current(), walked.current());
      walked.advance(generator, walked.current().end);
    }
  }
}

TEST_F(AbmCkptTest, RngStateRoundTripResumesDrawSequence) {
  util::Rng rng(12345);
  for (int i = 0; i < 100; ++i) {
    rng.next();
  }
  const auto saved = rng.state();
  std::vector<std::uint64_t> want;
  for (int i = 0; i < 64; ++i) {
    want.push_back(rng.next());
  }
  util::Rng restored = util::Rng::fromState(saved);
  for (std::uint64_t value : want) {
    EXPECT_EQ(restored.next(), value);
  }
}

TEST_F(AbmCkptTest, CalendarQueueRebuildsFromBucketSnapshots) {
  CalendarQueue queue(200);
  queue.push(5, 11);
  queue.push(5, 22);
  queue.push(9, 33);
  queue.push(150, 44);

  // Snapshot buckets >= hour 5 exactly as writeCheckpoint does, rebuild a
  // fresh queue from them, and require identical occupancy and FIFO order.
  std::vector<HourBucket> buckets;
  for (Hour h = 5; h <= 200; ++h) {
    if (!queue.bucket(h).empty()) {
      buckets.push_back({h, queue.bucket(h)});
    }
  }
  CalendarQueue rebuilt(200);
  for (const auto& bucket : buckets) {
    for (table::PersonId person : bucket.persons) {
      rebuilt.push(bucket.hour, person);
    }
  }
  EXPECT_EQ(rebuilt.pending(), queue.pending());
  for (Hour h = 0; h <= 200; ++h) {
    EXPECT_EQ(rebuilt.bucket(h), queue.bucket(h)) << "hour " << h;
  }
}

// ---- torn-log detection ----

TEST_F(AbmCkptTest, ResumeOffsetMustLandOnChunkBoundary) {
  const auto path = root_ / "rank_0000.clg5";
  std::uint64_t boundary = 0;
  {
    elog::ChunkedLogWriter writer(path);
    const std::vector<Event> chunk = {Event{0, 3, 1, 0, 5},
                                      Event{1, 4, 2, 1, 6}};
    writer.writeChunk(chunk);
    boundary = writer.bytesWritten();
    writer.writeChunk(chunk);
    writer.close();
  }
  // On a boundary: accepted, and the file truncates back to it.
  {
    elog::ChunkedLogWriter resumed(path, elog::LogCompression::kRaw,
                                   elog::ChunkedLogWriter::ResumeAt{boundary});
    resumed.close();
  }
  EXPECT_EQ(std::filesystem::file_size(path) > 0, true);
  // Off a boundary: rejected.
  EXPECT_THROW(elog::ChunkedLogWriter(
                   path, elog::LogCompression::kRaw,
                   elog::ChunkedLogWriter::ResumeAt{boundary + 1}),
               std::exception);
}

// ---- the acceptance grid ----

struct GridCell {
  ModelCore core;
  int ranks;
  bool disease;
};

TEST_F(AbmCkptTest, KillAndResumeIsByteIdenticalAcrossGrid) {
  const std::vector<GridCell> grid = {
      {ModelCore::kEventDriven, 1, false}, {ModelCore::kEventDriven, 2, false},
      {ModelCore::kEventDriven, 4, false}, {ModelCore::kEventDriven, 1, true},
      {ModelCore::kEventDriven, 2, true},  {ModelCore::kEventDriven, 4, true},
      {ModelCore::kHourly, 1, false},      {ModelCore::kHourly, 2, false},
      {ModelCore::kHourly, 4, false},      {ModelCore::kHourly, 1, true},
      {ModelCore::kHourly, 2, true},       {ModelCore::kHourly, 4, true},
  };
  int cell = 0;
  for (const GridCell& g : grid) {
    const std::string label =
        "cell" + std::to_string(cell) + "_core" +
        std::to_string(static_cast<int>(g.core)) + "_r" +
        std::to_string(g.ranks) + (g.disease ? "_disease" : "");
    ++cell;
    DiseaseConfig disease;
    DiseaseStats diseaseStats;

    // Uninterrupted reference run.
    ModelConfig clean = baseConfig(g.core, g.ranks, label + "_clean");
    if (g.disease) {
      runModel(*population_, clean, disease, diseaseStats);
    } else {
      runModel(*population_, clean);
    }

    // Same run, checkpointing every 24 h, killed by an injected throw at
    // the exact simulated-hour ordinal 100 (abm.step fires once per rank
    // per hour with ordinal = the hour).
    ModelConfig crash = baseConfig(g.core, g.ranks, label + "_crash");
    crash.checkpointDir = root_ / (label + "_ckpt");
    crash.checkpointEveryHours = 24;
    {
      FaultPlan plan;
      plan.at("abm.step", FaultSpec{FaultAction::kThrow, 100});
      runtime::fault::ScopedFaultPlan scoped(plan);
      if (g.disease) {
        EXPECT_THROW(runModel(*population_, crash, disease, diseaseStats),
                     std::exception)
            << label;
      } else {
        EXPECT_THROW(runModel(*population_, crash), std::exception) << label;
      }
    }
    // The kill left torn, detectably-unfinished log files behind.
    EXPECT_THROW(
        elog::ChunkedLogReader(elog::logFilePath(crash.logDirectory, 0))
            .readAll(),
        std::exception)
        << label;
    const auto manifest = loadSimManifest(crash.checkpointDir);
    ASSERT_TRUE(manifest.has_value()) << label;
    EXPECT_GE(manifest->hour, 24u) << label;
    EXPECT_LE(manifest->hour, 100u) << label;

    // Resume (no fault plan) and require byte identity with the reference.
    crash.resume = true;
    ModelStats stats;
    if (g.disease) {
      DiseaseStats resumedDisease;
      stats = runModel(*population_, crash, disease, resumedDisease);
      EXPECT_EQ(resumedDisease.infections, diseaseStats.infections) << label;
      EXPECT_EQ(resumedDisease.finalStates, diseaseStats.finalStates) << label;
      EXPECT_EQ(resumedDisease.hourlyInfectious, diseaseStats.hourlyInfectious)
          << label;
    } else {
      stats = runModel(*population_, crash);
    }
    EXPECT_TRUE(stats.resumed) << label;
    EXPECT_EQ(stats.hoursReplayed, manifest->hour) << label;
    EXPECT_FALSE(stats.interrupted) << label;
    EXPECT_GE(stats.checkpointsWritten, manifest->checkpointsWritten) << label;
    expectSameBytes(crash.logDirectory, clean.logDirectory, label);
  }
}

TEST_F(AbmCkptTest, KillInsideCheckpointWriteFallsBackToPreviousCheckpoint) {
  // The hourly core visits every hour, so periodic checkpoints land at
  // exactly 24, 48, 72 — which lets the fault ordinal target the hour-72
  // write precisely. (The event core checkpoints at the first *active*
  // hour past due, so its checkpoint hours depend on the activity
  // pattern.)
  ModelConfig clean = baseConfig(ModelCore::kHourly, 2, "clean");
  runModel(*population_, clean);

  // Throw inside the hour-72 checkpoint write: the hour-48 manifest must
  // survive untouched and carry the resume.
  ModelConfig crash = baseConfig(ModelCore::kHourly, 2, "crash");
  crash.checkpointDir = root_ / "ckpt";
  crash.checkpointEveryHours = 24;
  {
    FaultPlan plan;
    plan.at("abm.ckpt.write", FaultSpec{FaultAction::kThrow, 72});
    runtime::fault::ScopedFaultPlan scoped(plan);
    EXPECT_THROW(runModel(*population_, crash), std::exception);
  }
  const auto manifest = loadSimManifest(crash.checkpointDir);
  ASSERT_TRUE(manifest.has_value());
  EXPECT_EQ(manifest->hour, 48u);

  crash.resume = true;
  const ModelStats stats = runModel(*population_, crash);
  EXPECT_TRUE(stats.resumed);
  EXPECT_EQ(stats.hoursReplayed, 48u);
  expectSameBytes(crash.logDirectory, clean.logDirectory, "ckpt-write-kill");
}

TEST_F(AbmCkptTest, KillInsideMigrationSendResumesByteIdentical) {
  ModelConfig clean = baseConfig(ModelCore::kEventDriven, 4, "clean");
  runModel(*population_, clean);

  ModelConfig crash = baseConfig(ModelCore::kEventDriven, 4, "crash");
  crash.checkpointDir = root_ / "ckpt";
  crash.checkpointEveryHours = 24;
  {
    FaultPlan plan;
    plan.at("abm.migrate.send", FaultSpec{FaultAction::kThrow, 60});
    runtime::fault::ScopedFaultPlan scoped(plan);
    EXPECT_THROW(runModel(*population_, crash), std::exception);
  }
  crash.resume = true;
  const ModelStats stats = runModel(*population_, crash);
  EXPECT_TRUE(stats.resumed);
  expectSameBytes(crash.logDirectory, clean.logDirectory, "migrate-send-kill");
}

TEST_F(AbmCkptTest, TornLogsFromKilledRunAreQuarantinedBySynthesis) {
  ModelConfig crash = baseConfig(ModelCore::kEventDriven, 2, "crash");
  crash.checkpointDir = root_ / "ckpt";
  crash.checkpointEveryHours = 24;
  {
    FaultPlan plan;
    plan.at("abm.step", FaultSpec{FaultAction::kThrow, 100});
    runtime::fault::ScopedFaultPlan scoped(plan);
    EXPECT_THROW(runModel(*population_, crash), std::exception);
  }
  const auto files = elog::listLogFiles(crash.logDirectory);
  ASSERT_EQ(files.size(), 2u);
  // Footer-less files must be rejected outright by the strict reader...
  for (const auto& file : files) {
    EXPECT_THROW(elog::ChunkedLogReader(file).readAll(), std::exception);
  }
  // ...and quarantined (not silently truncated) by the degrade-mode loader
  // the synthesis pipeline uses.
  std::vector<elog::QuarantinedFile> quarantined;
  const auto events =
      elog::loadEventsQuarantining(files, 0, 0xFFFFFFFFu, quarantined);
  EXPECT_EQ(events.size(), 0u);
  ASSERT_EQ(quarantined.size(), 2u);
  for (const auto& entry : quarantined) {
    EXPECT_NE(entry.reason.find("footer"), std::string::npos) << entry.reason;
  }
}

TEST_F(AbmCkptTest, GracefulShutdownCheckpointsAndResumes) {
  ModelConfig clean = baseConfig(ModelCore::kEventDriven, 2, "clean");
  DiseaseConfig disease;
  DiseaseStats cleanDisease;
  runModel(*population_, clean, disease, cleanDisease);

  // A shutdown request pending at the first hour: the ranks agree through
  // the migration-exchange flag, checkpoint, close cleanly, and report the
  // interruption instead of finishing the horizon.
  ModelConfig stopped = baseConfig(ModelCore::kEventDriven, 2, "stopped");
  stopped.checkpointDir = root_ / "ckpt";
  stopped.checkpointEveryHours = 0;  // only on shutdown
  requestShutdown();
  DiseaseStats ignored;
  const ModelStats interrupted =
      runModel(*population_, stopped, disease, ignored);
  EXPECT_TRUE(interrupted.interrupted);
  EXPECT_EQ(interrupted.checkpointsWritten, 1u);
  const auto manifest = loadSimManifest(stopped.checkpointDir);
  ASSERT_TRUE(manifest.has_value());
  EXPECT_LT(manifest->hour, 168u);

  clearShutdownRequest();
  stopped.resume = true;
  DiseaseStats resumedDisease;
  const ModelStats stats =
      runModel(*population_, stopped, disease, resumedDisease);
  EXPECT_TRUE(stats.resumed);
  EXPECT_FALSE(stats.interrupted);
  EXPECT_EQ(resumedDisease.infections, cleanDisease.infections);
  expectSameBytes(stopped.logDirectory, clean.logDirectory, "graceful");
}

TEST_F(AbmCkptTest, ResumeRejectsChangedConfig) {
  ModelConfig crash = baseConfig(ModelCore::kEventDriven, 2, "crash");
  crash.checkpointDir = root_ / "ckpt";
  crash.checkpointEveryHours = 24;
  {
    FaultPlan plan;
    plan.at("abm.step", FaultSpec{FaultAction::kThrow, 100});
    runtime::fault::ScopedFaultPlan scoped(plan);
    EXPECT_THROW(runModel(*population_, crash), std::exception);
  }
  // Different schedule seed: the config hash no longer matches.
  ModelConfig reseeded = crash;
  reseeded.resume = true;
  reseeded.scheduleSeed = 778;
  EXPECT_THROW(runModel(*population_, reseeded), std::exception);
  // Different rank count: the checkpoint set is per-rank state.
  ModelConfig reranked = crash;
  reranked.resume = true;
  reranked.rankCount = 4;
  EXPECT_THROW(runModel(*population_, reranked), std::exception);
}

TEST_F(AbmCkptTest, ResumeWithEmptyCheckpointDirStartsFresh) {
  ModelConfig clean = baseConfig(ModelCore::kEventDriven, 2, "clean");
  runModel(*population_, clean);

  ModelConfig config = baseConfig(ModelCore::kEventDriven, 2, "fresh");
  config.checkpointDir = root_ / "ckpt_empty";
  config.resume = true;  // nothing there yet: falls back to a fresh start
  const ModelStats stats = runModel(*population_, config);
  EXPECT_FALSE(stats.resumed);
  EXPECT_EQ(stats.hoursReplayed, 0u);
  expectSameBytes(config.logDirectory, clean.logDirectory, "fresh-fallback");
}

TEST_F(AbmCkptTest, CheckpointConfigValidation) {
  ModelConfig config = baseConfig(ModelCore::kEventDriven, 1, "logs");
  config.checkpointEveryHours = 24;  // without a checkpointDir
  EXPECT_THROW(runModel(*population_, config), std::invalid_argument);
  config.checkpointEveryHours = 0;
  config.resume = true;  // likewise
  EXPECT_THROW(runModel(*population_, config), std::invalid_argument);
}

}  // namespace
}  // namespace chisimnet::abm
