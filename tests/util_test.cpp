#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <set>
#include <sstream>

#include "chisimnet/util/binary_io.hpp"
#include "chisimnet/util/env.hpp"
#include "chisimnet/util/error.hpp"
#include "chisimnet/util/rng.hpp"
#include "chisimnet/util/timer.hpp"

namespace chisimnet::util {
namespace {

TEST(Error, RequireThrowsInvalidArgument) {
  EXPECT_THROW(CHISIM_REQUIRE(false, "boom"), std::invalid_argument);
  EXPECT_NO_THROW(CHISIM_REQUIRE(true, "fine"));
}

TEST(Error, CheckThrowsRuntimeError) {
  EXPECT_THROW(CHISIM_CHECK(false, "boom"), std::runtime_error);
  EXPECT_NO_THROW(CHISIM_CHECK(true, "fine"));
}

TEST(Error, MessageContainsContext) {
  try {
    CHISIM_REQUIRE(1 == 2, "custom detail");
    FAIL() << "should have thrown";
  } catch (const std::invalid_argument& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find("custom detail"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += a.next() == b.next() ? 1 : 0;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, UniformBelowStaysInRange) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.uniformBelow(bound), bound);
    }
  }
}

TEST(Rng, UniformBelowOneAlwaysZero) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.uniformBelow(1), 0u);
  }
}

TEST(Rng, UniformBelowCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    seen.insert(rng.uniformBelow(5));
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformIntInclusiveBounds) {
  Rng rng(3);
  bool sawLo = false;
  bool sawHi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t value = rng.uniformInt(-2, 2);
    EXPECT_GE(value, -2);
    EXPECT_LE(value, 2);
    sawLo |= value == -2;
    sawHi |= value == 2;
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, Uniform01InRangeAndMeanNearHalf) {
  Rng rng(5);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(9);
  const int n = 50000;
  double sum = 0.0;
  double sumSq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(3.0, 2.0);
    sum += x;
    sumSq += x * x;
  }
  const double mean = sum / n;
  const double var = sumSq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(13);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += rng.exponential(0.5);
  }
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(Rng, PoissonMeanMatchesSmallAndLarge) {
  Rng rng(17);
  for (double mean : {0.5, 4.0, 100.0}) {
    const int n = 20000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
      sum += static_cast<double>(rng.poisson(mean));
    }
    EXPECT_NEAR(sum / n, mean, mean * 0.05 + 0.05) << "mean=" << mean;
  }
}

TEST(Rng, PoissonZeroMeanIsZero) {
  Rng rng(1);
  EXPECT_EQ(rng.poisson(0.0), 0u);
  EXPECT_EQ(rng.poisson(-1.0), 0u);
}

TEST(Rng, DiscreteRespectsWeights) {
  Rng rng(21);
  const std::vector<double> weights{1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  for (int i = 0; i < 40000; ++i) {
    ++counts[rng.discrete(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.2);
}

TEST(Rng, DiscreteRejectsBadInput) {
  Rng rng(1);
  const std::vector<double> empty;
  EXPECT_THROW(rng.discrete(empty), std::invalid_argument);
  const std::vector<double> zero{0.0, 0.0};
  EXPECT_THROW(rng.discrete(zero), std::invalid_argument);
  const std::vector<double> negative{1.0, -1.0};
  EXPECT_THROW(rng.discrete(negative), std::invalid_argument);
}

TEST(Rng, ForkDecorrelatesStreams) {
  Rng parent(99);
  Rng childA = parent.fork(0);
  Rng childB = parent.fork(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    equal += childA.next() == childB.next() ? 1 : 0;
  }
  EXPECT_LT(equal, 4);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(4);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = values;
  rng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(AliasTable, MatchesWeights) {
  Rng rng(31);
  const std::vector<double> weights{5.0, 1.0, 0.0, 4.0};
  const AliasTable table{std::span<const double>(weights)};
  std::array<int, 4> counts{};
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    ++counts[table.sample(rng)];
  }
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.5, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.1, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[3]) / n, 0.4, 0.01);
}

TEST(AliasTable, SingleWeight) {
  Rng rng(1);
  const std::vector<double> weights{2.5};
  const AliasTable table{std::span<const double>(weights)};
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(table.sample(rng), 0u);
  }
}

TEST(ZipfSampler, RankOneMostFrequent) {
  Rng rng(8);
  ZipfSampler zipf(100, 1.2);
  std::vector<int> counts(101, 0);
  for (int i = 0; i < 50000; ++i) {
    const std::size_t rank = zipf.sample(rng);
    ASSERT_GE(rank, 1u);
    ASSERT_LE(rank, 100u);
    ++counts[rank];
  }
  EXPECT_GT(counts[1], counts[2]);
  EXPECT_GT(counts[2], counts[10]);
  // Ratio count(1)/count(2) should approximate 2^1.2.
  EXPECT_NEAR(static_cast<double>(counts[1]) / counts[2], std::pow(2.0, 1.2),
              0.5);
}

TEST(Crc32, KnownVector) {
  // CRC32("123456789") = 0xCBF43926 (IEEE check value).
  const char* data = "123456789";
  const auto bytes = std::as_bytes(std::span<const char>(data, 9));
  EXPECT_EQ(crc32(bytes), 0xCBF43926u);
}

TEST(Crc32, EmptyIsZero) {
  EXPECT_EQ(crc32(std::span<const std::byte>{}), 0u);
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::vector<std::byte> data(64, std::byte{0x5A});
  const std::uint32_t original = crc32(data);
  data[17] ^= std::byte{0x01};
  EXPECT_NE(crc32(data), original);
}

TEST(BinaryIo, U32RoundTrip) {
  std::stringstream stream;
  writeU32(stream, 0xDEADBEEFu);
  writeU32(stream, 0);
  writeU32(stream, 0xFFFFFFFFu);
  EXPECT_EQ(readU32(stream), 0xDEADBEEFu);
  EXPECT_EQ(readU32(stream), 0u);
  EXPECT_EQ(readU32(stream), 0xFFFFFFFFu);
}

TEST(BinaryIo, U64RoundTrip) {
  std::stringstream stream;
  writeU64(stream, 0x0123456789ABCDEFull);
  EXPECT_EQ(readU64(stream), 0x0123456789ABCDEFull);
}

TEST(BinaryIo, LittleEndianLayout) {
  std::stringstream stream;
  writeU32(stream, 0x01020304u);
  const std::string bytes = stream.str();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(bytes[0]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(bytes[3]), 0x01);
}

TEST(BinaryIo, VarintRoundTrip) {
  std::vector<std::byte> buffer;
  const std::vector<std::uint32_t> values{0, 1, 127, 128, 300, 16383, 16384,
                                          0xFFFFFFFFu};
  for (std::uint32_t value : values) {
    putVarint(buffer, value);
  }
  std::size_t cursor = 0;
  for (std::uint32_t value : values) {
    EXPECT_EQ(getVarint(buffer, cursor), value);
  }
  EXPECT_EQ(cursor, buffer.size());
}

TEST(BinaryIo, VarintSizes) {
  std::vector<std::byte> buffer;
  putVarint(buffer, 127);
  EXPECT_EQ(buffer.size(), 1u);
  buffer.clear();
  putVarint(buffer, 128);
  EXPECT_EQ(buffer.size(), 2u);
  buffer.clear();
  putVarint(buffer, 0xFFFFFFFFu);
  EXPECT_EQ(buffer.size(), 5u);
}

TEST(BinaryIo, VarintTruncationThrows) {
  std::vector<std::byte> buffer;
  putVarint(buffer, 300);
  buffer.pop_back();
  std::size_t cursor = 0;
  EXPECT_THROW(getVarint(buffer, cursor), std::runtime_error);
}

TEST(BinaryIo, ZigzagRoundTrip) {
  for (std::int32_t value : {0, 1, -1, 2, -2, 1000000, -1000000,
                             std::numeric_limits<std::int32_t>::max(),
                             std::numeric_limits<std::int32_t>::min()}) {
    EXPECT_EQ(zigzagDecode(zigzagEncode(value)), value) << value;
  }
  // Small magnitudes map to small codes (the property packing relies on).
  EXPECT_EQ(zigzagEncode(0), 0u);
  EXPECT_EQ(zigzagEncode(-1), 1u);
  EXPECT_EQ(zigzagEncode(1), 2u);
}

TEST(BinaryIo, ShortReadThrows) {
  std::stringstream stream;
  stream << "ab";
  EXPECT_THROW(readU32(stream), std::runtime_error);
}

TEST(Env, ParsesAndFallsBack) {
  ::setenv("CHISIMNET_TEST_VALUE", "2.5", 1);
  EXPECT_DOUBLE_EQ(envDouble("CHISIMNET_TEST_VALUE", 1.0), 2.5);
  ::setenv("CHISIMNET_TEST_VALUE", "junk", 1);
  EXPECT_DOUBLE_EQ(envDouble("CHISIMNET_TEST_VALUE", 1.0), 1.0);
  ::unsetenv("CHISIMNET_TEST_VALUE");
  EXPECT_DOUBLE_EQ(envDouble("CHISIMNET_TEST_VALUE", 3.0), 3.0);

  ::setenv("CHISIMNET_TEST_U64", "123", 1);
  EXPECT_EQ(envU64("CHISIMNET_TEST_U64", 9), 123u);
  ::unsetenv("CHISIMNET_TEST_U64");
  EXPECT_EQ(envU64("CHISIMNET_TEST_U64", 9), 9u);
}

TEST(Timer, MeasuresElapsedTime) {
  WallTimer timer;
  // Burn a bit of CPU.
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) {
    sink += std::sqrt(static_cast<double>(i));
  }
  volatile double keep = sink;
  (void)keep;
  EXPECT_GE(timer.seconds(), 0.0);
  timer.reset();
  EXPECT_LT(timer.seconds(), 1.0);
}

}  // namespace
}  // namespace chisimnet::util
