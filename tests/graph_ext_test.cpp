#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <numeric>

#include "chisimnet/graph/algorithms.hpp"
#include "chisimnet/graph/generators.hpp"
#include "chisimnet/graph/weighted_stats.hpp"
#include "chisimnet/sparse/adjacency_io.hpp"
#include "chisimnet/util/rng.hpp"

/// Tests for the graph/sparse extension features: the configuration model,
/// weighted statistics, and adjacency persistence.

namespace chisimnet {
namespace {

using graph::Edge;
using graph::Graph;
using graph::Vertex;

// ---- configuration model ---------------------------------------------------

class ConfigModelSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConfigModelSeeds, ApproximatesTargetDegrees) {
  util::Rng degreeRng(GetParam());
  std::vector<std::uint64_t> degrees(500);
  for (auto& degree : degrees) {
    degree = 1 + degreeRng.uniformBelow(20);
  }
  util::Rng rng(GetParam() + 1000);
  const Graph graph = graph::configurationModel(degrees, rng);
  ASSERT_EQ(graph.vertexCount(), degrees.size());

  // Stub matching with rejection may shave a few stubs; realized degrees
  // never exceed targets and total shortfall is small.
  std::uint64_t target = std::accumulate(degrees.begin(), degrees.end(),
                                         std::uint64_t{0});
  std::uint64_t realized = 0;
  for (Vertex v = 0; v < graph.vertexCount(); ++v) {
    EXPECT_LE(graph.degree(v), degrees[v]) << "vertex " << v;
    realized += graph.degree(v);
  }
  EXPECT_GE(realized, target * 97 / 100);
}

TEST_P(ConfigModelSeeds, ProducesSimpleGraph) {
  util::Rng rng(GetParam());
  std::vector<std::uint64_t> degrees(200, 6);
  const Graph graph = graph::configurationModel(degrees, rng);
  for (Vertex v = 0; v < graph.vertexCount(); ++v) {
    const auto row = graph.neighbors(v);
    EXPECT_TRUE(std::adjacent_find(row.begin(), row.end()) == row.end())
        << "parallel edge at " << v;
    EXPECT_FALSE(std::binary_search(row.begin(), row.end(), v))
        << "self-loop at " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConfigModelSeeds,
                         ::testing::Values(1, 2, 3, 4));

TEST(ConfigModel, HeavyTailDegreesPreserved) {
  // A hub with degree 100 among degree-2 vertices must come out as a hub.
  std::vector<std::uint64_t> degrees(301, 2);
  degrees[0] = 100;
  util::Rng rng(9);
  const Graph graph = graph::configurationModel(degrees, rng);
  EXPECT_GT(graph.degree(0), 80u);
}

TEST(ConfigModel, MatchedDegreesDoNotReproduceClustering) {
  // The §VI point: a degree-matched random graph misses the clustering of
  // a clique-rich source network.
  std::vector<Edge> edges;
  const unsigned cliques = 30;
  const unsigned size = 6;
  for (unsigned c = 0; c < cliques; ++c) {
    const Vertex base = c * size;
    for (Vertex u = 0; u < size; ++u) {
      for (Vertex v = u + 1; v < size; ++v) {
        edges.push_back(Edge{base + u, base + v, 1});
      }
    }
  }
  const Graph cliquey = Graph::fromEdges(edges, cliques * size);
  util::Rng rng(21);
  const Graph matched =
      graph::configurationModel(graph::degreeSequence(cliquey), rng);
  const double sourceClustering = graph::globalTransitivity(cliquey);
  const double matchedClustering = graph::globalTransitivity(matched);
  EXPECT_DOUBLE_EQ(sourceClustering, 1.0);
  EXPECT_LT(matchedClustering, 0.3);
}

// ---- weighted statistics -----------------------------------------------------

Graph weightedTriangle() {
  const std::vector<Edge> edges{{0, 1, 10}, {1, 2, 20}, {0, 2, 30}, {2, 3, 5}};
  return Graph::fromEdges(edges, 4);
}

TEST(WeightedStats, StrengthSequence) {
  const auto strengths = graph::strengthSequence(weightedTriangle());
  EXPECT_EQ(strengths, (std::vector<std::uint64_t>{40, 30, 55, 5}));
}

TEST(WeightedStats, EdgeWeightSequence) {
  auto weights = graph::edgeWeightSequence(weightedTriangle());
  std::sort(weights.begin(), weights.end());
  EXPECT_EQ(weights, (std::vector<std::uint64_t>{5, 10, 20, 30}));
}

TEST(WeightedStats, DegreeStrengthCorrelationUnitWeights) {
  // With all weights equal, strength == weight * degree -> correlation 1.
  util::Rng rng(4);
  const Graph graph = graph::erdosRenyi(100, 300, rng);
  EXPECT_NEAR(graph::degreeStrengthCorrelation(graph), 1.0, 1e-9);
}

TEST(WeightedStats, AssortativityOfStarIsNegative) {
  // A star is maximally disassortative: hubs connect to leaves only.
  std::vector<Edge> edges;
  for (Vertex leaf = 1; leaf <= 10; ++leaf) {
    edges.push_back(Edge{0, leaf, 1});
  }
  const Graph star = Graph::fromEdges(edges, 11);
  EXPECT_LT(graph::degreeAssortativity(star), -0.99);
}

TEST(WeightedStats, AssortativityOfRegularGraphIsDegenerate) {
  util::Rng rng(8);
  const Graph ring = graph::wattsStrogatz(50, 2, 0.0, rng);
  // All degrees equal -> zero variance -> defined as 0.
  EXPECT_DOUBLE_EQ(graph::degreeAssortativity(ring), 0.0);
}

TEST(WeightedStats, BarratEqualsUnweightedForUnitWeights) {
  util::Rng rng(6);
  const Graph graph = graph::erdosRenyi(80, 320, rng);
  const auto weighted = graph::weightedClusteringCoefficients(graph);
  const auto unweighted = graph::localClusteringCoefficients(graph);
  ASSERT_EQ(weighted.size(), unweighted.size());
  for (std::size_t v = 0; v < weighted.size(); ++v) {
    EXPECT_NEAR(weighted[v], unweighted[v], 1e-12) << "vertex " << v;
  }
}

TEST(WeightedStats, BarratWeighsTrianglesByIncidentEdges) {
  // Vertex 0 has neighbors {1, 2, 3}; only the pair (1, 2) closes a
  // triangle. Heavy weights on the triangle edges (0-1, 0-2) versus the
  // dangling edge (0-3) raise c_w(0); light ones lower it.
  //   c_w(0) = (w01 + w02) / ((w01 + w02 + w03) * (k - 1)).
  const auto build = [](graph::Weight triangleWeight) {
    const std::vector<Edge> edges{{0, 1, triangleWeight},
                                  {0, 2, triangleWeight},
                                  {0, 3, 10},
                                  {1, 2, 10}};
    return Graph::fromEdges(edges, 4);
  };
  const auto heavy = graph::weightedClusteringCoefficients(build(100));
  const auto light = graph::weightedClusteringCoefficients(build(1));
  EXPECT_NEAR(heavy[0], 200.0 / (210.0 * 2.0), 1e-12);
  EXPECT_NEAR(light[0], 2.0 / (12.0 * 2.0), 1e-12);
  EXPECT_GT(heavy[0], light[0]);
  const auto unweighted = graph::localClusteringCoefficients(build(10));
  const auto balanced = graph::weightedClusteringCoefficients(build(10));
  EXPECT_NEAR(balanced[0], unweighted[0], 1e-12);
}

TEST(WeightedStats, BarratZeroForLowDegree) {
  const std::vector<Edge> edges{{0, 1, 5}};
  const Graph graph = Graph::fromEdges(edges, 2);
  const auto weighted = graph::weightedClusteringCoefficients(graph);
  EXPECT_DOUBLE_EQ(weighted[0], 0.0);
  EXPECT_DOUBLE_EQ(weighted[1], 0.0);
}

TEST(WeightedStats, MeanNeighborDegree) {
  const Graph graph = weightedTriangle();
  const auto knn = graph::meanNeighborDegree(graph);
  EXPECT_DOUBLE_EQ(knn[3], 3.0);              // neighbor 2 has degree 3
  EXPECT_DOUBLE_EQ(knn[0], (2.0 + 3.0) / 2);  // neighbors 1 (2), 2 (3)
}

// ---- adjacency persistence ----------------------------------------------------

class AdjacencyIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / "chisimnet_adj_io";
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

sparse::SymmetricAdjacency randomAdjacency(std::uint64_t seed,
                                           std::size_t edges) {
  util::Rng rng(seed);
  sparse::SymmetricAdjacency adjacency(edges);
  for (std::size_t i = 0; i < edges; ++i) {
    const auto u = static_cast<std::uint32_t>(rng.uniformBelow(10000));
    const auto v = static_cast<std::uint32_t>(rng.uniformBelow(10000));
    if (u != v) {
      adjacency.add(u, v, 1 + rng.uniformBelow(1000000));
    }
  }
  return adjacency;
}

TEST_F(AdjacencyIoTest, RoundTrip) {
  const auto adjacency = randomAdjacency(1, 5000);
  const auto path = dir_ / "net.cadj";
  sparse::saveAdjacency(adjacency, path);
  const auto loaded = sparse::loadAdjacency(path);
  EXPECT_EQ(loaded.toTriplets(), adjacency.toTriplets());
}

TEST_F(AdjacencyIoTest, EmptyAdjacency) {
  const sparse::SymmetricAdjacency empty;
  const auto path = dir_ / "empty.cadj";
  sparse::saveAdjacency(empty, path);
  EXPECT_TRUE(sparse::loadTriplets(path).empty());
}

TEST_F(AdjacencyIoTest, LargeWeightsSurvive) {
  sparse::SymmetricAdjacency adjacency;
  adjacency.add(1, 2, (1ull << 40) + 123);
  const auto path = dir_ / "big.cadj";
  sparse::saveAdjacency(adjacency, path);
  const auto triplets = sparse::loadTriplets(path);
  ASSERT_EQ(triplets.size(), 1u);
  EXPECT_EQ(triplets[0].weight, (1ull << 40) + 123);
}

TEST_F(AdjacencyIoTest, TruncationDetected) {
  const auto adjacency = randomAdjacency(2, 100);
  const auto path = dir_ / "trunc.cadj";
  sparse::saveAdjacency(adjacency, path);
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 6);
  EXPECT_THROW(sparse::loadTriplets(path), std::runtime_error);
}

TEST_F(AdjacencyIoTest, CorruptionDetected) {
  const auto adjacency = randomAdjacency(3, 100);
  const auto path = dir_ / "corrupt.cadj";
  sparse::saveAdjacency(adjacency, path);
  {
    std::fstream stream(path, std::ios::binary | std::ios::in | std::ios::out);
    stream.seekp(40);
    char byte = 0;
    stream.read(&byte, 1);
    stream.seekp(40);
    byte = static_cast<char>(byte ^ 0x10);
    stream.write(&byte, 1);
  }
  EXPECT_THROW(sparse::loadTriplets(path), std::runtime_error);
}

TEST_F(AdjacencyIoTest, NotAnAdjacencyFileRejected) {
  const auto path = dir_ / "junk.cadj";
  {
    std::ofstream out(path);
    out << "hello";
  }
  EXPECT_THROW(sparse::loadTriplets(path), std::runtime_error);
}

TEST_F(AdjacencyIoTest, SummingStoredPartials) {
  // The paper's batch workflow: store per-batch adjacencies, sum later.
  auto a = randomAdjacency(4, 500);
  auto b = randomAdjacency(5, 500);
  sparse::saveAdjacency(a, dir_ / "a.cadj");
  sparse::saveAdjacency(b, dir_ / "b.cadj");

  auto sum = sparse::loadAdjacency(dir_ / "a.cadj");
  sum.merge(sparse::loadAdjacency(dir_ / "b.cadj"));

  a.merge(b);
  EXPECT_EQ(sum.toTriplets(), a.toTriplets());
}

}  // namespace
}  // namespace chisimnet
