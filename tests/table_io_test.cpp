#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "chisimnet/table/io.hpp"
#include "chisimnet/util/rng.hpp"

namespace chisimnet::table {
namespace {

class TableIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("chisimnet_table_io_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

EventTable randomEvents(std::uint64_t seed, std::size_t count) {
  util::Rng rng(seed);
  EventTable events;
  for (std::size_t i = 0; i < count; ++i) {
    const auto start = static_cast<Hour>(rng.uniformBelow(168));
    events.append(Event{start, start + 1 + static_cast<Hour>(rng.uniformBelow(8)),
                        static_cast<PersonId>(rng.uniformBelow(100000)),
                        static_cast<ActivityId>(rng.uniformBelow(10)),
                        static_cast<PlaceId>(rng.uniformBelow(40000))});
  }
  return events;
}

TEST_F(TableIoTest, RoundTrip) {
  const EventTable original = randomEvents(1, 500);
  const auto path = dir_ / "events.tsv";
  writeEventsTsv(original, path);
  const EventTable loaded = readEventsTsv(path);
  ASSERT_EQ(loaded.size(), original.size());
  for (std::uint64_t row = 0; row < original.size(); ++row) {
    EXPECT_EQ(loaded.row(row), original.row(row));
  }
}

TEST_F(TableIoTest, EmptyTable) {
  const EventTable empty;
  const auto path = dir_ / "empty.tsv";
  writeEventsTsv(empty, path);
  EXPECT_TRUE(readEventsTsv(path).empty());
}

TEST_F(TableIoTest, HeaderIsWritten) {
  writeEventsTsv(randomEvents(2, 3), dir_ / "h.tsv");
  std::ifstream in(dir_ / "h.tsv");
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "start\tend\tperson\tactivity\tplace");
}

TEST_F(TableIoTest, MalformedRowsRejected) {
  const auto write = [this](const std::string& name, const std::string& body) {
    const auto path = dir_ / name;
    std::ofstream out(path);
    out << "start\tend\tperson\tactivity\tplace\n" << body;
    return path;
  };
  EXPECT_THROW(readEventsTsv(write("few.tsv", "1\t2\t3\n")),
               std::runtime_error);
  EXPECT_THROW(readEventsTsv(write("junk.tsv", "1\t2\tthree\t4\t5\n")),
               std::runtime_error);
  EXPECT_THROW(readEventsTsv(write("trail.tsv", "1\t2\t3\t4\t5\textra\n")),
               std::runtime_error);
  EXPECT_THROW(readEventsTsv(write("order.tsv", "5\t5\t3\t4\t5\n")),
               std::runtime_error);
}

TEST_F(TableIoTest, MissingFileRejected) {
  EXPECT_THROW(readEventsTsv(dir_ / "nope.tsv"), std::runtime_error);
}

TEST_F(TableIoTest, BlankLinesSkipped) {
  const auto path = dir_ / "blank.tsv";
  {
    std::ofstream out(path);
    out << "start\tend\tperson\tactivity\tplace\n"
        << "1\t2\t3\t4\t5\n"
        << "\n"
        << "6\t7\t8\t9\t10\n";
  }
  const EventTable events = readEventsTsv(path);
  EXPECT_EQ(events.size(), 2u);
}

}  // namespace
}  // namespace chisimnet::table
