#include <gtest/gtest.h>

#include <numeric>

#include "chisimnet/graph/algorithms.hpp"
#include "chisimnet/graph/generators.hpp"
#include "chisimnet/graph/mixing.hpp"
#include "chisimnet/util/rng.hpp"

namespace chisimnet::graph {
namespace {

/// Two groups of 6; dense within groups, two cross edges.
Graph twoBlockGraph() {
  std::vector<Edge> edges;
  for (Vertex base : {Vertex{0}, Vertex{6}}) {
    for (Vertex u = 0; u < 6; ++u) {
      for (Vertex v = u + 1; v < 6; ++v) {
        edges.push_back(Edge{base + u, base + v, 2});
      }
    }
  }
  edges.push_back(Edge{0, 6, 1});
  edges.push_back(Edge{1, 7, 1});
  return Graph::fromEdges(edges, 12);
}

std::vector<std::uint32_t> twoBlockGroups() {
  std::vector<std::uint32_t> groups(12, 0);
  for (Vertex v = 6; v < 12; ++v) {
    groups[v] = 1;
  }
  return groups;
}

TEST(MixingMatrix, CountsEdgesAndWeightsPerGroupPair) {
  const Graph graph = twoBlockGraph();
  const auto groups = twoBlockGroups();
  const MixingMatrix mixing(graph, groups, 2);
  EXPECT_EQ(mixing.edgeCount(0, 0), 15u);  // C(6,2)
  EXPECT_EQ(mixing.edgeCount(1, 1), 15u);
  EXPECT_EQ(mixing.edgeCount(0, 1), 2u);
  EXPECT_EQ(mixing.edgeCount(1, 0), 2u);
  EXPECT_EQ(mixing.weight(0, 0), 30u);  // 15 edges x weight 2
  EXPECT_EQ(mixing.weight(0, 1), 2u);
  EXPECT_NEAR(mixing.edgeFraction(0, 0), 15.0 / 32.0, 1e-12);
}

TEST(MixingMatrix, AssortativityHighForBlockStructure) {
  const Graph graph = twoBlockGraph();
  const MixingMatrix mixing(graph, twoBlockGroups(), 2);
  EXPECT_GT(mixing.assortativity(), 0.8);
}

TEST(MixingMatrix, AssortativityNearZeroForRandomGrouping) {
  util::Rng rng(3);
  const Graph graph = erdosRenyi(400, 2000, rng);
  std::vector<std::uint32_t> groups(400);
  for (auto& group : groups) {
    group = static_cast<std::uint32_t>(rng.uniformBelow(4));
  }
  const MixingMatrix mixing(graph, groups, 4);
  EXPECT_NEAR(mixing.assortativity(), 0.0, 0.05);
}

TEST(MixingMatrix, PerfectAssortativityWhenNoCrossEdges) {
  std::vector<Edge> edges{{0, 1, 1}, {2, 3, 1}};
  const Graph graph = Graph::fromEdges(edges, 4);
  const std::vector<std::uint32_t> groups{0, 0, 1, 1};
  const MixingMatrix mixing(graph, groups, 2);
  EXPECT_DOUBLE_EQ(mixing.assortativity(), 1.0);
}

TEST(MixingMatrix, RejectsBadInputs) {
  const Graph graph = twoBlockGraph();
  const std::vector<std::uint32_t> wrongSize(3, 0);
  EXPECT_THROW(MixingMatrix(graph, wrongSize, 2), std::invalid_argument);
  std::vector<std::uint32_t> outOfRange(12, 5);
  EXPECT_THROW(MixingMatrix(graph, outOfRange, 2), std::invalid_argument);
}

class GroupedConfigSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GroupedConfigSeeds, MatchesDegreesAndMixing) {
  // Source: strong two-block structure.
  util::Rng sourceRng(GetParam());
  std::vector<Edge> edges;
  const Vertex n = 200;
  std::vector<std::uint32_t> groups(n);
  for (Vertex v = 0; v < n; ++v) {
    groups[v] = v < n / 2 ? 0 : 1;
  }
  // Random intra-group edges plus a few cross edges.
  std::set<std::pair<Vertex, Vertex>> used;
  const auto addRandomEdge = [&](Vertex lo, Vertex hi, Vertex lo2, Vertex hi2) {
    for (int tries = 0; tries < 50; ++tries) {
      auto u = static_cast<Vertex>(lo + sourceRng.uniformBelow(hi - lo));
      auto v = static_cast<Vertex>(lo2 + sourceRng.uniformBelow(hi2 - lo2));
      if (u == v) {
        continue;
      }
      if (u > v) {
        std::swap(u, v);
      }
      if (used.insert({u, v}).second) {
        edges.push_back(Edge{u, v, 1});
        return;
      }
    }
  };
  for (int i = 0; i < 600; ++i) {
    addRandomEdge(0, n / 2, 0, n / 2);
    addRandomEdge(n / 2, n, n / 2, n);
  }
  for (int i = 0; i < 60; ++i) {
    addRandomEdge(0, n / 2, n / 2, n);
  }
  const Graph source = Graph::fromEdges(edges, n);
  const MixingMatrix sourceMixing(source, groups, 2);

  util::Rng rng(GetParam() + 77);
  const Graph generated = groupedConfigurationModel(
      degreeSequence(source), groups, sourceMixing.edgeCountTable(), 2, rng);
  const MixingMatrix generatedMixing(generated, groups, 2);

  // Pair edge counts within a few percent (rejection may drop a few).
  for (std::uint32_t a = 0; a < 2; ++a) {
    for (std::uint32_t b = a; b < 2; ++b) {
      const double target = static_cast<double>(sourceMixing.edgeCount(a, b));
      const double got = static_cast<double>(generatedMixing.edgeCount(a, b));
      EXPECT_NEAR(got, target, std::max(4.0, 0.05 * target))
          << "pair (" << a << "," << b << ")";
    }
  }
  // Realized degrees never exceed targets.
  const auto targetDegrees = degreeSequence(source);
  for (Vertex v = 0; v < n; ++v) {
    EXPECT_LE(generated.degree(v), targetDegrees[v]);
  }
  // Group assortativity carried over.
  EXPECT_NEAR(generatedMixing.assortativity(), sourceMixing.assortativity(),
              0.08);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GroupedConfigSeeds,
                         ::testing::Values(1, 2, 3));

TEST(GroupedConfig, RejectsBadTableSize) {
  const std::vector<std::uint64_t> degrees{2, 2};
  const std::vector<std::uint32_t> groups{0, 1};
  const std::vector<std::uint64_t> wrongTable{1, 2, 3};
  util::Rng rng(1);
  EXPECT_THROW(
      groupedConfigurationModel(degrees, groups, wrongTable, 2, rng),
      std::invalid_argument);
}

// ---- k-core -----------------------------------------------------------------

TEST(KCore, KnownStructure) {
  // Triangle {0,1,2} (core 2) with pendant 3 on vertex 2 (core 1) and an
  // isolated vertex 4 (core 0).
  const std::vector<Edge> edges{{0, 1, 1}, {1, 2, 1}, {0, 2, 1}, {2, 3, 1}};
  const Graph graph = Graph::fromEdges(edges, 5);
  const auto core = kCoreDecomposition(graph);
  EXPECT_EQ(core, (std::vector<std::uint32_t>{2, 2, 2, 1, 0}));
}

TEST(KCore, CompleteGraph) {
  std::vector<Edge> edges;
  for (Vertex u = 0; u < 7; ++u) {
    for (Vertex v = u + 1; v < 7; ++v) {
      edges.push_back(Edge{u, v, 1});
    }
  }
  const Graph complete = Graph::fromEdges(edges, 7);
  for (std::uint32_t core : kCoreDecomposition(complete)) {
    EXPECT_EQ(core, 6u);
  }
}

TEST(KCore, CoreOfCliqueSurvivesPendants) {
  // A 5-clique with a long pendant path must keep core number 4 inside the
  // clique and core 1 on the path.
  std::vector<Edge> edges;
  for (Vertex u = 0; u < 5; ++u) {
    for (Vertex v = u + 1; v < 5; ++v) {
      edges.push_back(Edge{u, v, 1});
    }
  }
  for (Vertex v = 5; v < 10; ++v) {
    edges.push_back(Edge{static_cast<Vertex>(v - 1), v, 1});
  }
  const Graph graph = Graph::fromEdges(edges, 10);
  const auto core = kCoreDecomposition(graph);
  for (Vertex v = 0; v < 5; ++v) {
    EXPECT_EQ(core[v], 4u);
  }
  for (Vertex v = 5; v < 10; ++v) {
    EXPECT_EQ(core[v], 1u);
  }
}

class KCoreProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KCoreProperty, CoreInvariants) {
  util::Rng rng(GetParam());
  const Graph graph = erdosRenyi(150, 600, rng);
  const auto core = kCoreDecomposition(graph);
  // core(v) <= degree(v), and each vertex has >= core(v) neighbors with
  // core >= core(v) (defining property of the decomposition).
  for (Vertex v = 0; v < graph.vertexCount(); ++v) {
    EXPECT_LE(core[v], graph.degree(v));
    std::uint32_t strongNeighbors = 0;
    for (Vertex neighbor : graph.neighbors(v)) {
      strongNeighbors += core[neighbor] >= core[v] ? 1 : 0;
    }
    EXPECT_GE(strongNeighbors, core[v]) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KCoreProperty, ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace chisimnet::graph
