#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "chisimnet/sparse/adjacency.hpp"
#include "chisimnet/sparse/spill.hpp"
#include "chisimnet/util/rng.hpp"

/// Disk-spilling accumulation suite: the k-way loser-tree merge against a
/// brute-force sum, the CSPL1 run container (round trip, truncation and
/// bit-flip rejection with file + byte-offset context), and the
/// SpillingAccumulator's budget guarantee — peak resident bytes must never
/// exceed the configured cap, asserted here as a test, not just observed
/// in a bench.

namespace chisimnet::sparse {
namespace {

class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : dir_(std::filesystem::temp_directory_path() / name) {
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  ~ScratchDir() {
    std::error_code ignored;
    std::filesystem::remove_all(dir_, ignored);
  }
  const std::filesystem::path& path() const { return dir_; }

 private:
  std::filesystem::path dir_;
};

/// A strictly key-ascending random run: distinct (i, j) pairs, sorted.
std::vector<AdjacencyTriplet> makeRun(util::Rng& rng, std::size_t size,
                                      std::uint32_t personSpace) {
  std::map<std::uint64_t, std::uint64_t> byKey;
  while (byKey.size() < size) {
    const auto a = static_cast<std::uint32_t>(rng.uniformBelow(personSpace));
    const auto b = static_cast<std::uint32_t>(rng.uniformBelow(personSpace));
    if (a == b) {
      continue;
    }
    byKey[packPair(a, b)] += 1 + rng.uniformBelow(100);
  }
  std::vector<AdjacencyTriplet> run;
  run.reserve(byKey.size());
  for (const auto& [key, weight] : byKey) {
    run.push_back(AdjacencyTriplet{pairLow(key), pairHigh(key), weight});
  }
  return run;
}

/// Brute-force reference: sum every run into one key-ordered map.
std::vector<AdjacencyTriplet> bruteForceSum(
    const std::vector<std::vector<AdjacencyTriplet>>& runs) {
  std::map<std::uint64_t, std::uint64_t> sum;
  for (const auto& run : runs) {
    for (const AdjacencyTriplet& triplet : run) {
      sum[packPair(triplet.i, triplet.j)] += triplet.weight;
    }
  }
  std::vector<AdjacencyTriplet> merged;
  merged.reserve(sum.size());
  for (const auto& [key, weight] : sum) {
    merged.push_back(AdjacencyTriplet{pairLow(key), pairHigh(key), weight});
  }
  return merged;
}

std::vector<AdjacencyTriplet> drain(TripletSource& source) {
  std::vector<AdjacencyTriplet> out;
  AdjacencyTriplet triplet;
  while (source.next(triplet)) {
    out.push_back(triplet);
  }
  return out;
}

// ---- k-way merge properties ----

TEST(TripletMergerTest, RandomRunsMatchBruteForceSum) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    util::Rng rng(seed * 7919 + 3);
    const std::size_t runCount = rng.uniformBelow(9);  // 0..8 runs
    std::vector<std::vector<AdjacencyTriplet>> runs;
    for (std::size_t r = 0; r < runCount; ++r) {
      // Small person space forces key overlap across runs.
      runs.push_back(makeRun(rng, rng.uniformBelow(300), 40));
    }
    std::vector<std::span<const AdjacencyTriplet>> spans(runs.begin(),
                                                         runs.end());
    EXPECT_EQ(mergeKSortedTriplets(spans), bruteForceSum(runs))
        << "seed " << seed << ", " << runCount << " runs";
  }
}

TEST(TripletMergerTest, DuplicatePairsAcrossManyRunsSum) {
  // The same pair in five runs must come out once, with the summed weight.
  std::vector<std::vector<AdjacencyTriplet>> runs;
  for (std::uint64_t r = 0; r < 5; ++r) {
    runs.push_back({AdjacencyTriplet{2, 9, 10 + r},
                    AdjacencyTriplet{3, 7, 1}});
  }
  runs.push_back({AdjacencyTriplet{1, 2, 4}});
  std::vector<std::span<const AdjacencyTriplet>> spans(runs.begin(),
                                                       runs.end());
  const std::vector<AdjacencyTriplet> merged = mergeKSortedTriplets(spans);
  const std::vector<AdjacencyTriplet> want = {AdjacencyTriplet{1, 2, 4},
                                              AdjacencyTriplet{2, 9, 60},
                                              AdjacencyTriplet{3, 7, 5}};
  EXPECT_EQ(merged, bruteForceSum(runs));
  EXPECT_EQ(merged, want);
}

TEST(TripletMergerTest, DegenerateInputs) {
  // No sources at all.
  EXPECT_TRUE(mergeKSortedTriplets({}).empty());

  // A single run passes through unchanged.
  util::Rng rng(17);
  const std::vector<AdjacencyTriplet> run = makeRun(rng, 100, 64);
  const std::vector<std::span<const AdjacencyTriplet>> one = {run};
  EXPECT_EQ(mergeKSortedTriplets(one), run);

  // Empty runs beside real ones contribute nothing.
  const std::vector<AdjacencyTriplet> empty;
  const std::vector<std::span<const AdjacencyTriplet>> mixed = {empty, run,
                                                                empty};
  EXPECT_EQ(mergeKSortedTriplets(mixed), run);

  // Only empty runs.
  const std::vector<std::span<const AdjacencyTriplet>> empties = {empty,
                                                                  empty};
  EXPECT_TRUE(mergeKSortedTriplets(empties).empty());
}

TEST(TripletMergerTest, RejectsMisorderedSource) {
  const std::vector<AdjacencyTriplet> bad = {AdjacencyTriplet{5, 9, 1},
                                             AdjacencyTriplet{1, 2, 1}};
  SpanTripletSource source(bad);
  TripletMerger merger(std::vector<TripletSource*>{&source});
  // The merger validates as it advances; the violation surfaces while
  // draining (possibly on the very first pull, which pre-reads heads).
  EXPECT_THROW(drain(merger), std::runtime_error);
}

// ---- CSPL1 run container ----

TEST(SpillRunTest, RoundTripsAcrossFrameBoundaries) {
  ScratchDir scratch("chisimnet_spill_roundtrip");
  util::Rng rng(23);
  // > one frame (64 Ki rows) so the reader crosses a frame boundary.
  const std::vector<AdjacencyTriplet> run =
      makeRun(rng, kSpillFrameTriplets + 1000, 1u << 20);

  const std::filesystem::path path = scratch.path() / "run.0.spl";
  SpillRunWriter writer(path);
  writer.append(std::span<const AdjacencyTriplet>(run));
  const SpillRunInfo info = writer.finish();
  EXPECT_EQ(info.file, path);
  EXPECT_EQ(info.triplets, run.size());
  EXPECT_EQ(info.bytes, std::filesystem::file_size(path));
  EXPECT_FALSE(std::filesystem::exists(path.string() + ".tmp"));

  SpillRunReader reader(path);
  EXPECT_EQ(reader.tripletCount(), run.size());
  EXPECT_EQ(drain(reader), run);
}

TEST(SpillRunTest, EmptyRunRoundTrips) {
  ScratchDir scratch("chisimnet_spill_empty");
  const std::filesystem::path path = scratch.path() / "run.0.spl";
  SpillRunWriter writer(path);
  const SpillRunInfo info = writer.finish();
  EXPECT_EQ(info.triplets, 0u);
  SpillRunReader reader(path);
  EXPECT_TRUE(drain(reader).empty());
}

TEST(SpillRunTest, WriterRejectsMisorderedAppend) {
  ScratchDir scratch("chisimnet_spill_misordered");
  SpillRunWriter writer(scratch.path() / "run.0.spl");
  writer.append(AdjacencyTriplet{4, 8, 1});
  EXPECT_THROW(writer.append(AdjacencyTriplet{1, 2, 1}), std::runtime_error);
  // Duplicate keys are mis-ordered too (strictly ascending).
  EXPECT_THROW(writer.append(AdjacencyTriplet{4, 8, 2}), std::runtime_error);
}

TEST(SpillRunTest, AbandonedWriterLeavesNoFile) {
  ScratchDir scratch("chisimnet_spill_abandoned");
  const std::filesystem::path path = scratch.path() / "run.0.spl";
  {
    SpillRunWriter writer(path);
    writer.append(AdjacencyTriplet{1, 2, 3});
    // No finish(): models a crash mid-spill.
  }
  EXPECT_FALSE(std::filesystem::exists(path));
  EXPECT_FALSE(std::filesystem::exists(path.string() + ".tmp"));
}

TEST(SpillRunTest, TruncationIsRejectedWithFileAndOffset) {
  ScratchDir scratch("chisimnet_spill_truncated");
  util::Rng rng(29);
  const std::vector<AdjacencyTriplet> run = makeRun(rng, 5000, 1u << 16);
  const std::filesystem::path path = scratch.path() / "run.0.spl";
  {
    SpillRunWriter writer(path);
    writer.append(std::span<const AdjacencyTriplet>(run));
    writer.finish();
  }
  // Cut mid-frame: the payload read comes up short.
  std::filesystem::resize_file(path, std::filesystem::file_size(path) / 2);
  SpillRunReader reader(path);
  try {
    drain(reader);
    FAIL() << "truncated run should be rejected";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find(path.string()), std::string::npos) << what;
    EXPECT_NE(what.find("byte offset"), std::string::npos) << what;
    EXPECT_NE(what.find("truncated"), std::string::npos) << what;
  }
}

TEST(SpillRunTest, HeaderCountMismatchIsRejected) {
  ScratchDir scratch("chisimnet_spill_count_mismatch");
  util::Rng rng(31);
  // Exactly one frame, then chop whole frames off by truncating at the
  // frame boundary: the per-frame CRCs still pass, but the header count
  // doesn't, which the clean-EOF path must catch.
  const std::vector<AdjacencyTriplet> run = makeRun(rng, 100, 1u << 16);
  const std::filesystem::path path = scratch.path() / "run.0.spl";
  {
    SpillRunWriter writer(path);
    writer.append(std::span<const AdjacencyTriplet>(run));
    writer.finish();
  }
  // Header is 16 bytes; drop the single frame entirely.
  std::filesystem::resize_file(path, 16);
  SpillRunReader reader(path);
  try {
    drain(reader);
    FAIL() << "count mismatch should be rejected";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find(path.string()), std::string::npos) << what;
    EXPECT_NE(what.find("declares"), std::string::npos) << what;
  }
}

TEST(SpillRunTest, BitFlipIsRejectedWithCrcContext) {
  ScratchDir scratch("chisimnet_spill_bitflip");
  util::Rng rng(37);
  const std::vector<AdjacencyTriplet> run = makeRun(rng, 4000, 1u << 16);
  const std::filesystem::path path = scratch.path() / "run.0.spl";
  {
    SpillRunWriter writer(path);
    writer.append(std::span<const AdjacencyTriplet>(run));
    writer.finish();
  }
  // Flip one bit deep inside the frame payload (past header + frame
  // header), leaving structure intact so only the CRC can notice.
  {
    std::fstream file(path,
                      std::ios::binary | std::ios::in | std::ios::out);
    file.seekg(1024);
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x10);
    file.seekp(1024);
    file.write(&byte, 1);
  }
  SpillRunReader reader(path);
  try {
    drain(reader);
    FAIL() << "bit-flipped run should be rejected";
  } catch (const std::runtime_error& error) {
    const std::string what = error.what();
    EXPECT_NE(what.find(path.string()), std::string::npos) << what;
    EXPECT_NE(what.find("byte offset"), std::string::npos) << what;
    EXPECT_NE(what.find("CRC mismatch"), std::string::npos) << what;
  }
}

// ---- SpillingAccumulator ----

TEST(SpillingAccumulatorTest, MatchesBruteForceAcrossSpills) {
  ScratchDir scratch("chisimnet_spill_acc_bruteforce");
  util::Rng rng(41);
  const std::vector<AdjacencyTriplet> adds = makeRun(rng, 20000, 2000);

  SpillingAccumulator::Options options;
  options.dir = scratch.path();
  options.budgetBytes = 64 * 1024;  // tiny: forces many spills
  SpillingAccumulator accumulator(options);
  // Shuffled insert order must not matter.
  std::vector<AdjacencyTriplet> shuffled = adds;
  for (std::size_t i = shuffled.size(); i > 1; --i) {
    std::swap(shuffled[i - 1], shuffled[rng.uniformBelow(i)]);
  }
  for (const AdjacencyTriplet& triplet : shuffled) {
    accumulator.add(triplet.i, triplet.j, triplet.weight);
  }
  EXPECT_GT(accumulator.stats().runsWritten, 0u);
  const auto merged = accumulator.finishMerge();
  EXPECT_EQ(drain(*merged), bruteForceSum({adds}));
}

TEST(SpillingAccumulatorTest, PeakNeverExceedsTheBudget) {
  // The tested guarantee, not a bench observation: with a budget of at
  // least a few MiB (above the 4 KiB threshold floor), the accumulator's
  // peak resident bytes — shard tables plus the spill-sort transient —
  // stay at or below the cap.
  ScratchDir scratch("chisimnet_spill_acc_budget");
  util::Rng rng(43);
  const std::uint64_t budget = 1 << 20;  // 1 MiB

  SpillingAccumulator::Options options;
  options.dir = scratch.path();
  options.budgetBytes = budget;
  SpillingAccumulator accumulator(options);
  std::map<std::uint64_t, std::uint64_t> reference;
  for (std::size_t i = 0; i < 300000; ++i) {
    const auto a = static_cast<std::uint32_t>(rng.uniformBelow(1u << 20));
    const auto b = static_cast<std::uint32_t>(rng.uniformBelow(1u << 20));
    if (a == b) {
      continue;
    }
    accumulator.add(a, b, 1);
    reference[packPair(a, b)] += 1;
    ASSERT_LE(accumulator.residentBytes(), budget);
  }
  EXPECT_GT(accumulator.stats().runsWritten, 0u);
  EXPECT_LE(accumulator.stats().peakResidentBytes, budget);

  std::vector<AdjacencyTriplet> want;
  want.reserve(reference.size());
  for (const auto& [key, weight] : reference) {
    want.push_back(AdjacencyTriplet{pairLow(key), pairHigh(key), weight});
  }
  const auto merged = accumulator.finishMerge();
  EXPECT_EQ(drain(*merged), want);
  // The merge-time spill counts toward the same peak guarantee.
  EXPECT_LE(accumulator.stats().peakResidentBytes, budget);
}

TEST(SpillingAccumulatorTest, CompactionBoundsLiveRuns) {
  ScratchDir scratch("chisimnet_spill_acc_compact");
  util::Rng rng(47);
  const std::vector<AdjacencyTriplet> adds = makeRun(rng, 6000, 500);

  SpillingAccumulator::Options options;
  options.dir = scratch.path();
  options.maxLiveRuns = 3;
  SpillingAccumulator accumulator(options);
  // Force many runs via explicit spillAll between slices.
  const std::size_t slice = adds.size() / 10;
  for (std::size_t begin = 0; begin < adds.size(); begin += slice) {
    const std::size_t end = std::min(adds.size(), begin + slice);
    for (std::size_t i = begin; i < end; ++i) {
      accumulator.add(adds[i].i, adds[i].j, adds[i].weight);
    }
    accumulator.spillAll();
    EXPECT_LE(accumulator.liveRuns().size(), options.maxLiveRuns);
  }
  EXPECT_GT(accumulator.stats().compactions, 0u);
  const auto merged = accumulator.finishMerge();
  EXPECT_EQ(drain(*merged), adds);
}

TEST(SpillingAccumulatorTest, AdoptRenamesIntoOwnNamespace) {
  ScratchDir scratch("chisimnet_spill_acc_adopt");
  // A worker-named run: after a resume, worker names restart from zero,
  // so adoption must move the file out of the collidable namespace.
  const std::filesystem::path workerFile = scratch.path() / "w0.b0.0.spl";
  SpillRunInfo info;
  {
    SpillRunWriter writer(workerFile);
    writer.append(AdjacencyTriplet{1, 2, 5});
    info = writer.finish();
  }
  SpillingAccumulator::Options options;
  options.dir = scratch.path();
  SpillingAccumulator accumulator(options);
  accumulator.adoptRunFile(info);
  EXPECT_FALSE(std::filesystem::exists(workerFile));
  ASSERT_EQ(accumulator.liveRuns().size(), 1u);
  const std::string adopted =
      accumulator.liveRuns()[0].file.filename().string();
  EXPECT_TRUE(adopted.starts_with("run.")) << adopted;
  const auto merged = accumulator.finishMerge();
  EXPECT_EQ(drain(*merged),
            (std::vector<AdjacencyTriplet>{AdjacencyTriplet{1, 2, 5}}));
}

TEST(SpillingAccumulatorTest, RestoreKeepsTheManifestName) {
  ScratchDir scratch("chisimnet_spill_acc_restore");
  const std::filesystem::path runFile = scratch.path() / "run.3.spl";
  SpillRunInfo info;
  {
    SpillRunWriter writer(runFile);
    writer.append(AdjacencyTriplet{4, 9, 2});
    info = writer.finish();
  }
  SpillingAccumulator::Options options;
  options.dir = scratch.path();
  SpillingAccumulator accumulator(options);
  accumulator.restoreRunFile(info);
  // Name preserved (the current manifest references it), and new runs
  // number above it instead of colliding.
  EXPECT_TRUE(std::filesystem::exists(runFile));
  accumulator.add(1, 2, 1);
  accumulator.spillAll();
  ASSERT_EQ(accumulator.liveRuns().size(), 2u);
  EXPECT_EQ(accumulator.liveRuns()[1].file.filename().string(), "run.4.spl");
}

}  // namespace
}  // namespace chisimnet::sparse
