#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "chisimnet/pop/io.hpp"
#include "chisimnet/pop/population.hpp"
#include "chisimnet/pop/schedule.hpp"

namespace chisimnet::pop {
namespace {

class PopIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("chisimnet_pop_io_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

PopulationConfig smallConfig() {
  PopulationConfig config;
  config.personCount = 3000;
  config.seed = 555;
  return config;
}

TEST_F(PopIoTest, RoundTripPreservesPersonsAndPlaces) {
  const auto original = SyntheticPopulation::generate(smallConfig());
  savePopulation(original, dir_);
  const auto loaded = loadPopulation(dir_);

  ASSERT_EQ(loaded.persons().size(), original.persons().size());
  ASSERT_EQ(loaded.places().size(), original.places().size());
  EXPECT_EQ(loaded.neighborhoodCount(), original.neighborhoodCount());

  for (std::size_t i = 0; i < original.persons().size(); ++i) {
    const Person& a = original.persons()[i];
    const Person& b = loaded.persons()[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.age, b.age);
    EXPECT_EQ(a.group, b.group);
    EXPECT_EQ(a.neighborhood, b.neighborhood);
    EXPECT_EQ(a.home, b.home);
    EXPECT_EQ(a.classroom, b.classroom);
    EXPECT_EQ(a.schoolCommon, b.schoolCommon);
    EXPECT_EQ(a.workplace, b.workplace);
    EXPECT_EQ(a.university, b.university);
    EXPECT_EQ(a.institution, b.institution);
  }
  for (std::size_t i = 0; i < original.places().size(); ++i) {
    const Place& a = original.places()[i];
    const Place& b = loaded.places()[i];
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.type, b.type);
    EXPECT_EQ(a.neighborhood, b.neighborhood);
    EXPECT_EQ(a.capacity, b.capacity);
  }
}

TEST_F(PopIoTest, DerivedIndexesMatchAfterLoad) {
  const auto original = SyntheticPopulation::generate(smallConfig());
  savePopulation(original, dir_);
  const auto loaded = loadPopulation(dir_);

  ASSERT_EQ(loaded.hospitals().size(), original.hospitals().size());
  for (std::uint32_t hood = 0; hood < original.neighborhoodCount(); ++hood) {
    const NeighborhoodVenues& a = original.venues(hood);
    const NeighborhoodVenues& b = loaded.venues(hood);
    EXPECT_EQ(std::vector<PlaceId>(a.shops.begin(), a.shops.end()),
              std::vector<PlaceId>(b.shops.begin(), b.shops.end()));
    ASSERT_EQ(a.shopWeights.size(), b.shopWeights.size());
    for (std::size_t i = 0; i < a.shopWeights.size(); ++i) {
      EXPECT_DOUBLE_EQ(a.shopWeights[i], b.shopWeights[i]);
    }
    EXPECT_EQ(std::vector<PlaceId>(a.leisure.begin(), a.leisure.end()),
              std::vector<PlaceId>(b.leisure.begin(), b.leisure.end()));
    EXPECT_EQ(
        std::vector<PlaceId>(original.households(hood).begin(),
                             original.households(hood).end()),
        std::vector<PlaceId>(loaded.households(hood).begin(),
                             loaded.households(hood).end()));
  }
}

TEST_F(PopIoTest, SchedulesIdenticalFromLoadedPopulation) {
  // The whole point of the round trip: simulations driven from files equal
  // simulations driven from the in-memory generator.
  const auto original = SyntheticPopulation::generate(smallConfig());
  savePopulation(original, dir_);
  const auto loaded = loadPopulation(dir_);

  const ScheduleGenerator a(original, 42);
  const ScheduleGenerator b(loaded, 42);
  for (PersonId person = 0; person < 200; ++person) {
    EXPECT_EQ(a.weeklySchedule(person, 0), b.weeklySchedule(person, 0))
        << "person " << person;
  }
}

TEST_F(PopIoTest, FileInventoryReported) {
  const auto population = SyntheticPopulation::generate(smallConfig());
  savePopulation(population, dir_);
  EXPECT_TRUE(std::filesystem::exists(dir_ / "persons.tsv"));
  EXPECT_TRUE(std::filesystem::exists(dir_ / "places.tsv"));
  EXPECT_TRUE(std::filesystem::exists(dir_ / "activities.tsv"));
  EXPECT_TRUE(std::filesystem::exists(dir_ / "config.tsv"));
  EXPECT_GT(populationFileBytes(dir_), 10000u);
}

TEST_F(PopIoTest, ActivitiesFileListsVocabulary) {
  const auto population = SyntheticPopulation::generate(smallConfig());
  savePopulation(population, dir_);
  std::ifstream in(dir_ / "activities.tsv");
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("school-lunch"), std::string::npos);
  EXPECT_NE(content.find("visit"), std::string::npos);
}

TEST_F(PopIoTest, MissingDirectoryRejected) {
  EXPECT_THROW(loadPopulation(dir_ / "nope"), std::runtime_error);
}

TEST_F(PopIoTest, CorruptPersonRowRejected) {
  const auto population = SyntheticPopulation::generate(smallConfig());
  savePopulation(population, dir_);
  {
    std::ofstream out(dir_ / "persons.tsv", std::ios::app);
    out << "99999\tnot_an_age\t0\t0\t-\t-\t-\t-\t-\n";
  }
  EXPECT_THROW(loadPopulation(dir_), std::runtime_error);
}

TEST_F(PopIoTest, DanglingPlaceReferenceRejected) {
  const auto population = SyntheticPopulation::generate(smallConfig());
  savePopulation(population, dir_);
  // Rewrite persons.tsv with one home id beyond the place table.
  std::vector<std::string> lines;
  {
    std::ifstream in(dir_ / "persons.tsv");
    std::string line;
    while (std::getline(in, line)) {
      lines.push_back(line);
    }
  }
  {
    const auto fields = lines[1];
    std::ofstream out(dir_ / "persons.tsv", std::ios::trunc);
    out << lines[0] << "\n";
    // Replace the home field (4th) of the first person with a huge id.
    std::string mutated = lines[1];
    std::size_t tab = 0;
    for (int i = 0; i < 3; ++i) {
      tab = mutated.find('\t', tab) + 1;
    }
    const std::size_t end = mutated.find('\t', tab);
    mutated.replace(tab, end - tab, "123456789");
    out << mutated << "\n";
    for (std::size_t i = 2; i < lines.size(); ++i) {
      out << lines[i] << "\n";
    }
  }
  EXPECT_THROW(loadPopulation(dir_), std::invalid_argument);
}

TEST(PopFromParts, RejectsInconsistentAgeGroup) {
  auto population = SyntheticPopulation::generate([] {
    PopulationConfig config;
    config.personCount = 1000;
    return config;
  }());
  std::vector<Person> persons(population.persons().begin(),
                              population.persons().end());
  std::vector<Place> places(population.places().begin(),
                            population.places().end());
  persons[0].group = persons[0].age < 30 ? AgeGroup::kSenior65plus
                                         : AgeGroup::kChild0to14;
  EXPECT_THROW(SyntheticPopulation::fromParts(population.config(),
                                              std::move(persons),
                                              std::move(places)),
               std::invalid_argument);
}

}  // namespace
}  // namespace chisimnet::pop
