#include <gtest/gtest.h>

#include <vector>

#include "chisimnet/runtime/scheduler.hpp"

namespace chisimnet::runtime {
namespace {

TEST(Scheduler, ExecutesInTickOrder) {
  Scheduler scheduler;
  std::vector<Tick> order;
  scheduler.scheduleAt(5, [&order](Tick tick) { order.push_back(tick); });
  scheduler.scheduleAt(1, [&order](Tick tick) { order.push_back(tick); });
  scheduler.scheduleAt(3, [&order](Tick tick) { order.push_back(tick); });
  scheduler.run(10);
  EXPECT_EQ(order, (std::vector<Tick>{1, 3, 5}));
  EXPECT_EQ(scheduler.executedActions(), 3u);
}

TEST(Scheduler, PriorityOrdersWithinTick) {
  Scheduler scheduler;
  std::vector<int> order;
  scheduler.scheduleAt(2, [&order](Tick) { order.push_back(2); },
                       Scheduler::kLate);
  scheduler.scheduleAt(2, [&order](Tick) { order.push_back(0); },
                       Scheduler::kEarly);
  scheduler.scheduleAt(2, [&order](Tick) { order.push_back(1); },
                       Scheduler::kNormal);
  scheduler.run(5);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(Scheduler, InsertionOrderBreaksTies) {
  Scheduler scheduler;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    scheduler.scheduleAt(1, [&order, i](Tick) { order.push_back(i); });
  }
  scheduler.run(1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, RepeatingActionFiresEveryInterval) {
  Scheduler scheduler;
  std::vector<Tick> fired;
  scheduler.scheduleRepeating(2, 3, [&fired](Tick tick) {
    fired.push_back(tick);
  });
  scheduler.run(12);
  EXPECT_EQ(fired, (std::vector<Tick>{2, 5, 8, 11}));
}

TEST(Scheduler, RunStopsAtEndTick) {
  Scheduler scheduler;
  int count = 0;
  scheduler.scheduleRepeating(1, 1, [&count](Tick) { ++count; });
  scheduler.run(7);
  EXPECT_EQ(count, 7);
  EXPECT_EQ(scheduler.currentTick(), 7u);
  // Actions beyond the horizon were discarded, so re-running is a no-op.
  scheduler.run(10);
  EXPECT_EQ(count, 7);
}

TEST(Scheduler, StopSkipsRemainingActions) {
  Scheduler scheduler;
  std::vector<int> order;
  scheduler.scheduleAt(1, [&order, &scheduler](Tick) {
    order.push_back(0);
    scheduler.stop();
  }, Scheduler::kEarly);
  scheduler.scheduleAt(1, [&order](Tick) { order.push_back(1); },
                       Scheduler::kLate);
  scheduler.scheduleAt(2, [&order](Tick) { order.push_back(2); });
  scheduler.run(10);
  EXPECT_EQ(order, (std::vector<int>{0}));
}

TEST(Scheduler, StopEndsRepetition) {
  Scheduler scheduler;
  int count = 0;
  scheduler.scheduleRepeating(1, 1, [&count, &scheduler](Tick tick) {
    ++count;
    if (tick == 3) {
      scheduler.stop();
    }
  });
  scheduler.run(100);
  EXPECT_EQ(count, 3);
}

TEST(Scheduler, ActionsCanScheduleMoreActions) {
  Scheduler scheduler;
  std::vector<Tick> fired;
  scheduler.scheduleAt(1, [&](Tick tick) {
    fired.push_back(tick);
    scheduler.scheduleAt(tick + 4, [&fired](Tick inner) {
      fired.push_back(inner);
    });
  });
  scheduler.run(10);
  EXPECT_EQ(fired, (std::vector<Tick>{1, 5}));
}

TEST(Scheduler, RejectsPastAndInvalid) {
  Scheduler scheduler;
  scheduler.scheduleAt(5, [](Tick) {});
  scheduler.run(5);
  EXPECT_THROW(scheduler.scheduleAt(3, [](Tick) {}), std::invalid_argument);
  EXPECT_THROW(scheduler.scheduleRepeating(6, 0, [](Tick) {}),
               std::invalid_argument);
  EXPECT_THROW(scheduler.scheduleAt(6, nullptr), std::invalid_argument);
}

TEST(Scheduler, PendingCount) {
  Scheduler scheduler;
  scheduler.scheduleAt(1, [](Tick) {});
  scheduler.scheduleAt(2, [](Tick) {});
  EXPECT_EQ(scheduler.pendingActions(), 2u);
  scheduler.run(1);
  EXPECT_EQ(scheduler.pendingActions(), 1u);
}

}  // namespace
}  // namespace chisimnet::runtime
