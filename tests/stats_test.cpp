#include <gtest/gtest.h>

#include <cmath>

#include "chisimnet/stats/fit.hpp"
#include "chisimnet/stats/histogram.hpp"
#include "chisimnet/util/rng.hpp"

namespace chisimnet::stats {
namespace {

TEST(Histogram, BinsValuesCorrectly) {
  Histogram histogram(0.0, 1.0, 10);
  histogram.add(0.05);   // bin 0
  histogram.add(0.15);   // bin 1
  histogram.add(0.999);  // bin 9
  histogram.add(1.0);    // exactly hi -> last bin
  EXPECT_EQ(histogram.count(0), 1u);
  EXPECT_EQ(histogram.count(1), 1u);
  EXPECT_EQ(histogram.count(9), 2u);
  EXPECT_EQ(histogram.total(), 4u);
}

TEST(Histogram, UnderAndOverflow) {
  Histogram histogram(0.0, 1.0, 4);
  histogram.add(-0.1);
  histogram.add(1.5);
  EXPECT_EQ(histogram.underflow(), 1u);
  EXPECT_EQ(histogram.overflow(), 1u);
  EXPECT_EQ(histogram.total(), 2u);
}

TEST(Histogram, BinGeometry) {
  Histogram histogram(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(histogram.binCenter(0), 1.0);
  const auto [lo, hi] = histogram.binEdges(2);
  EXPECT_DOUBLE_EQ(lo, 4.0);
  EXPECT_DOUBLE_EQ(hi, 6.0);
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(FrequencyDistribution, CountsAndFractions) {
  const std::vector<std::uint64_t> values{1, 1, 2, 5, 5, 5};
  const auto points = frequencyDistribution(values);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0].value, 1u);
  EXPECT_EQ(points[0].count, 2u);
  EXPECT_NEAR(points[0].fraction, 2.0 / 6.0, 1e-12);
  EXPECT_EQ(points[2].value, 5u);
  EXPECT_EQ(points[2].count, 3u);
}

TEST(FrequencyDistribution, EmptyInput) {
  EXPECT_TRUE(frequencyDistribution({}).empty());
}

TEST(LogBinned, CoversAllPositiveValues) {
  const std::vector<std::uint64_t> values{1, 2, 3, 10, 100, 1000};
  const auto points = logBinnedDistribution(values, 2.0);
  std::uint64_t total = 0;
  for (const FrequencyPoint& point : points) {
    total += point.count;
  }
  EXPECT_EQ(total, values.size());
}

TEST(LogBinned, ZerosExcluded) {
  const std::vector<std::uint64_t> values{0, 0, 1};
  const auto points = logBinnedDistribution(values, 2.0);
  std::uint64_t total = 0;
  for (const FrequencyPoint& point : points) {
    total += point.count;
  }
  EXPECT_EQ(total, 1u);
}

TEST(MeanVariance, Basics) {
  const std::vector<double> values{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(values), 2.5);
  EXPECT_DOUBLE_EQ(variance(values), 1.25);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
}

/// Builds an exact distribution from a model density over k in [1, kMax].
std::vector<FrequencyPoint> syntheticDistribution(
    const std::function<double(double)>& density, std::uint64_t kMax) {
  std::vector<FrequencyPoint> points;
  double total = 0.0;
  for (std::uint64_t k = 1; k <= kMax; ++k) {
    total += density(static_cast<double>(k));
  }
  for (std::uint64_t k = 1; k <= kMax; ++k) {
    const double p = density(static_cast<double>(k)) / total;
    points.push_back(FrequencyPoint{k, 0, p});
  }
  return points;
}

TEST(Fit, PowerLawRecoversExponent) {
  // p(k) ~ k^-1.5, the paper's Fig 3 overlay exponent.
  const auto distribution = syntheticDistribution(
      [](double k) { return std::pow(k, -1.5); }, 500);
  const FitResult fit = fitPowerLaw(distribution);
  EXPECT_NEAR(fit.alpha, 1.5, 1e-6);
  EXPECT_NEAR(fit.sseLog, 0.0, 1e-9);
  EXPECT_EQ(fit.model, FitModel::kPowerLaw);
}

TEST(Fit, TruncatedPowerLawRecoversBothParameters) {
  // p(k) ~ k^-1.25 e^(-k/1000), the paper's Fig 3 truncated fit.
  const auto distribution = syntheticDistribution(
      [](double k) { return std::pow(k, -1.25) * std::exp(-k / 1000.0); },
      3000);
  const FitResult fit = fitTruncatedPowerLaw(distribution);
  EXPECT_NEAR(fit.alpha, 1.25, 1e-6);
  EXPECT_NEAR(fit.cutoff, 1000.0, 1.0);
  EXPECT_NEAR(fit.sseLog, 0.0, 1e-9);
}

TEST(Fit, ExponentialRecoversCutoff) {
  const auto distribution = syntheticDistribution(
      [](double k) { return std::exp(-k / 40.0); }, 400);
  const FitResult fit = fitExponential(distribution);
  EXPECT_NEAR(fit.cutoff, 40.0, 1e-6);
  EXPECT_DOUBLE_EQ(fit.alpha, 0.0);
}

TEST(Fit, EvaluateMatchesDensityShape) {
  const auto distribution = syntheticDistribution(
      [](double k) { return std::pow(k, -2.0); }, 100);
  const FitResult fit = fitPowerLaw(distribution);
  // Ratio test: p(2)/p(4) should be 2^alpha = 4.
  EXPECT_NEAR(fit.evaluate(2.0) / fit.evaluate(4.0), 4.0, 1e-6);
}

TEST(Fit, KMinRestrictsFitRange) {
  // Distribution that is power law only for k >= 10.
  auto distribution = syntheticDistribution(
      [](double k) { return k < 10 ? 0.01 : std::pow(k, -2.0); }, 300);
  const FitResult fullFit = fitPowerLaw(distribution, 1);
  const FitResult tailFit = fitPowerLaw(distribution, 10);
  EXPECT_NEAR(tailFit.alpha, 2.0, 1e-6);
  EXPECT_GT(std::fabs(fullFit.alpha - 2.0), 0.05);
}

TEST(Fit, TruncatedBeatsPowerLawOnRolledOffTail) {
  // The paper's observation: a rolled-off tail fits the truncated form
  // better (lower log-space SSE) than the pure power law.
  const auto distribution = syntheticDistribution(
      [](double k) { return std::pow(k, -1.3) * std::exp(-k / 200.0); }, 2000);
  const FitResult pure = fitPowerLaw(distribution);
  const FitResult truncated = fitTruncatedPowerLaw(distribution);
  EXPECT_LT(truncated.sseLog, pure.sseLog);
}

TEST(Fit, RejectsTooFewPoints) {
  const std::vector<FrequencyPoint> one{{1, 1, 1.0}};
  EXPECT_THROW(fitPowerLaw(one), std::invalid_argument);
  EXPECT_THROW(fitTruncatedPowerLaw(one), std::invalid_argument);
  EXPECT_THROW(fitExponential(one), std::invalid_argument);
}

TEST(Fit, MleRecoversAlphaFromSamples) {
  // Sample from a discrete power law p(k) ~ k^-2.5 via inverse CDF.
  util::Rng rng(77);
  const double alpha = 2.5;
  std::vector<double> weights;
  for (int k = 1; k <= 10000; ++k) {
    weights.push_back(std::pow(static_cast<double>(k), -alpha));
  }
  util::AliasTable sampler{std::span<const double>(weights)};
  std::vector<std::uint64_t> samples;
  for (int i = 0; i < 50000; ++i) {
    samples.push_back(sampler.sample(rng) + 1);
  }
  // The x_min - 1/2 approximation is accurate for kMin >= ~6 (documented on
  // the API); at kMin = 1 it is biased low by design.
  EXPECT_NEAR(powerLawAlphaMle(samples, 10), alpha, 0.1);
  EXPECT_LT(powerLawAlphaMle(samples, 1), alpha);
}

TEST(Fit, KsNearZeroForPerfectFit) {
  const auto distribution = syntheticDistribution(
      [](double k) { return std::pow(k, -1.8); }, 200);
  const FitResult fit = fitPowerLaw(distribution);
  EXPECT_LT(ksStatistic(fit, distribution), 1e-9);
}

TEST(Fit, KsLargeForWrongModel) {
  const auto distribution = syntheticDistribution(
      [](double k) { return std::exp(-k / 5.0); }, 100);
  const FitResult wrong = fitPowerLaw(distribution);
  EXPECT_GT(ksStatistic(wrong, distribution), 0.05);
}

TEST(Fit, KsTwoSampleIdenticalIsZero) {
  const std::vector<FrequencyPoint> dist{{1, 3, 0.3}, {5, 7, 0.7}};
  EXPECT_DOUBLE_EQ(ksTwoSample(dist, dist), 0.0);
}

TEST(Fit, KsTwoSampleDisjointIsOne) {
  const std::vector<FrequencyPoint> a{{1, 1, 0.5}, {2, 1, 0.5}};
  const std::vector<FrequencyPoint> b{{10, 1, 1.0}};
  EXPECT_DOUBLE_EQ(ksTwoSample(a, b), 1.0);
  EXPECT_DOUBLE_EQ(ksTwoSample(b, a), 1.0);
}

TEST(Fit, KsTwoSampleKnownGap) {
  // a puts 0.8 at value 1 and 0.2 at value 3; b puts 0.2 / 0.8.
  // Max CDF gap is |0.8 - 0.2| = 0.6 after value 1.
  const std::vector<FrequencyPoint> a{{1, 0, 0.8}, {3, 0, 0.2}};
  const std::vector<FrequencyPoint> b{{1, 0, 0.2}, {3, 0, 0.8}};
  EXPECT_NEAR(ksTwoSample(a, b), 0.6, 1e-12);
}

TEST(Fit, KsTwoSampleNormalizesFractions) {
  // Unnormalized fractions (e.g. raw counts) give the same answer.
  const std::vector<FrequencyPoint> a{{1, 0, 8.0}, {3, 0, 2.0}};
  const std::vector<FrequencyPoint> b{{1, 0, 1.0}, {3, 0, 4.0}};
  EXPECT_NEAR(ksTwoSample(a, b), 0.6, 1e-12);
}

TEST(Fit, KsTwoSampleSampleNoiseIsSmall) {
  // Two samples from the same distribution should have a small distance.
  util::Rng rng(123);
  const std::vector<double> weights{5, 4, 3, 2, 1};
  const util::AliasTable sampler{std::span<const double>(weights)};
  std::vector<std::uint64_t> sampleA;
  std::vector<std::uint64_t> sampleB;
  for (int i = 0; i < 20000; ++i) {
    sampleA.push_back(sampler.sample(rng) + 1);
    sampleB.push_back(sampler.sample(rng) + 1);
  }
  EXPECT_LT(ksTwoSample(frequencyDistribution(sampleA),
                        frequencyDistribution(sampleB)),
            0.02);
}

TEST(Fit, KsTwoSampleRejectsEmpty) {
  const std::vector<FrequencyPoint> some{{1, 1, 1.0}};
  EXPECT_THROW(ksTwoSample({}, some), std::invalid_argument);
  EXPECT_THROW(ksTwoSample(some, {}), std::invalid_argument);
}

TEST(Fit, ModelNames) {
  EXPECT_EQ(fitModelName(FitModel::kPowerLaw), "power-law");
  EXPECT_EQ(fitModelName(FitModel::kTruncatedPowerLaw), "truncated-power-law");
  EXPECT_EQ(fitModelName(FitModel::kExponential), "exponential");
}

}  // namespace
}  // namespace chisimnet::stats
