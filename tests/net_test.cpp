#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>

#include "chisimnet/elog/clg5.hpp"
#include "chisimnet/elog/log_directory.hpp"
#include "chisimnet/net/demography.hpp"
#include "chisimnet/net/synthesis.hpp"
#include "chisimnet/util/rng.hpp"

namespace chisimnet::net {
namespace {

using table::Event;

table::EventTable randomEvents(std::uint64_t seed, std::size_t count,
                               std::uint32_t persons = 60,
                               std::uint32_t places = 15,
                               table::Hour horizon = 48) {
  util::Rng rng(seed);
  table::EventTable events;
  for (std::size_t i = 0; i < count; ++i) {
    const auto start = static_cast<table::Hour>(rng.uniformBelow(horizon));
    events.append(Event{
        start, start + 1 + static_cast<table::Hour>(rng.uniformBelow(8)),
        static_cast<table::PersonId>(rng.uniformBelow(persons)),
        static_cast<table::ActivityId>(rng.uniformBelow(5)),
        static_cast<table::PlaceId>(rng.uniformBelow(places))});
  }
  return events;
}

void expectEqualAdjacency(const sparse::SymmetricAdjacency& a,
                          const sparse::SymmetricAdjacency& b) {
  EXPECT_EQ(a.edgeCount(), b.edgeCount());
  EXPECT_EQ(a.toTriplets(), b.toTriplets());
}

SynthesisConfig baseConfig(table::Hour windowEnd = 48) {
  SynthesisConfig config;
  config.windowStart = 0;
  config.windowEnd = windowEnd;
  config.workers = 3;
  return config;
}

TEST(Synthesis, MatchesBruteForceOnKnownScenario) {
  // Persons 1 and 2 share place 5 during hours [2, 5): weight 3.
  // Persons 1 and 3 share place 6 during hour [7, 8): weight 1.
  table::EventTable events;
  events.append(Event{2, 5, 1, 0, 5});
  events.append(Event{0, 5, 2, 0, 5});
  events.append(Event{7, 9, 1, 0, 6});
  events.append(Event{6, 8, 3, 0, 6});
  NetworkSynthesizer synthesizer(baseConfig());
  const auto adjacency = synthesizer.synthesizeAdjacency(events);
  EXPECT_EQ(adjacency.weight(1, 2), 3u);
  EXPECT_EQ(adjacency.weight(1, 3), 1u);
  EXPECT_EQ(adjacency.weight(2, 3), 0u);
  EXPECT_EQ(adjacency.edgeCount(), 2u);
}

class SynthesisProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SynthesisProperty, PipelineEqualsBruteForce) {
  const table::EventTable events = randomEvents(GetParam(), 300);
  NetworkSynthesizer synthesizer(baseConfig());
  const auto pipeline = synthesizer.synthesizeAdjacency(events);
  const auto reference = bruteForceAdjacency(events, 0, 48);
  expectEqualAdjacency(pipeline, reference);
}

TEST_P(SynthesisProperty, AllAdjacencyMethodsAgree) {
  const table::EventTable events = randomEvents(GetParam() + 100, 300);
  SynthesisConfig config = baseConfig();
  config.method = sparse::AdjacencyMethod::kSpGemm;
  NetworkSynthesizer spgemm(config);
  const auto reference = spgemm.synthesizeAdjacency(events);
  config.method = sparse::AdjacencyMethod::kIntervalIntersection;
  NetworkSynthesizer sweep(config);
  expectEqualAdjacency(reference, sweep.synthesizeAdjacency(events));
  config.method = sparse::AdjacencyMethod::kLocalAccumulate;
  NetworkSynthesizer local(config);
  expectEqualAdjacency(reference, local.synthesizeAdjacency(events));
}

TEST_P(SynthesisProperty, TreeAndSerialReduceAgree) {
  const table::EventTable events = randomEvents(GetParam() + 400, 300);
  SynthesisConfig config = baseConfig();
  config.workers = 5;  // odd count: the merge tree carries a leftover
  config.treeReduce = true;
  NetworkSynthesizer tree(config);
  const auto treeResult = tree.synthesizeAdjacency(events);
  EXPECT_TRUE(tree.report().treeReduceEnabled);
  EXPECT_GE(tree.report().reduceTreeDepth, 1u);
  config.treeReduce = false;
  NetworkSynthesizer serial(config);
  const auto serialResult = serial.synthesizeAdjacency(events);
  EXPECT_FALSE(serial.report().treeReduceEnabled);
  expectEqualAdjacency(treeResult, serialResult);
}

TEST_P(SynthesisProperty, BalancedAndNaivePartitionsAgree) {
  const table::EventTable events = randomEvents(GetParam() + 200, 300);
  SynthesisConfig config = baseConfig();
  config.balancedPartition = true;
  NetworkSynthesizer balanced(config);
  config.balancedPartition = false;
  NetworkSynthesizer naive(config);
  expectEqualAdjacency(balanced.synthesizeAdjacency(events),
                       naive.synthesizeAdjacency(events));
}

TEST_P(SynthesisProperty, WorkerCountInvariant) {
  const table::EventTable events = randomEvents(GetParam() + 300, 300);
  SynthesisConfig config = baseConfig();
  config.workers = 1;
  NetworkSynthesizer serial(config);
  const auto reference = serial.synthesizeAdjacency(events);
  for (unsigned workers : {2u, 4u, 8u}) {
    config.workers = workers;
    NetworkSynthesizer parallel(config);
    expectEqualAdjacency(parallel.synthesizeAdjacency(events), reference);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SynthesisProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(Synthesis, WindowRestrictsCollocation) {
  table::EventTable events;
  events.append(Event{0, 10, 1, 0, 5});
  events.append(Event{0, 10, 2, 0, 5});
  SynthesisConfig config = baseConfig();
  config.windowStart = 4;
  config.windowEnd = 7;
  NetworkSynthesizer synthesizer(config);
  const auto adjacency = synthesizer.synthesizeAdjacency(events);
  EXPECT_EQ(adjacency.weight(1, 2), 3u);
}

TEST(Synthesis, ReportTracksStages) {
  const table::EventTable events = randomEvents(9, 500);
  NetworkSynthesizer synthesizer(baseConfig());
  const auto adjacency = synthesizer.synthesizeAdjacency(events);
  const SynthesisReport& report = synthesizer.report();
  EXPECT_EQ(report.logEntriesLoaded, 500u);
  EXPECT_GT(report.placesProcessed, 0u);
  EXPECT_GT(report.collocationNnz, 0u);
  EXPECT_EQ(report.edges, adjacency.edgeCount());
  EXPECT_EQ(report.batches, 1u);
  EXPECT_GE(report.partitionImbalance, 1.0);
  EXPECT_EQ(report.partitionLoads.size(), 3u);
}

TEST(Synthesis, GraphConstructionMatchesAdjacency) {
  const table::EventTable events = randomEvents(10, 400);
  NetworkSynthesizer synthesizer(baseConfig());
  const auto adjacency = synthesizer.synthesizeAdjacency(events);
  const graph::Graph graph = synthesizer.synthesizeGraph(events);
  EXPECT_EQ(graph.edgeCount(), adjacency.edgeCount());
  // Check a few weights through the label mapping.
  const auto triplets = adjacency.toTriplets();
  for (std::size_t i = 0; i < std::min<std::size_t>(triplets.size(), 20); ++i) {
    const auto u = graph.vertexForLabel(triplets[i].i);
    const auto v = graph.vertexForLabel(triplets[i].j);
    ASSERT_TRUE(u.has_value());
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(graph.weightBetween(*u, *v), triplets[i].weight);
  }
}

class SynthesisFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("chisimnet_net_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Splits `events` round-robin across `fileCount` CLG5 files, mimicking
  /// per-rank logs.
  std::vector<std::filesystem::path> writeFiles(const table::EventTable& events,
                                                int fileCount) {
    std::vector<std::unique_ptr<elog::ChunkedLogWriter>> writers;
    std::vector<std::vector<Event>> buffers(fileCount);
    for (std::uint64_t row = 0; row < events.size(); ++row) {
      buffers[row % fileCount].push_back(events.row(row));
    }
    std::vector<std::filesystem::path> files;
    for (int i = 0; i < fileCount; ++i) {
      const auto path = elog::logFilePath(dir_, i);
      elog::ChunkedLogWriter writer(path);
      writer.writeChunk(buffers[i]);
      writer.close();
      files.push_back(path);
    }
    return files;
  }

  std::filesystem::path dir_;
};

TEST_F(SynthesisFileTest, FileAndTablePathsAgree) {
  const table::EventTable events = randomEvents(11, 600);
  const auto files = writeFiles(events, 4);
  NetworkSynthesizer synthesizer(baseConfig());
  const auto fromFiles = synthesizer.synthesizeAdjacency(files);
  NetworkSynthesizer inMemory(baseConfig());
  expectEqualAdjacency(fromFiles, inMemory.synthesizeAdjacency(events));
}

TEST_F(SynthesisFileTest, BatchedProcessingEqualsSingleBatch) {
  // NOTE: batching splits persons' collocation *only* when the same
  // (place,hour) appears in different batches; per-rank logs partition by
  // person residency, so the paper sums batch adjacencies. Reproduce that:
  // batches must partition rows without splitting a (place,hour) pair...
  // which round-robin does not guarantee — so instead verify additivity on
  // disjoint time slices, which is how the paper actually batches.
  const table::EventTable events = randomEvents(12, 600, 60, 15, 96);
  SynthesisConfig firstHalf = baseConfig(48);
  SynthesisConfig secondHalf = baseConfig(96);
  secondHalf.windowStart = 48;
  NetworkSynthesizer a(firstHalf);
  NetworkSynthesizer b(secondHalf);
  auto sum = a.synthesizeAdjacency(events);
  sum.merge(b.synthesizeAdjacency(events));

  NetworkSynthesizer whole(baseConfig(96));
  expectEqualAdjacency(whole.synthesizeAdjacency(events), sum);
}

TEST_F(SynthesisFileTest, MultiBatchFileProcessingMatchesWholeRun) {
  // Batches over *files* are safe because every file batch contributes its
  // events' collocations only when the pair is co-present in that batch —
  // so we split files by person (like real per-rank logs) and compare.
  const table::EventTable events = randomEvents(13, 600);
  // Partition rows by person parity into two "rank" files: collocation
  // pairs can still span files, so the batched result must come from
  // *loading batches of whole files together*, i.e. filesPerBatch covers
  // all files here.
  const auto files = writeFiles(events, 6);
  SynthesisConfig config = baseConfig();
  config.filesPerBatch = 6;
  NetworkSynthesizer batched(config);
  NetworkSynthesizer whole(baseConfig());
  expectEqualAdjacency(batched.synthesizeAdjacency(files),
                       whole.synthesizeAdjacency(files));
  EXPECT_EQ(batched.report().batches, 1u);
}

TEST(Synthesis, RejectsBadConfig) {
  SynthesisConfig config = baseConfig();
  config.windowEnd = config.windowStart;
  EXPECT_THROW(NetworkSynthesizer{config}, std::invalid_argument);
  config = baseConfig();
  config.workers = 0;
  EXPECT_THROW(NetworkSynthesizer{config}, std::invalid_argument);
}

TEST(Synthesis, EmptyTableYieldsEmptyNetwork) {
  table::EventTable events;
  NetworkSynthesizer synthesizer(baseConfig());
  const auto adjacency = synthesizer.synthesizeAdjacency(events);
  EXPECT_EQ(adjacency.edgeCount(), 0u);
}

TEST(Demography, FiltersEventsByAgeGroup) {
  pop::PopulationConfig popConfig;
  popConfig.personCount = 2000;
  popConfig.seed = 5;
  const auto population = pop::SyntheticPopulation::generate(popConfig);

  table::EventTable events;
  for (table::PersonId person = 0; person < 500; ++person) {
    events.append(Event{0, 2, person, 0, 1});
  }
  const table::EventTable children =
      eventsForAgeGroup(events, population, pop::AgeGroup::kChild0to14);
  EXPECT_GT(children.size(), 0u);
  EXPECT_LT(children.size(), events.size());
  for (std::uint64_t row = 0; row < children.size(); ++row) {
    EXPECT_EQ(population.person(children.row(row).person).group,
              pop::AgeGroup::kChild0to14);
  }
}

TEST(Demography, FiltersEventsByPlaceType) {
  pop::PopulationConfig popConfig;
  popConfig.personCount = 2000;
  popConfig.seed = 7;
  const auto population = pop::SyntheticPopulation::generate(popConfig);

  // Find one workplace and one household.
  table::PlaceId workplace = pop::kNoPlace;
  table::PlaceId household = pop::kNoPlace;
  for (const pop::Place& place : population.places()) {
    if (place.type == pop::PlaceType::kWorkplace && workplace == pop::kNoPlace) {
      workplace = place.id;
    }
    if (place.type == pop::PlaceType::kHousehold && household == pop::kNoPlace) {
      household = place.id;
    }
  }
  ASSERT_NE(workplace, pop::kNoPlace);
  ASSERT_NE(household, pop::kNoPlace);

  table::EventTable events;
  events.append(Event{0, 8, 1, pop::activity::kWork, workplace});
  events.append(Event{8, 16, 1, pop::activity::kHome, household});
  events.append(Event{0, 8, 2, pop::activity::kWork, workplace});

  const table::EventTable workOnly =
      eventsForPlaceType(events, population, pop::PlaceType::kWorkplace);
  EXPECT_EQ(workOnly.size(), 2u);
  for (std::uint64_t row = 0; row < workOnly.size(); ++row) {
    EXPECT_EQ(population.place(workOnly.row(row).place).type,
              pop::PlaceType::kWorkplace);
  }

  const table::EventTable homeActivity =
      eventsForActivity(events, pop::activity::kHome);
  EXPECT_EQ(homeActivity.size(), 1u);
  EXPECT_EQ(homeActivity.row(0).place, household);
}

TEST(Demography, WithinGroupNetworkDropsCrossGroupEdges) {
  pop::PopulationConfig popConfig;
  popConfig.personCount = 2000;
  popConfig.seed = 6;
  const auto population = pop::SyntheticPopulation::generate(popConfig);

  // Find one child and one senior; collocate them and two children.
  table::PersonId child1 = 0;
  table::PersonId child2 = 0;
  table::PersonId senior = 0;
  for (const pop::Person& person : population.persons()) {
    if (person.group == pop::AgeGroup::kChild0to14) {
      if (child1 == 0) {
        child1 = person.id;
      } else if (child2 == 0 && person.id != child1) {
        child2 = person.id;
      }
    } else if (person.group == pop::AgeGroup::kSenior65plus && senior == 0) {
      senior = person.id;
    }
  }
  ASSERT_NE(child2, 0u);
  ASSERT_NE(senior, 0u);

  table::EventTable events;
  events.append(Event{0, 3, child1, 0, 1});
  events.append(Event{0, 3, child2, 0, 1});
  events.append(Event{0, 3, senior, 0, 1});

  NetworkSynthesizer synthesizer(baseConfig());
  const auto full = synthesizer.synthesizeAdjacency(events);
  EXPECT_EQ(full.edgeCount(), 3u);

  const auto childEvents =
      eventsForAgeGroup(events, population, pop::AgeGroup::kChild0to14);
  const auto within = synthesizer.synthesizeAdjacency(childEvents);
  EXPECT_EQ(within.edgeCount(), 1u);
  EXPECT_EQ(within.weight(child1, child2), 3u);
  EXPECT_EQ(within.weight(child1, senior), 0u);
}

}  // namespace
}  // namespace chisimnet::net
