#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <span>
#include <string>
#include <vector>

#include "chisimnet/elog/clg5.hpp"
#include "chisimnet/elog/log_directory.hpp"
#include "chisimnet/net/executor.hpp"
#include "chisimnet/net/synthesis.hpp"
#include "chisimnet/sparse/adjacency_io.hpp"
#include "chisimnet/util/rng.hpp"

/// Randomized differential harness for the synthesis pipeline: seeded random
/// event tables — varying person/place counts, window edges, and adversarial
/// intervals (zero-length, out-of-window, window-edge-crossing) — written to
/// place-partitioned CLG5 files like real per-rank logs, then synthesized
/// with prefetch on and off across worker counts and file batchings, and
/// compared edge-for-edge against bruteForceAdjacency.

namespace chisimnet::net {
namespace {

using table::Event;
using table::Hour;

struct FuzzCase {
  table::EventTable events;
  Hour windowStart = 0;
  Hour windowEnd = 0;
};

FuzzCase makeCase(std::uint64_t seed) {
  util::Rng rng(seed * 2654435761u + 17);
  FuzzCase out;
  const auto persons =
      static_cast<std::uint32_t>(8 + rng.uniformBelow(48));
  const auto places = static_cast<std::uint32_t>(2 + rng.uniformBelow(11));
  const Hour horizon = static_cast<Hour>(24 + rng.uniformBelow(48));
  out.windowStart = static_cast<Hour>(rng.uniformBelow(horizon / 3 + 1));
  out.windowEnd =
      out.windowStart + 4 + static_cast<Hour>(rng.uniformBelow(horizon));
  const std::size_t count = 60 + rng.uniformBelow(140);

  for (std::size_t i = 0; i < count; ++i) {
    Hour start = static_cast<Hour>(rng.uniformBelow(horizon));
    Hour end = start + 1 + static_cast<Hour>(rng.uniformBelow(9));
    switch (rng.uniformBelow(10)) {
      case 0:  // zero-length interval: contributes no presence hours
        end = start;
        break;
      case 1:  // fully after the window
        start = out.windowEnd + static_cast<Hour>(rng.uniformBelow(8));
        end = start + 1 + static_cast<Hour>(rng.uniformBelow(5));
        break;
      case 2:  // fully before the window (when there is room)
        if (out.windowStart > 1) {
          end = static_cast<Hour>(1 + rng.uniformBelow(out.windowStart - 1));
          start = static_cast<Hour>(rng.uniformBelow(end));
        }
        break;
      case 3:  // straddles the left window edge
        start = static_cast<Hour>(
            out.windowStart - std::min<Hour>(out.windowStart,
                                             1 + static_cast<Hour>(
                                                     rng.uniformBelow(4))));
        end = out.windowStart + 1 + static_cast<Hour>(rng.uniformBelow(6));
        break;
      case 4:  // straddles the right window edge
        start = out.windowEnd - std::min<Hour>(out.windowEnd,
                                               1 + static_cast<Hour>(
                                                       rng.uniformBelow(4)));
        end = out.windowEnd + 1 + static_cast<Hour>(rng.uniformBelow(6));
        break;
      case 5:  // spans the whole window
        start = static_cast<Hour>(
            rng.uniformBelow(out.windowStart + 1));
        end = out.windowEnd + static_cast<Hour>(rng.uniformBelow(4));
        break;
      default:
        break;  // generic in-horizon interval
    }
    out.events.append(Event{
        start, end, static_cast<table::PersonId>(rng.uniformBelow(persons)),
        static_cast<table::ActivityId>(rng.uniformBelow(5)),
        static_cast<table::PlaceId>(rng.uniformBelow(places))});
  }
  return out;
}

/// Writes `events` into `fileCount` CLG5 files partitioned by place id, the
/// way real per-rank logs partition events by the rank owning the place.
/// Place-disjoint files make any whole-file batching exactly additive.
std::vector<std::filesystem::path> writePlacePartitionedFiles(
    const table::EventTable& events, const std::filesystem::path& dir,
    int fileCount) {
  std::vector<std::vector<Event>> buffers(
      static_cast<std::size_t>(fileCount));
  for (std::uint64_t row = 0; row < events.size(); ++row) {
    const Event event = events.row(row);
    buffers[event.place % static_cast<std::uint32_t>(fileCount)].push_back(
        event);
  }
  std::vector<std::filesystem::path> files;
  for (int i = 0; i < fileCount; ++i) {
    const auto path = elog::logFilePath(dir, i);
    elog::ChunkedLogWriter writer(path);
    // Multiple sorted chunks per file so the reader's per-chunk time-range
    // pushdown participates in the test.
    auto& buffer = buffers[static_cast<std::size_t>(i)];
    std::sort(buffer.begin(), buffer.end());
    for (std::size_t begin = 0; begin < buffer.size(); begin += 32) {
      const std::size_t end = std::min(buffer.size(), begin + 32);
      writer.writeChunk(
          std::span<const Event>(buffer.data() + begin, end - begin));
    }
    writer.close();
    files.push_back(path);
  }
  return files;
}

class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : dir_(std::filesystem::temp_directory_path() / name) {
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  ~ScratchDir() {
    std::error_code ignored;
    std::filesystem::remove_all(dir_, ignored);
  }
  const std::filesystem::path& path() const { return dir_; }

 private:
  std::filesystem::path dir_;
};

void expectEqualAdjacency(const sparse::SymmetricAdjacency& got,
                          const sparse::SymmetricAdjacency& want,
                          const std::string& label) {
  EXPECT_EQ(got.edgeCount(), want.edgeCount()) << label;
  EXPECT_EQ(got.toTriplets(), want.toTriplets()) << label;
}

class SynthesisFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SynthesisFuzz, PipelineEqualsBruteForceAcrossConfigs) {
  const std::uint64_t seed = GetParam();
  const FuzzCase fuzz = makeCase(seed);
  const auto reference =
      bruteForceAdjacency(fuzz.events, fuzz.windowStart, fuzz.windowEnd);

  SynthesisConfig config;
  config.windowStart = fuzz.windowStart;
  config.windowEnd = fuzz.windowEnd;

  // In-memory path first (no file machinery involved).
  config.workers = 3;
  {
    NetworkSynthesizer synthesizer(config);
    expectEqualAdjacency(synthesizer.synthesizeAdjacency(fuzz.events),
                         reference, "in-memory seed " + std::to_string(seed));
  }

  // File path: place-partitioned per-rank logs, batching varied by seed.
  ScratchDir scratch("chisimnet_fuzz_" + std::to_string(seed));
  const int fileCount = 3 + static_cast<int>(seed % 3);
  const auto files =
      writePlacePartitionedFiles(fuzz.events, scratch.path(), fileCount);
  const std::size_t batchChoices[] = {0, 1, 2};
  config.filesPerBatch = batchChoices[seed % 3];
  config.prefetchDepth = 1 + seed % 3;

  for (const unsigned workers : {1u, 2u, 7u}) {
    for (const bool prefetch : {false, true}) {
      config.workers = workers;
      config.prefetch = prefetch;
      NetworkSynthesizer synthesizer(config);
      const auto adjacency = synthesizer.synthesizeAdjacency(files);
      expectEqualAdjacency(
          adjacency, reference,
          "seed " + std::to_string(seed) + " workers " +
              std::to_string(workers) + (prefetch ? " prefetch" : " serial"));
      // The report must agree with the reference result regardless of how
      // the load was pipelined.
      const SynthesisReport& report = synthesizer.report();
      EXPECT_EQ(report.edges, reference.edgeCount());
      EXPECT_EQ(report.prefetchEnabled, prefetch);
      EXPECT_GE(report.loadOverlappedSeconds, 0.0);
      if (!prefetch) {
        EXPECT_DOUBLE_EQ(report.loadExposedSeconds, report.loadSeconds);
      }
      // Default config runs the local-coordinate kernel and the tree
      // reduce; the counters must be self-consistent.
      EXPECT_TRUE(report.treeReduceEnabled);
      EXPECT_GT(report.reduceMergedSums, 0u);
      if (workers > 1) {
        EXPECT_GE(report.reduceTreeDepth, 1u);
      }
      EXPECT_LE(report.kernelDensePlaces + report.kernelHashPlaces,
                report.placesProcessed);
      EXPECT_LE(report.kernelGlobalEmits, report.kernelPairHourUpdates);
    }
  }

  // Same seeds through the message-passing executor: both backends and the
  // brute force must agree edge-for-edge, batched and prefetched alike.
  config.backend = SynthesisBackend::kMessagePassing;
  for (const unsigned workers : {1u, 3u}) {
    for (const bool prefetch : {false, true}) {
      config.workers = workers;
      config.prefetch = prefetch;
      NetworkSynthesizer synthesizer(config);
      expectEqualAdjacency(
          synthesizer.synthesizeAdjacency(files), reference,
          "mp seed " + std::to_string(seed) + " workers " +
              std::to_string(workers) + (prefetch ? " prefetch" : " serial"));
      EXPECT_GT(synthesizer.report().bytesScattered, 0u);
    }
  }

  // Kernel (old per-pair-hour SpGEMM vs new local-coordinate) and reduce
  // shape (serial root merge vs log-depth tree) are perf knobs only: every
  // combination, on both backends, must be bit-identical to the brute
  // force for every seed.
  config.prefetch = true;
  for (const sparse::AdjacencyMethod method :
       {sparse::AdjacencyMethod::kSpGemm,
        sparse::AdjacencyMethod::kLocalAccumulate}) {
    for (const bool tree : {false, true}) {
      for (const SynthesisBackend backend :
           {SynthesisBackend::kSharedMemory,
            SynthesisBackend::kMessagePassing}) {
        config.method = method;
        config.treeReduce = tree;
        config.backend = backend;
        config.workers =
            backend == SynthesisBackend::kSharedMemory ? 7u : 3u;
        NetworkSynthesizer synthesizer(config);
        expectEqualAdjacency(
            synthesizer.synthesizeAdjacency(files), reference,
            "seed " + std::to_string(seed) + " " + backendName(backend) +
                (method == sparse::AdjacencyMethod::kSpGemm ? " spgemm"
                                                            : " local") +
                (tree ? " tree" : " serial-reduce"));
        const SynthesisReport& report = synthesizer.report();
        EXPECT_EQ(report.treeReduceEnabled, tree);
        if (!tree) {
          EXPECT_EQ(report.reduceTreeDepth, 0u);
        }
        if (method == sparse::AdjacencyMethod::kSpGemm) {
          EXPECT_EQ(report.kernelDensePlaces + report.kernelHashPlaces, 0u);
        }
      }
    }
  }

  // Memory-budget axis: the disk-spilling accumulator is a perf/footprint
  // knob, never an output knob. A tight budget (forces spills every few
  // batches) and a pathological one (the 4 KiB threshold floor: spill on
  // practically every batch) must both stay bit-identical to the brute
  // force, per backend and kernel.
  config.method = sparse::AdjacencyMethod::kLocalAccumulate;
  config.treeReduce = true;
  for (const std::uint64_t budget : {std::uint64_t{32} * 1024,
                                     std::uint64_t{1}}) {
    for (const SynthesisBackend backend :
         {SynthesisBackend::kSharedMemory,
          SynthesisBackend::kMessagePassing}) {
      config.backend = backend;
      config.workers = backend == SynthesisBackend::kSharedMemory ? 7u : 3u;
      config.memoryBudgetBytes = budget;
      const std::string label = "seed " + std::to_string(seed) + " " +
                                backendName(backend) + " budget " +
                                std::to_string(budget);
      NetworkSynthesizer synthesizer(config);
      expectEqualAdjacency(synthesizer.synthesizeAdjacency(files), reference,
                           label);
      const SynthesisReport& report = synthesizer.report();
      EXPECT_EQ(report.memoryBudgetBytes, budget) << label;
      EXPECT_GT(report.spillRunsWritten, 0u) << label;
      // Budget ceiling, floor-aware: sub-threshold budgets are clamped to
      // the 4 KiB spill-threshold floor (plus its sort transient), so the
      // enforceable cap is max(budget, a few multiples of the floor).
      EXPECT_LE(report.peakAccumulatorBytes,
                std::max<std::uint64_t>(budget, 16 * 1024))
          << label;

      // The streaming file writer must produce the same CADJ bytes as
      // saving the equivalent in-memory result — across the reduce-shard
      // axis. 1 takes the legacy serial k-way merge, 3 and 0 (auto =
      // workers) take the owner-sharded parallel merge; the shard count is
      // a perf knob only, never an output knob.
      const std::filesystem::path dense =
          scratch.path() / ("dense_" + label + ".cadj");
      sparse::saveAdjacency(reference, dense);
      std::ifstream b(dense, std::ios::binary);
      const std::string bytesB((std::istreambuf_iterator<char>(b)),
                               std::istreambuf_iterator<char>());
      for (const unsigned reduceShards : {1u, 3u, 0u}) {
        config.reduceShards = reduceShards;
        // Small rows per shard so the sharded runs exercise a multi-segment
        // merge plan even at fuzz-case person counts.
        config.mergeRowsPerShard = reduceShards == 1 ? 0 : 16;
        const std::string shardLabel =
            label + " reduce-shards " + std::to_string(reduceShards);
        const std::filesystem::path streamed =
            scratch.path() / ("streamed_" + shardLabel + ".cadj");
        NetworkSynthesizer streaming(config);
        const std::uint64_t edges =
            streaming.synthesizeToFile(files, streamed);
        EXPECT_EQ(edges, reference.edgeCount()) << shardLabel;
        std::ifstream a(streamed, std::ios::binary);
        const std::string bytesA((std::istreambuf_iterator<char>(a)),
                                 std::istreambuf_iterator<char>());
        EXPECT_EQ(bytesA, bytesB) << shardLabel;
        EXPECT_EQ(streaming.report().reduceShardsUsed,
                  resolvedReduceShards(config))
            << shardLabel;
      }
      config.reduceShards = 0;
      config.mergeRowsPerShard = 0;
    }
  }
  config.memoryBudgetBytes = 0;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SynthesisFuzz,
                         ::testing::Range<std::uint64_t>(0, 100));

/// Process-transport column: the same differential check with the mp
/// backend's workers in separate OS processes. A seed subset — each case
/// forks real workers, so the full 100-seed sweep would dominate the
/// suite's wall clock for no added coverage of the (seed-independent)
/// transport.
class SynthesisFuzzProcess : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SynthesisFuzzProcess, ProcessTransportEqualsBruteForce) {
  const std::uint64_t seed = GetParam();
  const FuzzCase fuzz = makeCase(seed);
  const auto reference =
      bruteForceAdjacency(fuzz.events, fuzz.windowStart, fuzz.windowEnd);
  ScratchDir scratch("chisimnet_fuzz_proc_" + std::to_string(seed));
  const int fileCount = 3 + static_cast<int>(seed % 3);
  const auto files =
      writePlacePartitionedFiles(fuzz.events, scratch.path(), fileCount);

  SynthesisConfig config;
  config.windowStart = fuzz.windowStart;
  config.windowEnd = fuzz.windowEnd;
  config.backend = SynthesisBackend::kMessagePassing;
  config.transport = MpTransport::kProcess;
  config.workers = 2 + static_cast<unsigned>(seed % 2);
  config.filesPerBatch = seed % 3;
  for (const bool prefetch : {false, true}) {
    config.prefetch = prefetch;
    NetworkSynthesizer synthesizer(config);
    expectEqualAdjacency(
        synthesizer.synthesizeAdjacency(files), reference,
        "process seed " + std::to_string(seed) +
            (prefetch ? " prefetch" : " serial"));
    EXPECT_EQ(synthesizer.report().ranksLost, 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SynthesisFuzzProcess,
                         ::testing::Range<std::uint64_t>(0, 8));

/// Satellite: filesPerBatch in {1, 3, all} over the same on-disk log set
/// must produce identical adjacencies and consistent report counters.
TEST(SynthesisBatching, BatchSizeInvariantOverSameLogSet) {
  for (const std::uint64_t seed : {3u, 11u, 27u}) {
    const FuzzCase fuzz = makeCase(seed + 1000);
    ScratchDir scratch("chisimnet_batch_eq_" + std::to_string(seed));
    const auto files =
        writePlacePartitionedFiles(fuzz.events, scratch.path(), 6);

    SynthesisConfig config;
    config.windowStart = fuzz.windowStart;
    config.windowEnd = fuzz.windowEnd;
    config.workers = 3;

    config.filesPerBatch = 0;  // all files, one batch
    NetworkSynthesizer whole(config);
    const auto wholeAdjacency = whole.synthesizeAdjacency(files);
    const SynthesisReport wholeReport = whole.report();
    EXPECT_EQ(wholeReport.batches, 1u);

    for (const SynthesisBackend backend :
         {SynthesisBackend::kSharedMemory,
          SynthesisBackend::kMessagePassing}) {
      for (const std::size_t filesPerBatch :
           {std::size_t{1}, std::size_t{3}}) {
        for (const bool prefetch : {false, true}) {
          config.backend = backend;
          config.filesPerBatch = filesPerBatch;
          config.prefetch = prefetch;
          NetworkSynthesizer batched(config);
          const auto adjacency = batched.synthesizeAdjacency(files);
          const SynthesisReport& report = batched.report();
          const std::string label =
              "seed " + std::to_string(seed) + " " + backendName(backend) +
              " filesPerBatch " + std::to_string(filesPerBatch) +
              (prefetch ? " prefetch" : "");
          expectEqualAdjacency(adjacency, wholeAdjacency, label);
          EXPECT_EQ(report.logEntriesLoaded, wholeReport.logEntriesLoaded)
              << label;
          EXPECT_EQ(report.placesProcessed, wholeReport.placesProcessed)
              << label;
          EXPECT_EQ(report.collocationNnz, wholeReport.collocationNnz)
              << label;
          EXPECT_EQ(report.edges, wholeReport.edges) << label;
          EXPECT_EQ(report.batches, (files.size() + filesPerBatch - 1) /
                                        filesPerBatch)
              << label;
        }
      }
    }
  }
}

/// Degrade-mode differential check: corrupt one input file per seed and
/// require the degraded run to equal the brute force over exactly the
/// surviving files — on both backends, serial and prefetched — with the
/// quarantine report naming the corrupted file.
TEST(SynthesisBatching, DegradedRunEqualsBruteForceOverSurvivors) {
  for (const std::uint64_t seed : {2u, 19u, 38u}) {
    const FuzzCase fuzz = makeCase(seed + 5000);
    ScratchDir scratch("chisimnet_fuzz_degrade_" + std::to_string(seed));
    const int fileCount = 4 + static_cast<int>(seed % 3);
    auto files =
        writePlacePartitionedFiles(fuzz.events, scratch.path(), fileCount);
    const std::size_t victim = seed % files.size();
    // Halving the file destroys the footer, so the whole file quarantines.
    std::filesystem::resize_file(files[victim],
                                 std::filesystem::file_size(files[victim]) /
                                     2);
    std::vector<std::filesystem::path> survivors = files;
    survivors.erase(survivors.begin() +
                    static_cast<std::ptrdiff_t>(victim));
    const auto reference = bruteForceAdjacency(
        elog::loadEvents(survivors, fuzz.windowStart, fuzz.windowEnd),
        fuzz.windowStart, fuzz.windowEnd);

    SynthesisConfig config;
    config.windowStart = fuzz.windowStart;
    config.windowEnd = fuzz.windowEnd;
    config.workers = 3;
    config.filesPerBatch = 1 + seed % 2;
    config.faultPolicy = FaultPolicy::kDegrade;
    for (const SynthesisBackend backend :
         {SynthesisBackend::kSharedMemory,
          SynthesisBackend::kMessagePassing}) {
      for (const bool prefetch : {false, true}) {
        config.backend = backend;
        config.prefetch = prefetch;
        NetworkSynthesizer synthesizer(config);
        const auto adjacency = synthesizer.synthesizeAdjacency(files);
        const std::string label =
            "degrade seed " + std::to_string(seed) + " " +
            backendName(backend) + (prefetch ? " prefetch" : " serial");
        expectEqualAdjacency(adjacency, reference, label);
        const SynthesisReport& report = synthesizer.report();
        ASSERT_EQ(report.quarantined.size(), 1u) << label;
        EXPECT_EQ(report.quarantined[0].file, files[victim]) << label;
        EXPECT_FALSE(report.quarantined[0].reason.empty()) << label;
      }
    }
  }
}

/// A decode failure inside the background loader must surface on the
/// consumer thread as a normal exception, not crash the process.
TEST(SynthesisBatching, CorruptFileSurfacesAsException) {
  const FuzzCase fuzz = makeCase(77);
  ScratchDir scratch("chisimnet_fuzz_corrupt");
  auto files = writePlacePartitionedFiles(fuzz.events, scratch.path(), 3);
  {
    std::ofstream corrupt(files[1], std::ios::binary | std::ios::trunc);
    corrupt << "not a clg5 file";
  }
  SynthesisConfig config;
  config.windowStart = fuzz.windowStart;
  config.windowEnd = fuzz.windowEnd;
  config.workers = 2;
  config.filesPerBatch = 1;
  for (const bool prefetch : {false, true}) {
    config.prefetch = prefetch;
    NetworkSynthesizer synthesizer(config);
    EXPECT_THROW(synthesizer.synthesizeAdjacency(files), std::exception)
        << (prefetch ? "prefetch" : "serial");
  }
}

}  // namespace
}  // namespace chisimnet::net

/// The process-transport cases re-enter this binary for their workers, so
/// the worker hook must run before gtest takes over.
int main(int argc, char** argv) {
  if (const auto workerExit = chisimnet::net::maybeRunSynthesisWorker()) {
    return *workerExit;
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
