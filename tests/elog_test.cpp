#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "chisimnet/elog/clg5.hpp"
#include "chisimnet/elog/event_logger.hpp"
#include "chisimnet/elog/log_directory.hpp"
#include "chisimnet/util/rng.hpp"

namespace chisimnet::elog {
namespace {

using table::Event;

class ElogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("chisimnet_elog_" +
            std::to_string(::testing::UnitTest::GetInstance()
                               ->current_test_info()
                               ->line()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path file(const std::string& name) const {
    return dir_ / name;
  }

  std::filesystem::path dir_;
};

std::vector<Event> randomEvents(std::uint64_t seed, std::size_t count,
                                table::Hour horizon = 168) {
  util::Rng rng(seed);
  std::vector<Event> events;
  events.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto start = static_cast<table::Hour>(rng.uniformBelow(horizon));
    events.push_back(Event{
        start, start + 1 + static_cast<table::Hour>(rng.uniformBelow(10)),
        static_cast<table::PersonId>(rng.uniformBelow(1000)),
        static_cast<table::ActivityId>(rng.uniformBelow(9)),
        static_cast<table::PlaceId>(rng.uniformBelow(500))});
  }
  return events;
}

TEST_F(ElogTest, WriterReaderRoundTrip) {
  const auto events = randomEvents(1, 100);
  {
    ChunkedLogWriter writer(file("a.clg5"));
    writer.writeChunk(events);
    writer.close();
  }
  ChunkedLogReader reader(file("a.clg5"));
  EXPECT_EQ(reader.chunks().size(), 1u);
  EXPECT_EQ(reader.totalEntries(), 100u);
  EXPECT_EQ(reader.readAll(), events);
}

TEST_F(ElogTest, MultipleChunksPreserveOrder) {
  const auto all = randomEvents(2, 250);
  {
    ChunkedLogWriter writer(file("b.clg5"));
    writer.writeChunk(std::span<const Event>(all).subspan(0, 100));
    writer.writeChunk(std::span<const Event>(all).subspan(100, 100));
    writer.writeChunk(std::span<const Event>(all).subspan(200, 50));
    writer.close();
  }
  ChunkedLogReader reader(file("b.clg5"));
  EXPECT_EQ(reader.chunks().size(), 3u);
  EXPECT_EQ(reader.readAll(), all);
  EXPECT_EQ(reader.readChunk(1),
            std::vector<Event>(all.begin() + 100, all.begin() + 200));
}

TEST_F(ElogTest, EmptyChunkIgnored) {
  ChunkedLogWriter writer(file("c.clg5"));
  writer.writeChunk({});
  writer.close();
  ChunkedLogReader reader(file("c.clg5"));
  EXPECT_EQ(reader.chunks().size(), 0u);
  EXPECT_TRUE(reader.readAll().empty());
}

TEST_F(ElogTest, EntryIs20BytesOnDisk) {
  const auto events = randomEvents(3, 1000);
  std::uint64_t bytes = 0;
  {
    ChunkedLogWriter writer(file("d.clg5"));
    writer.writeChunk(events);
    writer.close();
    bytes = writer.bytesWritten();
  }
  // Paper §III: 20 bytes per entry. Header+chunk overhead is constant.
  const std::uint64_t payload = 1000 * 20;
  EXPECT_GE(bytes, payload);
  EXPECT_LE(bytes, payload + 64);
  // The real file includes the footer too.
  EXPECT_GT(std::filesystem::file_size(file("d.clg5")), payload);
}

TEST_F(ElogTest, CloseIsIdempotent) {
  ChunkedLogWriter writer(file("e.clg5"));
  writer.writeChunk(randomEvents(4, 10));
  writer.close();
  writer.close();
  EXPECT_THROW(writer.writeChunk(randomEvents(5, 1)), std::invalid_argument);
}

TEST_F(ElogTest, DestructorFinalizesFile) {
  {
    ChunkedLogWriter writer(file("f.clg5"));
    writer.writeChunk(randomEvents(6, 20));
    // no explicit close
  }
  ChunkedLogReader reader(file("f.clg5"));
  EXPECT_EQ(reader.totalEntries(), 20u);
}

TEST_F(ElogTest, CorruptPayloadDetected) {
  {
    ChunkedLogWriter writer(file("g.clg5"));
    writer.writeChunk(randomEvents(7, 50));
    writer.close();
  }
  // Flip one payload byte (past the 20-byte file header + 24-byte chunk
  // header).
  {
    std::fstream stream(file("g.clg5"),
                        std::ios::binary | std::ios::in | std::ios::out);
    stream.seekp(50);
    char byte = 0;
    stream.read(&byte, 1);
    stream.seekp(40);
    byte = static_cast<char>(byte ^ 0x01);
    stream.write(&byte, 1);
  }
  ChunkedLogReader reader(file("g.clg5"));
  EXPECT_THROW(reader.readChunk(0), std::runtime_error);
}

TEST_F(ElogTest, TruncatedFileDetected) {
  {
    ChunkedLogWriter writer(file("h.clg5"));
    writer.writeChunk(randomEvents(8, 50));
    writer.close();
  }
  const auto size = std::filesystem::file_size(file("h.clg5"));
  std::filesystem::resize_file(file("h.clg5"), size - 8);
  EXPECT_THROW(ChunkedLogReader{file("h.clg5")}, std::runtime_error);
}

TEST_F(ElogTest, NotAClg5FileRejected) {
  {
    std::ofstream out(file("i.clg5"));
    out << "definitely not a log";
  }
  EXPECT_THROW(ChunkedLogReader{file("i.clg5")}, std::runtime_error);
}

TEST_F(ElogTest, ReadOverlappingFiltersAndPushesDown) {
  // Chunk 1 covers hours [0,50), chunk 2 covers [100,150).
  std::vector<Event> early;
  std::vector<Event> late;
  for (table::Hour h = 0; h < 50; h += 2) {
    early.push_back(Event{h, h + 2, 1, 0, 1});
    late.push_back(Event{static_cast<table::Hour>(h + 100),
                         static_cast<table::Hour>(h + 102), 2, 0, 2});
  }
  {
    ChunkedLogWriter writer(file("j.clg5"));
    writer.writeChunk(early);
    writer.writeChunk(late);
    writer.close();
  }
  ChunkedLogReader reader(file("j.clg5"));

  const auto hitsLate = reader.readOverlapping(120, 130);
  EXPECT_EQ(reader.lastChunksRead(), 1u);  // early chunk skipped entirely
  for (const Event& event : hitsLate) {
    EXPECT_TRUE(table::overlapsWindow(event, 120, 130));
    EXPECT_EQ(event.person, 2u);
  }

  const auto hitsNone = reader.readOverlapping(60, 90);
  EXPECT_TRUE(hitsNone.empty());
  EXPECT_EQ(reader.lastChunksRead(), 0u);

  const auto hitsAll = reader.readOverlapping(0, 200);
  EXPECT_EQ(hitsAll.size(), early.size() + late.size());
  EXPECT_EQ(reader.lastChunksRead(), 2u);
}

TEST_F(ElogTest, PackedCompressionRoundTrip) {
  const auto events = randomEvents(20, 5000);
  {
    ChunkedLogWriter writer(file("p.clg5"), LogCompression::kPacked);
    writer.writeChunk(std::span<const Event>(events).subspan(0, 2500));
    writer.writeChunk(std::span<const Event>(events).subspan(2500));
    writer.close();
  }
  ChunkedLogReader reader(file("p.clg5"));
  EXPECT_EQ(reader.readAll(), events);
}

TEST_F(ElogTest, PackedCompressionShrinksRealisticLogs) {
  // Realistic shape: entries sorted by end time (stints are logged when
  // they end), bounded activity ids — the packed encoding's sweet spot.
  auto events = randomEvents(21, 20000);
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    return a.end < b.end;
  });
  std::uint64_t rawBytes = 0;
  std::uint64_t packedBytes = 0;
  {
    ChunkedLogWriter writer(file("raw.clg5"), LogCompression::kRaw);
    writer.writeChunk(events);
    writer.close();
    rawBytes = writer.bytesWritten();
  }
  {
    ChunkedLogWriter writer(file("packed.clg5"), LogCompression::kPacked);
    writer.writeChunk(events);
    writer.close();
    packedBytes = writer.bytesWritten();
  }
  EXPECT_LT(packedBytes * 2, rawBytes) << "expected at least 2x compression";
  // Both decode to the same entries.
  ChunkedLogReader rawReader(file("raw.clg5"));
  ChunkedLogReader packedReader(file("packed.clg5"));
  EXPECT_EQ(rawReader.readAll(), packedReader.readAll());
}

TEST_F(ElogTest, PackedWindowPushdownStillWorks) {
  std::vector<Event> events;
  for (table::Hour h = 0; h < 100; ++h) {
    events.push_back(Event{h, h + 1, h, 0, 1});
  }
  {
    ChunkedLogWriter writer(file("pw.clg5"), LogCompression::kPacked);
    writer.writeChunk(std::span<const Event>(events).subspan(0, 50));
    writer.writeChunk(std::span<const Event>(events).subspan(50));
    writer.close();
  }
  ChunkedLogReader reader(file("pw.clg5"));
  const auto hits = reader.readOverlapping(60, 70);
  EXPECT_EQ(reader.lastChunksRead(), 1u);
  EXPECT_EQ(hits.size(), 10u);
}

TEST_F(ElogTest, PackedCorruptionDetected) {
  {
    ChunkedLogWriter writer(file("pc.clg5"), LogCompression::kPacked);
    writer.writeChunk(randomEvents(22, 500));
    writer.close();
  }
  {
    std::fstream stream(file("pc.clg5"),
                        std::ios::binary | std::ios::in | std::ios::out);
    stream.seekp(60);
    char byte = 0;
    stream.read(&byte, 1);
    stream.seekp(60);
    byte = static_cast<char>(byte ^ 0x40);
    stream.write(&byte, 1);
  }
  ChunkedLogReader reader(file("pc.clg5"));
  EXPECT_THROW(reader.readChunk(0), std::runtime_error);
}

TEST_F(ElogTest, ChunkIndexRecordsTimeRanges) {
  {
    ChunkedLogWriter writer(file("k.clg5"));
    writer.writeChunk(std::vector<Event>{{5, 9, 1, 0, 1}, {7, 20, 2, 0, 1}});
    writer.close();
  }
  ChunkedLogReader reader(file("k.clg5"));
  ASSERT_EQ(reader.chunks().size(), 1u);
  EXPECT_EQ(reader.chunks()[0].minStart, 5u);
  EXPECT_EQ(reader.chunks()[0].maxEnd, 20u);
}

class CacheSweep : public ElogTest,
                   public ::testing::WithParamInterface<std::size_t> {};

TEST_P(CacheSweep, LoggerFlushesExactlyOnCacheBoundaries) {
  const std::size_t cacheSize = GetParam();
  const auto events = randomEvents(9, 1003);
  const auto path = file("sweep.clg5");
  {
    EventLogger logger(std::make_unique<ChunkedLogWriter>(path), cacheSize);
    for (const Event& event : events) {
      logger.log(event);
    }
    EXPECT_EQ(logger.entriesLogged(), events.size());
    logger.close();
    // ceil(1003 / cacheSize) flushes.
    EXPECT_EQ(logger.flushCount(), (events.size() + cacheSize - 1) / cacheSize);
  }
  ChunkedLogReader reader(path);
  EXPECT_EQ(reader.readAll(), events);
}

INSTANTIATE_TEST_SUITE_P(CacheSizes, CacheSweep,
                         ::testing::Values(1, 7, 100, 1000, 1003, 5000));

TEST_F(ElogTest, LoggerExplicitFlush) {
  EventLogger logger(std::make_unique<ChunkedLogWriter>(file("l.clg5")), 100);
  logger.log(Event{0, 1, 1, 0, 1});
  EXPECT_EQ(logger.cachedEntries(), 1u);
  logger.flush();
  EXPECT_EQ(logger.cachedEntries(), 0u);
  EXPECT_EQ(logger.flushCount(), 1u);
  logger.flush();  // empty flush is a no-op
  EXPECT_EQ(logger.flushCount(), 1u);
  logger.close();
}

TEST_F(ElogTest, LoggerRejectsUseAfterClose) {
  EventLogger logger(std::make_unique<ChunkedLogWriter>(file("m.clg5")), 10);
  logger.close();
  EXPECT_THROW(logger.log(Event{0, 1, 1, 0, 1}), std::invalid_argument);
}

TEST_F(ElogTest, LogDirectoryNamingAndListing) {
  EXPECT_EQ(logFilePath(dir_, 3).filename(), "rank_0003.clg5");
  for (int rank : {2, 0, 1}) {
    ChunkedLogWriter writer(logFilePath(dir_, rank));
    writer.writeChunk(randomEvents(10 + rank, 5));
    writer.close();
  }
  const auto files = listLogFiles(dir_);
  ASSERT_EQ(files.size(), 3u);
  EXPECT_EQ(files[0].filename(), "rank_0000.clg5");
  EXPECT_EQ(files[2].filename(), "rank_0002.clg5");
}

TEST_F(ElogTest, ListLogFilesMissingDirectory) {
  EXPECT_TRUE(listLogFiles(dir_ / "nope").empty());
}

TEST_F(ElogTest, LoadEventsMergesFilesWithWindow) {
  {
    ChunkedLogWriter writer(logFilePath(dir_, 0));
    writer.writeChunk(std::vector<Event>{{0, 5, 1, 0, 1}, {100, 105, 1, 0, 1}});
    writer.close();
  }
  {
    ChunkedLogWriter writer(logFilePath(dir_, 1));
    writer.writeChunk(std::vector<Event>{{2, 4, 2, 0, 2}});
    writer.close();
  }
  const auto files = listLogFiles(dir_);
  const table::EventTable all = loadEvents(files, 0, 0xFFFFFFFFu);
  EXPECT_EQ(all.size(), 3u);
  const table::EventTable window = loadEvents(files, 0, 10);
  EXPECT_EQ(window.size(), 2u);
  EXPECT_GT(totalFileBytes(files), 0u);
}

}  // namespace
}  // namespace chisimnet::elog
