#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "chisimnet/graph/community.hpp"
#include "chisimnet/graph/generators.hpp"
#include "chisimnet/util/rng.hpp"

namespace chisimnet::graph {
namespace {

/// Planted-partition graph: `blocks` cliques of `blockSize` vertices with
/// heavy internal weights, chained by single light bridge edges.
Graph plantedBlocks(unsigned blocks, unsigned blockSize, Weight internal = 10,
                    Weight bridge = 1) {
  std::vector<Edge> edges;
  const Vertex n = blocks * blockSize;
  for (unsigned b = 0; b < blocks; ++b) {
    const Vertex base = b * blockSize;
    for (Vertex u = 0; u < blockSize; ++u) {
      for (Vertex v = u + 1; v < blockSize; ++v) {
        edges.push_back(Edge{base + u, base + v, internal});
      }
    }
    if (b + 1 < blocks) {
      edges.push_back(Edge{base, base + blockSize, bridge});
    }
  }
  return Graph::fromEdges(edges, n);
}

std::uint32_t blockOf(Vertex v, unsigned blockSize) { return v / blockSize; }

TEST(Modularity, PerfectPartitionScoresHigh) {
  const Graph graph = plantedBlocks(4, 8);
  std::vector<std::uint32_t> truth(graph.vertexCount());
  for (Vertex v = 0; v < graph.vertexCount(); ++v) {
    truth[v] = blockOf(v, 8);
  }
  const double q = modularity(graph, truth);
  EXPECT_GT(q, 0.6);
  // All-in-one partition scores 0 by definition.
  const std::vector<std::uint32_t> single(graph.vertexCount(), 0);
  EXPECT_NEAR(modularity(graph, single), 0.0, 1e-12);
  // The true partition beats a degenerate singleton partition.
  std::vector<std::uint32_t> singletons(graph.vertexCount());
  std::iota(singletons.begin(), singletons.end(), 0u);
  EXPECT_GT(q, modularity(graph, singletons));
}

TEST(Modularity, SizeMismatchRejected) {
  const Graph graph = plantedBlocks(2, 4);
  const std::vector<std::uint32_t> wrong(3, 0);
  EXPECT_THROW(modularity(graph, wrong), std::invalid_argument);
}

TEST(CompactLabels, DensifiesArbitraryLabels) {
  std::vector<std::uint32_t> labels{9, 4, 9, 100, 4};
  const std::uint32_t count = compactLabels(labels);
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(labels[0], labels[2]);
  EXPECT_EQ(labels[1], labels[4]);
  for (std::uint32_t label : labels) {
    EXPECT_LT(label, 3u);
  }
}

/// Fraction of vertex pairs whose "same community" relation matches the
/// planted truth (Rand index, sampled exactly for these small graphs).
double randIndex(std::span<const std::uint32_t> found, unsigned blockSize) {
  std::uint64_t agree = 0;
  std::uint64_t total = 0;
  for (Vertex u = 0; u < found.size(); ++u) {
    for (Vertex v = u + 1; v < found.size(); ++v) {
      const bool sameTruth = blockOf(u, blockSize) == blockOf(v, blockSize);
      const bool sameFound = found[u] == found[v];
      agree += sameTruth == sameFound ? 1 : 0;
      ++total;
    }
  }
  return static_cast<double>(agree) / static_cast<double>(total);
}

class CommunitySeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CommunitySeeds, LabelPropagationRecoversPlantedBlocks) {
  const Graph graph = plantedBlocks(6, 10);
  util::Rng rng(GetParam());
  const CommunityAssignment result = labelPropagation(graph, rng);
  EXPECT_GE(result.communityCount, 6u);  // bridges may split, never merge fully
  EXPECT_GT(randIndex(result.communityOf, 10), 0.95);
  EXPECT_GT(result.modularity, 0.5);
}

TEST_P(CommunitySeeds, LouvainRecoversPlantedBlocks) {
  const Graph graph = plantedBlocks(6, 10);
  util::Rng rng(GetParam());
  const CommunityAssignment result = louvain(graph, rng);
  EXPECT_EQ(result.communityCount, 6u);
  EXPECT_GT(randIndex(result.communityOf, 10), 0.99);
  EXPECT_GT(result.modularity, 0.6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CommunitySeeds,
                         ::testing::Values(1, 2, 3, 17, 99));

TEST(Louvain, ModularityAtLeastLabelPropagation) {
  // Louvain optimizes modularity directly; on a noisy graph it should not
  // do worse than label propagation.
  util::Rng genRng(5);
  const Graph graph = wattsStrogatz(300, 5, 0.2, genRng);
  util::Rng lpRng(7);
  util::Rng louvainRng(7);
  const CommunityAssignment lp = labelPropagation(graph, lpRng);
  const CommunityAssignment lv = louvain(graph, louvainRng);
  EXPECT_GE(lv.modularity + 1e-9, lp.modularity);
  EXPECT_GT(lv.modularity, 0.0);
}

TEST(Louvain, EmptyAndEdgelessGraphs) {
  const Graph empty;
  util::Rng rng(1);
  const CommunityAssignment none = louvain(empty, rng);
  EXPECT_EQ(none.communityCount, 0u);

  const Graph isolated = Graph::fromEdges({}, 5);
  const CommunityAssignment singles = louvain(isolated, rng);
  EXPECT_EQ(singles.communityCount, 5u);
}

TEST(LabelPropagation, SizesSumToVertexCount) {
  const Graph graph = plantedBlocks(3, 7);
  util::Rng rng(11);
  const CommunityAssignment result = labelPropagation(graph, rng);
  const auto sizes = result.sizes();
  std::uint64_t total = 0;
  for (std::uint64_t size : sizes) {
    total += size;
  }
  EXPECT_EQ(total, graph.vertexCount());
}

TEST(Louvain, WeightsMatter) {
  // Two triangles bridged by a HEAVY edge: with the bridge dominating,
  // Louvain should merge everything; with a light bridge it should split.
  const auto build = [](Weight bridgeWeight) {
    std::vector<Edge> edges{{0, 1, 2}, {1, 2, 2}, {0, 2, 2},
                            {3, 4, 2}, {4, 5, 2}, {3, 5, 2},
                            {2, 3, bridgeWeight}};
    return Graph::fromEdges(edges, 6);
  };
  util::Rng rng(3);
  const CommunityAssignment split = louvain(build(1), rng);
  EXPECT_EQ(split.communityCount, 2u);
  EXPECT_NE(split.communityOf[0], split.communityOf[5]);
}

}  // namespace
}  // namespace chisimnet::graph
