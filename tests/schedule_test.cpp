#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "chisimnet/pop/population.hpp"
#include "chisimnet/pop/schedule.hpp"

namespace chisimnet::pop {
namespace {

class ScheduleTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    PopulationConfig config;
    config.personCount = 10000;
    config.seed = 99;
    population_ = new SyntheticPopulation(SyntheticPopulation::generate(config));
    generator_ = new ScheduleGenerator(*population_, 555);
  }
  static void TearDownTestSuite() {
    delete generator_;
    delete population_;
    generator_ = nullptr;
    population_ = nullptr;
  }

  static SyntheticPopulation* population_;
  static ScheduleGenerator* generator_;
};

SyntheticPopulation* ScheduleTest::population_ = nullptr;
ScheduleGenerator* ScheduleTest::generator_ = nullptr;

TEST_F(ScheduleTest, CoversWeekContiguously) {
  for (PersonId person : {PersonId{0}, PersonId{123}, PersonId{9999}}) {
    for (std::uint32_t week : {0u, 1u, 5u}) {
      const auto schedule = generator_->weeklySchedule(person, week);
      ASSERT_FALSE(schedule.empty());
      EXPECT_EQ(schedule.front().start, week * kHoursPerWeek);
      EXPECT_EQ(schedule.back().end, (week + 1) * kHoursPerWeek);
      for (std::size_t i = 1; i < schedule.size(); ++i) {
        EXPECT_EQ(schedule[i].start, schedule[i - 1].end) << "gap at stint " << i;
      }
    }
  }
}

TEST_F(ScheduleTest, AdjacentStintsDiffer) {
  for (PersonId person = 0; person < 200; ++person) {
    const auto schedule = generator_->weeklySchedule(person, 0);
    for (std::size_t i = 1; i < schedule.size(); ++i) {
      const bool same = schedule[i].activity == schedule[i - 1].activity &&
                        schedule[i].place == schedule[i - 1].place;
      EXPECT_FALSE(same) << "person " << person << " stint " << i;
    }
  }
}

TEST_F(ScheduleTest, DeterministicPerPersonWeek) {
  const auto a = generator_->weeklySchedule(42, 3);
  const auto b = generator_->weeklySchedule(42, 3);
  EXPECT_EQ(a, b);
  // A second generator with the same seed agrees too.
  const ScheduleGenerator other(*population_, 555);
  EXPECT_EQ(other.weeklySchedule(42, 3), a);
}

TEST_F(ScheduleTest, WeeksVaryForSamePerson) {
  int differing = 0;
  for (PersonId person = 0; person < 50; ++person) {
    const auto w0 = generator_->weeklySchedule(person, 0);
    const auto w1 = generator_->weeklySchedule(person, 1);
    // Compare relative schedules (shift w1 back by a week).
    bool same = w0.size() == w1.size();
    if (same) {
      for (std::size_t i = 0; i < w0.size(); ++i) {
        if (w0[i].place != w1[i].place ||
            w0[i].start + kHoursPerWeek != w1[i].start) {
          same = false;
          break;
        }
      }
    }
    differing += same ? 0 : 1;
  }
  EXPECT_GT(differing, 10);
}

TEST_F(ScheduleTest, EveryoneHomeAt4am) {
  // 4am on Tuesday (hour 28): only night-shift workers, hospital patients
  // and the institutionalized are away from home.
  int away = 0;
  int checked = 0;
  for (PersonId person = 0; person < 2000; ++person) {
    const auto schedule = generator_->weeklySchedule(person, 0);
    for (const ScheduleEntry& stint : schedule) {
      if (stint.start <= 28 && 28 < stint.end) {
        ++checked;
        if (stint.activity != activity::kHome &&
            stint.activity != activity::kInstitution) {
          ++away;
        }
      }
    }
  }
  EXPECT_EQ(checked, 2000);
  EXPECT_LT(away, 200);  // ~10% night shift of the employed, plus patients
}

TEST_F(ScheduleTest, StudentsInClassroomWeekdayMorning) {
  int checked = 0;
  for (const Person& person : population_->persons()) {
    if (!person.isStudent()) {
      continue;
    }
    const auto schedule = generator_->weeklySchedule(person.id, 0);
    // Hospital stays legitimately override school hours; skip those weeks.
    const bool hospitalized =
        std::any_of(schedule.begin(), schedule.end(), [](const auto& stint) {
          return stint.activity == activity::kHospital;
        });
    if (hospitalized) {
      continue;
    }
    // Hour 9 on Monday must be the classroom (unless it is a sick day
    // spent at home); hour 12 the school common.
    bool sickMonday = false;
    for (const ScheduleEntry& stint : schedule) {
      if (stint.start <= 9 && 9 < stint.end &&
          stint.activity == activity::kHome) {
        sickMonday = true;
      }
    }
    if (sickMonday) {
      continue;
    }
    for (const ScheduleEntry& stint : schedule) {
      if (stint.start <= 9 && 9 < stint.end) {
        EXPECT_EQ(stint.activity, activity::kSchool);
        EXPECT_EQ(stint.place, person.classroom);
      }
      if (stint.start <= 12 && 12 < stint.end) {
        EXPECT_EQ(stint.activity, activity::kSchoolLunch);
        EXPECT_EQ(stint.place, person.schoolCommon);
      }
    }
    if (++checked > 500) {
      break;
    }
  }
  EXPECT_GT(checked, 100);
}

TEST_F(ScheduleTest, InstitutionalizedStayAtInstitution) {
  int checked = 0;
  for (const Person& person : population_->persons()) {
    if (!person.isInstitutionalized()) {
      continue;
    }
    const bool prison =
        population_->place(person.institution).type == PlaceType::kPrison;
    const auto schedule = generator_->weeklySchedule(person.id, 0);
    for (const ScheduleEntry& stint : schedule) {
      if (prison) {
        EXPECT_EQ(stint.place, person.institution);
        EXPECT_EQ(stint.activity, activity::kInstitution);
      } else if (stint.activity != activity::kErrand) {
        EXPECT_EQ(stint.place, person.institution);
      }
    }
    ++checked;
  }
  EXPECT_GT(checked, 0);
}

TEST_F(ScheduleTest, EmployedWorkOnWeekdays) {
  int checked = 0;
  int workStints = 0;
  for (const Person& person : population_->persons()) {
    if (!person.isEmployed()) {
      continue;
    }
    const auto schedule = generator_->weeklySchedule(person.id, 0);
    for (const ScheduleEntry& stint : schedule) {
      if (stint.activity == activity::kWork) {
        EXPECT_EQ(stint.place, person.workplace);
        ++workStints;
      }
    }
    if (++checked > 300) {
      break;
    }
  }
  // Nearly every employed person has 5 weekday work stints (hospital stays
  // can preempt a few).
  EXPECT_GT(workStints, checked * 4);
}

TEST_F(ScheduleTest, ActivityChangesPerDayNearPaperRate) {
  // Paper §III sizes the log assuming ~5 activity changes/person/day.
  double total = 0.0;
  const int sample = 2000;
  for (PersonId person = 0; person < sample; ++person) {
    total += generator_->activityChangesPerDay(person, 0);
  }
  const double average = total / sample;
  EXPECT_GT(average, 2.0);
  EXPECT_LT(average, 8.0);
}

TEST_F(ScheduleTest, ErrandsUseHoodShops) {
  int errands = 0;
  for (PersonId person = 0; person < 2000 && errands < 50; ++person) {
    const Person& info = population_->person(person);
    const auto schedule = generator_->weeklySchedule(person, 0);
    for (const ScheduleEntry& stint : schedule) {
      if (stint.activity == activity::kErrand) {
        const Place& place = population_->place(stint.place);
        EXPECT_EQ(place.type, PlaceType::kShop);
        EXPECT_EQ(place.neighborhood, info.neighborhood);
        ++errands;
      }
    }
  }
  EXPECT_GE(errands, 50);
}

TEST_F(ScheduleTest, OutOfRangePersonRejected) {
  EXPECT_THROW(generator_->weeklySchedule(10000000, 0), std::invalid_argument);
}

TEST_F(ScheduleTest, CoveringStintIndexMatchesLinearScan) {
  for (PersonId person : {PersonId{0}, PersonId{57}, PersonId{4096}}) {
    for (std::uint32_t week : {0u, 2u}) {
      const auto schedule = generator_->weeklySchedule(person, week);
      for (table::Hour now = week * kHoursPerWeek;
           now < (week + 1) * kHoursPerWeek; ++now) {
        std::size_t expected = 0;
        while (schedule[expected].end <= now) {
          ++expected;
        }
        EXPECT_EQ(coveringStintIndex(schedule, now), expected)
            << "person " << person << " hour " << now;
      }
    }
  }
}

TEST_F(ScheduleTest, CoveringStintIndexRejectsHourOutsideWeek) {
  const auto schedule = generator_->weeklySchedule(0, 0);
  EXPECT_THROW(coveringStintIndex(schedule, kHoursPerWeek),
               std::runtime_error);
}

TEST_F(ScheduleTest, PackedWeekRoundTripsWeeklySchedule) {
  for (PersonId person : {PersonId{0}, PersonId{991}, PersonId{9999}}) {
    for (std::uint32_t week : {0u, 3u}) {
      const auto schedule = generator_->weeklySchedule(person, week);
      const PackedWeek packed = generator_->packedWeek(person, week);
      ASSERT_EQ(packed.size(), schedule.size());
      for (std::size_t i = 0; i < schedule.size(); ++i) {
        EXPECT_EQ(packed.entry(i), schedule[i]) << "stint " << i;
      }
      // The packed covering search agrees with the unpacked one.
      for (table::Hour now = week * kHoursPerWeek;
           now < (week + 1) * kHoursPerWeek; now += 7) {
        EXPECT_EQ(packed.coveringIndex(now), coveringStintIndex(schedule, now));
      }
    }
  }
}

TEST_F(ScheduleTest, PackedWeekRejectsNonTilingStints) {
  // A gap between stints must be caught at construction.
  std::vector<PackedStint> stints;
  stints.push_back(PackedStint{0, 10, 0, 0, 1});
  stints.push_back(PackedStint{12, 168, 1, 0, 2});  // gap: 10 != 12
  EXPECT_THROW(PackedWeek(0, std::move(stints)), std::runtime_error);
}

TEST_F(ScheduleTest, StintCursorWalksAcrossWeeks) {
  // Resuming mid-week must land on the covering stint (regression for the
  // cursor cold-load), and advancing must replay the schedule exactly,
  // including week rollovers.
  for (PersonId person : {PersonId{3}, PersonId{777}}) {
    for (table::Hour start : {table::Hour{0}, table::Hour{13},
                              table::Hour{100}, table::Hour{167}}) {
      StintCursor cursor(*generator_, person, start);
      const auto week0 = generator_->weeklySchedule(person, start / kHoursPerWeek);
      EXPECT_EQ(cursor.current(),
                week0[coveringStintIndex(week0, start)]);

      // Walk two full weeks from the resume point, checking every stint
      // against the reference schedules.
      table::Hour now = cursor.current().end;
      for (int steps = 0; now < start + 2 * kHoursPerWeek; ++steps) {
        const ScheduleEntry next = cursor.advance(*generator_, now);
        const auto reference =
            generator_->weeklySchedule(person, now / kHoursPerWeek);
        EXPECT_EQ(next, reference[coveringStintIndex(reference, now)])
            << "person " << person << " start " << start << " step " << steps;
        now = next.end;
      }
    }
  }
}

TEST_F(ScheduleTest, StintCursorRejectsOffBoundaryAdvance) {
  StintCursor cursor(*generator_, 0, 0);
  const table::Hour wrong = cursor.current().end + 1;
  EXPECT_THROW(cursor.advance(*generator_, wrong), std::runtime_error);
}

}  // namespace
}  // namespace chisimnet::pop
