#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <unordered_map>

#include "chisimnet/abm/disease.hpp"
#include "chisimnet/abm/model.hpp"
#include "chisimnet/elog/extended.hpp"
#include "chisimnet/util/rng.hpp"

namespace chisimnet::abm {
namespace {

using elog::ExtendedEvent;
using elog::ExtendedLogReader;
using elog::ExtendedLogWriter;

class ExtendedLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("chisimnet_clx5_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::filesystem::path dir_;
};

std::vector<ExtendedEvent> randomExtended(std::uint64_t seed, std::size_t count,
                                          std::uint32_t extras) {
  util::Rng rng(seed);
  std::vector<ExtendedEvent> entries;
  for (std::size_t i = 0; i < count; ++i) {
    ExtendedEvent entry;
    const auto start = static_cast<table::Hour>(rng.uniformBelow(168));
    entry.base = table::Event{
        start, start + 1 + static_cast<table::Hour>(rng.uniformBelow(5)),
        static_cast<table::PersonId>(rng.uniformBelow(1000)),
        static_cast<table::ActivityId>(rng.uniformBelow(10)),
        static_cast<table::PlaceId>(rng.uniformBelow(400))};
    for (std::uint32_t e = 0; e < extras; ++e) {
      entry.extras.push_back(static_cast<std::uint32_t>(rng.uniformBelow(100)));
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

TEST_F(ExtendedLogTest, RoundTripWithExtras) {
  const auto entries = randomExtended(1, 200, 2);
  {
    ExtendedLogWriter writer(dir_ / "a.clx5", 2);
    writer.writeChunk(entries);
    writer.close();
  }
  ExtendedLogReader reader(dir_ / "a.clx5");
  EXPECT_EQ(reader.extraColumns(), 2u);
  EXPECT_EQ(reader.totalEntries(), 200u);
  EXPECT_EQ(reader.readAll(), entries);
}

TEST_F(ExtendedLogTest, ZeroExtraColumnsWorks) {
  const auto entries = randomExtended(2, 50, 0);
  {
    ExtendedLogWriter writer(dir_ / "b.clx5", 0);
    writer.writeChunk(entries);
    writer.close();
  }
  ExtendedLogReader reader(dir_ / "b.clx5");
  EXPECT_EQ(reader.extraColumns(), 0u);
  EXPECT_EQ(reader.readAll(), entries);
}

TEST_F(ExtendedLogTest, MismatchedExtrasRejected) {
  ExtendedLogWriter writer(dir_ / "c.clx5", 2);
  const auto wrong = randomExtended(3, 5, 1);
  EXPECT_THROW(writer.writeChunk(wrong), std::invalid_argument);
}

TEST_F(ExtendedLogTest, WindowPushdownFilters) {
  std::vector<ExtendedEvent> early = randomExtended(4, 50, 1);
  for (auto& entry : early) {
    entry.base.start %= 40;
    entry.base.end = entry.base.start + 2;
  }
  std::vector<ExtendedEvent> late = randomExtended(5, 50, 1);
  for (auto& entry : late) {
    entry.base.start = 100 + entry.base.start % 40;
    entry.base.end = entry.base.start + 2;
  }
  {
    ExtendedLogWriter writer(dir_ / "d.clx5", 1);
    writer.writeChunk(early);
    writer.writeChunk(late);
    writer.close();
  }
  ExtendedLogReader reader(dir_ / "d.clx5");
  const auto hits = reader.readOverlapping(100, 200);
  EXPECT_EQ(hits.size(), late.size());
  for (const ExtendedEvent& entry : hits) {
    EXPECT_GE(entry.base.start, 100u);
  }
}

TEST_F(ExtendedLogTest, TruncationDetected) {
  {
    ExtendedLogWriter writer(dir_ / "e.clx5", 1);
    writer.writeChunk(randomExtended(6, 20, 1));
    writer.close();
  }
  const auto size = std::filesystem::file_size(dir_ / "e.clx5");
  std::filesystem::resize_file(dir_ / "e.clx5", size - 4);
  EXPECT_THROW(ExtendedLogReader{dir_ / "e.clx5"}, std::runtime_error);
}

// ---- in-model SEIR ---------------------------------------------------------

class DiseaseModelTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pop::PopulationConfig config;
    config.personCount = 3000;
    config.seed = 808;
    population_ =
        new pop::SyntheticPopulation(pop::SyntheticPopulation::generate(config));
  }
  static void TearDownTestSuite() {
    delete population_;
    population_ = nullptr;
  }

  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("chisimnet_disease_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  DiseaseStats run(int ranks, double beta = 0.01, std::uint32_t weeks = 1) {
    std::filesystem::remove_all(dir_);
    ModelConfig config;
    config.logDirectory = dir_;
    config.rankCount = ranks;
    config.weeks = weeks;
    config.scheduleSeed = 321;
    DiseaseConfig disease;
    disease.beta = beta;
    disease.seedCount = 5;
    disease.seed = 777;
    DiseaseStats stats;
    runModel(*population_, config, disease, stats);
    return stats;
  }

  /// All CLX5 transitions across rank files, sorted canonically.
  std::vector<ExtendedEvent> loadTransitions() const {
    std::vector<ExtendedEvent> all;
    for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
      if (entry.path().extension() != ".clx5") {
        continue;
      }
      ExtendedLogReader reader(entry.path());
      auto chunk = reader.readAll();
      std::move(chunk.begin(), chunk.end(), std::back_inserter(all));
    }
    std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
      if (a.base != b.base) return a.base < b.base;
      return a.extras < b.extras;
    });
    return all;
  }

  static pop::SyntheticPopulation* population_;
  std::filesystem::path dir_;
};

pop::SyntheticPopulation* DiseaseModelTest::population_ = nullptr;

TEST_F(DiseaseModelTest, EpidemicSpreadsAndIsAccounted) {
  const DiseaseStats stats = run(2);
  EXPECT_EQ(stats.seeded, 5u);
  EXPECT_GT(stats.infections, 10u);
  EXPECT_GT(stats.peakInfectious, 0u);
  EXPECT_EQ(stats.finalStates.size(), population_->persons().size());

  // Accounting: everyone not susceptible was seeded or infected.
  std::uint64_t touched = 0;
  for (std::uint8_t state : stats.finalStates) {
    touched += state != static_cast<std::uint8_t>(SeirState::kSusceptible);
  }
  EXPECT_EQ(touched, stats.seeded + stats.infections);
  EXPECT_GT(stats.attackRate(), 0.0);
  EXPECT_LE(stats.attackRate(), 1.0);
}

TEST_F(DiseaseModelTest, RealizationIndependentOfRankCount) {
  const DiseaseStats one = run(1);
  const auto transitionsOne = loadTransitions();
  const DiseaseStats four = run(4);
  const auto transitionsFour = loadTransitions();

  EXPECT_EQ(one.infections, four.infections);
  EXPECT_EQ(one.hourlyInfectious, four.hourlyInfectious);
  EXPECT_EQ(one.finalStates, four.finalStates);
  EXPECT_EQ(transitionsOne, transitionsFour);
}

TEST_F(DiseaseModelTest, HigherBetaInfectsMore) {
  const DiseaseStats mild = run(2, 0.001);
  const DiseaseStats severe = run(2, 0.05);
  EXPECT_GT(severe.infections, mild.infections);
}

TEST_F(DiseaseModelTest, ZeroBetaOnlySeedsProgress) {
  const DiseaseStats stats = run(2, 0.0, 2);
  EXPECT_EQ(stats.infections, 0u);
  EXPECT_EQ(stats.seeded, 5u);
  // Seeds recover after latent+infectious hours.
  EXPECT_EQ(stats.recovered, 5u);
  EXPECT_EQ(stats.peakInfectious, 5u);
}

TEST_F(DiseaseModelTest, TransitionLogSupportsExactContactTracing) {
  run(3);
  const auto transitions = loadTransitions();
  ASSERT_FALSE(transitions.empty());

  // Build the infection forest from the log.
  std::unordered_map<std::uint32_t, std::uint32_t> infectedBy;
  std::vector<std::uint32_t> seeds;
  for (const ExtendedEvent& entry : transitions) {
    const auto newState = static_cast<SeirState>(entry.extras[0]);
    if (newState == SeirState::kExposed) {
      ASSERT_NE(entry.extras[1], kNoInfector);
      infectedBy[entry.base.person] = entry.extras[1];
    } else if (newState == SeirState::kInfectious && entry.base.start == 0) {
      seeds.push_back(entry.base.person);
    }
  }
  EXPECT_EQ(seeds.size(), 5u);

  // Every case traces back to a seed in finitely many hops.
  std::size_t traced = 0;
  for (const auto& [person, infector] : infectedBy) {
    std::uint32_t cursor = person;
    int hops = 0;
    while (infectedBy.contains(cursor)) {
      cursor = infectedBy.at(cursor);
      ASSERT_LT(++hops, 10000) << "cycle in infection forest";
    }
    EXPECT_NE(std::find(seeds.begin(), seeds.end(), cursor), seeds.end())
        << "case " << person << " does not trace to a seed";
    ++traced;
  }
  EXPECT_GT(traced, 0u);
}

TEST_F(DiseaseModelTest, ProgressionTimingMatchesConfig) {
  run(2, 0.01, 2);
  const auto transitions = loadTransitions();
  // For each person, E at hour h must be followed by I at exactly h+latent.
  std::unordered_map<std::uint32_t, table::Hour> exposedAt;
  for (const ExtendedEvent& entry : transitions) {
    const auto newState = static_cast<SeirState>(entry.extras[0]);
    if (newState == SeirState::kExposed) {
      exposedAt[entry.base.person] = entry.base.start;
    } else if (newState == SeirState::kInfectious && entry.base.start != 0) {
      const auto it = exposedAt.find(entry.base.person);
      ASSERT_NE(it, exposedAt.end());
      EXPECT_EQ(entry.base.start - it->second, 24u);
    }
  }
}

}  // namespace
}  // namespace chisimnet::abm
